//! The expert feed-forward network (`fflayer`).

use tutel_obs::Telemetry;
use tutel_tensor::{
    gelu_backward_with_tanh, gelu_slice_with_tanh, gemm_nt, gemm_tn, grouped_gemm, grouped_gemm_nt,
    grouped_gemm_tn, quantize_in_place, scratch, Precision, Rng, Tensor, TensorError,
};

/// A batch of `ΔE` expert FFNs: for each local expert `e`,
/// `y = gelu(x · W1_e + b1_e) · W2_e + b2_e` with `x (C, M)`,
/// `W1 (M, V)`, `W2 (V, M)`.
///
/// Forward caches the activations needed by [`ExpertsBlock::backward`];
/// gradients accumulate across calls until [`ExpertsBlock::step`].
///
/// # Example
///
/// ```
/// use tutel_experts::ExpertsBlock;
/// use tutel_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed(0);
/// let mut experts = ExpertsBlock::new(2, 8, 16, &mut rng);
/// let x = rng.normal_tensor(&[2, 4, 8], 0.0, 1.0); // (ΔE, C, M)
/// let y = experts.forward(&x)?;
/// assert_eq!(y.dims(), &[2, 4, 8]);
/// # Ok::<(), tutel_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExpertsBlock {
    local_experts: usize,
    model_dim: usize,
    hidden_dim: usize,
    /// `(ΔE, M, V)`.
    w1: Tensor,
    /// `(ΔE, V)`.
    b1: Tensor,
    /// `(ΔE, V, M)`.
    w2: Tensor,
    /// `(ΔE, M)`.
    b2: Tensor,
    dw1: Tensor,
    db1: Tensor,
    dw2: Tensor,
    db2: Tensor,
    /// Saved activations from the last forward: the input `x`, the
    /// pre-activation `h_pre`, the GELU output `h`, and the `tanh`
    /// intermediate — so backward never re-evaluates `tanh`.
    saved: Option<(Tensor, Tensor, Tensor, Tensor)>,
    /// Saved activations from the last *grouped* forward: the same
    /// four tensors in packed `(R, ·)` layout plus the bin offsets.
    saved_grouped: Option<(Tensor, Tensor, Tensor, Tensor, Vec<usize>)>,
    /// Weight *storage* format. Under [`Precision::Bf16`] the weights
    /// are kept rounded to the bf16-representable set at every rest
    /// point (construction, checkpoint restore, after each optimizer
    /// step) so they can cross the wire as 2-byte values losslessly;
    /// all arithmetic — GEMMs, gradients, the SGD update — still
    /// accumulates in `f32`.
    storage: Precision,
    /// Telemetry sink; disabled by default.
    obs: Telemetry,
}

impl ExpertsBlock {
    /// Creates `local_experts` experts of dims `model_dim → hidden_dim →
    /// model_dim` with Kaiming initialization.
    pub fn new(local_experts: usize, model_dim: usize, hidden_dim: usize, rng: &mut Rng) -> Self {
        let std1 = (2.0 / model_dim as f32).sqrt();
        let std2 = (2.0 / hidden_dim as f32).sqrt();
        ExpertsBlock {
            local_experts,
            model_dim,
            hidden_dim,
            w1: rng.normal_tensor(&[local_experts, model_dim, hidden_dim], 0.0, std1),
            b1: Tensor::zeros(&[local_experts, hidden_dim]),
            w2: rng.normal_tensor(&[local_experts, hidden_dim, model_dim], 0.0, std2),
            b2: Tensor::zeros(&[local_experts, model_dim]),
            dw1: Tensor::zeros(&[local_experts, model_dim, hidden_dim]),
            db1: Tensor::zeros(&[local_experts, hidden_dim]),
            dw2: Tensor::zeros(&[local_experts, hidden_dim, model_dim]),
            db2: Tensor::zeros(&[local_experts, model_dim]),
            saved: None,
            saved_grouped: None,
            storage: Precision::F32,
            obs: Telemetry::disabled(),
        }
    }

    /// Switches the weight storage format, immediately rounding the
    /// current weights to it. `f32` accumulation is unaffected; only
    /// where the parameters *live* (and how many bytes they cost to
    /// move) changes.
    pub fn with_storage_precision(mut self, precision: Precision) -> Self {
        self.storage = precision;
        self.round_weights_to_storage();
        self
    }

    /// The weight storage format.
    pub fn storage_precision(&self) -> Precision {
        self.storage
    }

    /// Bytes the parameters occupy in storage (and on the wire for
    /// parameter collectives) — half the `f32` figure under bf16.
    pub fn weight_bytes(&self) -> u64 {
        (self.num_params() * self.storage.storage_bytes()) as u64
    }

    /// Re-rounds all four parameter tensors to the storage format
    /// (no-op for `f32`). Called at every rest point so the invariant
    /// "stored weights are representable in `storage`" always holds.
    fn round_weights_to_storage(&mut self) {
        if self.storage == Precision::F32 {
            return;
        }
        quantize_in_place(self.w1.as_mut_slice(), self.storage);
        quantize_in_place(self.b1.as_mut_slice(), self.storage);
        quantize_in_place(self.w2.as_mut_slice(), self.storage);
        quantize_in_place(self.b2.as_mut_slice(), self.storage);
    }

    /// Routes this block's spans and FLOP counters into `tel`.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.obs = tel;
    }

    /// Builds a block from explicit weights (used by the sharded
    /// parameter store).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if any weight has inconsistent shape.
    pub fn from_weights(
        w1: Tensor,
        b1: Tensor,
        w2: Tensor,
        b2: Tensor,
    ) -> Result<Self, TensorError> {
        if w1.rank() != 3 || w2.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: w1.rank().min(w2.rank()),
                op: "experts_from_weights",
            });
        }
        let (de, m, v) = (w1.dims()[0], w1.dims()[1], w1.dims()[2]);
        if w2.dims() != [de, v, m] || b1.dims() != [de, v] || b2.dims() != [de, m] {
            return Err(TensorError::ShapeMismatch {
                left: w1.dims().to_vec(),
                right: w2.dims().to_vec(),
                op: "experts_from_weights",
            });
        }
        Ok(ExpertsBlock {
            local_experts: de,
            model_dim: m,
            hidden_dim: v,
            dw1: Tensor::zeros(w1.dims()),
            db1: Tensor::zeros(b1.dims()),
            dw2: Tensor::zeros(w2.dims()),
            db2: Tensor::zeros(b2.dims()),
            w1,
            b1,
            w2,
            b2,
            saved: None,
            saved_grouped: None,
            storage: Precision::F32,
            obs: Telemetry::disabled(),
        })
    }

    /// Number of local experts (`ΔE`).
    pub fn local_experts(&self) -> usize {
        self.local_experts
    }

    /// Model (channel) dimension `M`.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Hidden dimension `V`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Read access to `(W1, b1, W2, b2)`.
    pub fn weights(&self) -> (&Tensor, &Tensor, &Tensor, &Tensor) {
        (&self.w1, &self.b1, &self.w2, &self.b2)
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    /// Replaces all weights (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if any shape differs.
    pub fn set_weights(
        &mut self,
        w1: Tensor,
        b1: Tensor,
        w2: Tensor,
        b2: Tensor,
    ) -> Result<(), TensorError> {
        if w1.dims() != self.w1.dims()
            || b1.dims() != self.b1.dims()
            || w2.dims() != self.w2.dims()
            || b2.dims() != self.b2.dims()
        {
            return Err(TensorError::ShapeMismatch {
                left: w1.dims().to_vec(),
                right: self.w1.dims().to_vec(),
                op: "set_weights",
            });
        }
        self.w1 = w1;
        self.b1 = b1;
        self.w2 = w2;
        self.b2 = b2;
        self.round_weights_to_storage();
        self.saved = None;
        self.saved_grouped = None;
        Ok(())
    }

    /// Forward pass over `x (ΔE, C, M)`, producing `(ΔE, C, M)` and
    /// caching activations for backward.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` has the wrong shape.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        let span = self.ffn_span("ffn", x);
        self.check_input(x)?;
        let c = x.dims()[1];
        // Register backward's hidden-gradient slab class so its first
        // `take_zeroed` already hits a warm buffer. Idempotent top-up:
        // once the class retains a buffer this is a lock + a map probe.
        tutel_rt::request_prewarm(c * self.hidden_dim, 1);
        // h_pre = x · W1 + b1 (per expert).
        let mut h_pre = x.bmm(&self.w1)?;
        add_bias(&mut h_pre, &self.b1, c);
        // Keep the GELU output and its tanh intermediate for backward:
        // re-evaluating tanh there would dominate the backward pass.
        let mut h = scratch::zeroed(h_pre.dims());
        let mut tanh = scratch::zeroed(h_pre.dims());
        gelu_slice_with_tanh(h_pre.as_slice(), h.as_mut_slice(), tanh.as_mut_slice());
        let mut y = h.bmm(&self.w2)?;
        add_bias(&mut y, &self.b2, c);
        self.saved = Some((scratch::copy_of(x), h_pre, h, tanh));
        drop(span);
        Ok(y)
    }

    /// Forward without caching (inference).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` has the wrong shape.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let span = self.ffn_span("ffn", x);
        let y = self.forward_only(x)?;
        drop(span);
        Ok(y)
    }

    /// Opens a span over an FFN pass and counts its FLOPs (two GEMMs,
    /// `2·2·ΔE·C·M·V` multiply-adds). Returns a no-op span when
    /// telemetry is disabled or `x` is misshapen (the pass itself will
    /// report the shape error).
    fn ffn_span(&self, name: &str, x: &Tensor) -> tutel_obs::Span {
        if !self.obs.is_enabled() || x.rank() != 3 {
            return self.obs.span(name);
        }
        let c = x.dims()[1];
        let flops = 4 * self.local_experts * c * self.model_dim * self.hidden_dim;
        self.obs.add_counter("experts.flops", flops as u64);
        self.obs
            .span(name)
            .tag("local_experts", self.local_experts)
            .tag("rows", c)
            .tag("flops", flops)
    }

    // check:hot
    fn forward_only(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.check_input(x)?;
        let c = x.dims()[1];
        // h_pre = x · W1 + b1 (per expert).
        let mut h_pre = x.bmm(&self.w1)?;
        add_bias(&mut h_pre, &self.b1, c);
        let h = h_pre.gelu();
        let mut y = h.bmm(&self.w2)?;
        add_bias(&mut y, &self.b2, c);
        scratch::recycle(h_pre);
        scratch::recycle(h);
        Ok(y)
    }

    /// Grouped (dropless) forward over packed ragged bins: `x (R, M)`
    /// where expert `e` owns rows `offsets[e]..offsets[e+1]`. One
    /// grouped-GEMM launch per layer instead of a padded `bmm`; no
    /// zero rows are computed. Produces `(R, M)` and caches packed
    /// activations for [`ExpertsBlock::backward_grouped`].
    ///
    /// Arithmetic accumulates in f32 regardless of the weight storage
    /// format, exactly like the padded path — bf16 storage composes.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` or `offsets` is inconsistent.
    pub fn forward_grouped(
        &mut self,
        x: &Tensor,
        offsets: &[usize],
    ) -> Result<Tensor, TensorError> {
        let span = self.grouped_span("ffn", x, offsets);
        self.check_grouped(x, offsets)?;
        let total = *offsets.last().unwrap_or(&0);
        let (m, v) = (self.model_dim, self.hidden_dim);
        tutel_rt::request_prewarm(total * v, 1);
        let mut h_pre = scratch::zeroed(&[total, v]);
        grouped_gemm(
            x.as_slice(),
            self.w1.as_slice(),
            h_pre.as_mut_slice(),
            offsets,
            m,
            v,
        );
        add_bias_grouped(&mut h_pre, &self.b1, offsets);
        let mut h = scratch::zeroed(h_pre.dims());
        let mut tanh = scratch::zeroed(h_pre.dims());
        gelu_slice_with_tanh(h_pre.as_slice(), h.as_mut_slice(), tanh.as_mut_slice());
        let mut y = scratch::zeroed(&[total, m]);
        grouped_gemm(
            h.as_slice(),
            self.w2.as_slice(),
            y.as_mut_slice(),
            offsets,
            v,
            m,
        );
        add_bias_grouped(&mut y, &self.b2, offsets);
        self.saved_grouped = Some((scratch::copy_of(x), h_pre, h, tanh, offsets.to_vec()));
        drop(span);
        Ok(y)
    }

    /// Grouped forward without caching (inference).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` or `offsets` is inconsistent.
    // check:hot
    pub fn infer_grouped(&self, x: &Tensor, offsets: &[usize]) -> Result<Tensor, TensorError> {
        let span = self.grouped_span("ffn", x, offsets);
        self.check_grouped(x, offsets)?;
        let total = *offsets.last().unwrap_or(&0);
        let (m, v) = (self.model_dim, self.hidden_dim);
        let mut h_pre = scratch::zeroed(&[total, v]);
        grouped_gemm(
            x.as_slice(),
            self.w1.as_slice(),
            h_pre.as_mut_slice(),
            offsets,
            m,
            v,
        );
        add_bias_grouped(&mut h_pre, &self.b1, offsets);
        let h = h_pre.gelu();
        let mut y = scratch::zeroed(&[total, m]);
        grouped_gemm(
            h.as_slice(),
            self.w2.as_slice(),
            y.as_mut_slice(),
            offsets,
            v,
            m,
        );
        add_bias_grouped(&mut y, &self.b2, offsets);
        scratch::recycle(h_pre);
        scratch::recycle(h);
        drop(span);
        Ok(y)
    }

    /// Backward of [`ExpertsBlock::forward_grouped`]: consumes the
    /// cached packed activations, accumulates parameter gradients
    /// (grouped TN launches straight into the gradient slabs), returns
    /// `d_x (R, M)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if no grouped forward is cached or
    /// shapes mismatch.
    // check:hot
    pub fn backward_grouped(&mut self, d_y: &Tensor) -> Result<Tensor, TensorError> {
        let (x, h_pre, h, tanh, offsets) = self.saved_grouped.take().ok_or_else(|| {
            TensorError::InvalidArgument("grouped backward without grouped forward".into())
        })?;
        let _span = self.grouped_span("ffn.backward", d_y, &offsets);
        self.check_grouped(d_y, &offsets)?;
        let total = *offsets.last().unwrap_or(&0);
        let (m, v) = (self.model_dim, self.hidden_dim);
        // dW2 += hᵀ · dY and db2 += Σ rows dY, bin by bin.
        grouped_gemm_tn(
            h.as_slice(),
            d_y.as_slice(),
            self.dw2.as_mut_slice(),
            &offsets,
            v,
            m,
        );
        for e in 0..self.local_experts {
            let rows = offsets[e + 1] - offsets[e];
            accumulate_bias(
                &mut self.db2,
                e,
                &d_y.as_slice()[offsets[e] * m..offsets[e + 1] * m],
                rows,
                m,
            );
        }
        // dh = dY · W2ᵀ, then through GELU in place over the whole
        // packed buffer (elementwise — bins don't interact).
        let arena = tutel_rt::arena();
        let mut dh = arena.take_zeroed(total * v);
        grouped_gemm_nt(d_y.as_slice(), self.w2.as_slice(), &mut dh, &offsets, m, v);
        gelu_backward_with_tanh(h_pre.as_slice(), tanh.as_slice(), &mut dh);
        // dW1 += xᵀ · dh_pre; db1 += Σ rows dh_pre; dx = dh_pre · W1ᵀ.
        grouped_gemm_tn(x.as_slice(), &dh, self.dw1.as_mut_slice(), &offsets, m, v);
        for e in 0..self.local_experts {
            let rows = offsets[e + 1] - offsets[e];
            accumulate_bias(
                &mut self.db1,
                e,
                &dh[offsets[e] * v..offsets[e + 1] * v],
                rows,
                v,
            );
        }
        let mut dx = scratch::zeroed(x.dims());
        grouped_gemm_nt(&dh, self.w1.as_slice(), dx.as_mut_slice(), &offsets, v, m);
        arena.put(dh);
        scratch::recycle(x);
        scratch::recycle(h_pre);
        scratch::recycle(h);
        scratch::recycle(tanh);
        Ok(dx)
    }

    /// Span + FLOP counter for a grouped pass: FLOPs are exact routed
    /// rows (`4·R·M·V`), not `4·ΔE·C·M·V` — the telemetry shows the
    /// padding waste the grouped path avoids.
    fn grouped_span(&self, name: &str, x: &Tensor, offsets: &[usize]) -> tutel_obs::Span {
        if !self.obs.is_enabled() || x.rank() != 2 {
            return self.obs.span(name);
        }
        let rows = *offsets.last().unwrap_or(&0);
        let flops = 4 * rows * self.model_dim * self.hidden_dim;
        self.obs.add_counter("experts.flops", flops as u64);
        self.obs
            .span(name)
            .tag("local_experts", self.local_experts)
            .tag("rows", rows)
            .tag("grouped", 1usize)
            .tag("flops", flops)
    }

    fn check_grouped(&self, x: &Tensor, offsets: &[usize]) -> Result<(), TensorError> {
        if offsets.len() != self.local_experts + 1
            || offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(TensorError::InvalidArgument(format!(
                "grouped offsets must be a monotone prefix sum with {} bins",
                self.local_experts
            )));
        }
        let total = *offsets.last().unwrap_or(&0);
        if x.rank() != 2 || x.dims()[0] != total || x.dims()[1] != self.model_dim {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![total, self.model_dim],
                op: "experts_forward_grouped",
            });
        }
        Ok(())
    }

    /// Backward pass: consumes the cached activations, accumulates
    /// parameter gradients, returns `d_x (ΔE, C, M)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if no forward is cached or shapes
    /// mismatch.
    // check:hot
    pub fn backward(&mut self, d_y: &Tensor) -> Result<Tensor, TensorError> {
        let _span = self.ffn_span("ffn.backward", d_y);
        let (x, h_pre, h, tanh) = self
            .saved
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("backward without forward".into()))?;
        self.check_input(d_y)?;
        let (de, c) = (x.dims()[0], x.dims()[1]);
        let (m, v) = (self.model_dim, self.hidden_dim);
        let mut dx = scratch::zeroed(x.dims());
        let arena = tutel_rt::arena();
        // Per-expert scratch, recycled across iterations: the hidden
        // gradient slab.
        let mut dh = arena.take_zeroed(c * v);
        let xs = x.as_slice();
        let hps = h_pre.as_slice();
        let hs = h.as_slice();
        let ts = tanh.as_slice();
        let dys = d_y.as_slice();
        for e in 0..de {
            let xe = &xs[e * c * m..(e + 1) * c * m];
            let hpe = &hps[e * c * v..(e + 1) * c * v];
            let dye = &dys[e * c * m..(e + 1) * c * m];
            // dW2 += hᵀ · dY (straight into the gradient slab), using
            // the GELU output saved by forward; db2 += Σ rows dY.
            gemm_tn(
                &hs[e * c * v..(e + 1) * c * v],
                dye,
                &mut self.dw2.as_mut_slice()[e * v * m..(e + 1) * v * m],
                v,
                c,
                m,
            );
            accumulate_bias(&mut self.db2, e, dye, c, m);
            // dh = dY · W2ᵀ, then through GELU in place.
            gemm_nt(
                dye,
                &self.w2.as_slice()[e * v * m..(e + 1) * v * m],
                &mut dh,
                c,
                m,
                v,
            );
            gelu_backward_with_tanh(hpe, &ts[e * c * v..(e + 1) * c * v], &mut dh);
            // dW1 += xᵀ · dh_pre; db1 += Σ rows dh_pre; dx = dh_pre · W1ᵀ.
            gemm_tn(
                xe,
                &dh,
                &mut self.dw1.as_mut_slice()[e * m * v..(e + 1) * m * v],
                m,
                c,
                v,
            );
            accumulate_bias(&mut self.db1, e, &dh, c, v);
            gemm_nt(
                &dh,
                &self.w1.as_slice()[e * m * v..(e + 1) * m * v],
                &mut dx.as_mut_slice()[e * c * m..(e + 1) * c * m],
                c,
                v,
                m,
            );
            if e + 1 < de {
                dh.fill(0.0);
            }
        }
        arena.put(dh);
        scratch::recycle(x);
        scratch::recycle(h_pre);
        scratch::recycle(h);
        scratch::recycle(tanh);
        Ok(dx)
    }

    /// Maximum per-tensor gradient norm applied by [`ExpertsBlock::step`].
    pub const GRAD_CLIP: f32 = 1.0;

    /// Applies accumulated gradients (SGD with per-tensor norm
    /// clipping) and clears them.
    pub fn step(&mut self, lr: f32) {
        self.dw1.clip_norm(Self::GRAD_CLIP);
        self.db1.clip_norm(Self::GRAD_CLIP);
        self.dw2.clip_norm(Self::GRAD_CLIP);
        self.db2.clip_norm(Self::GRAD_CLIP);
        // check:allow(no_panic, gradients are allocated with the weights' dims at construction)
        self.w1.axpy(-lr, &self.dw1).expect("shape");
        // check:allow(no_panic, gradients are allocated with the weights' dims at construction)
        self.b1.axpy(-lr, &self.db1).expect("shape");
        // check:allow(no_panic, gradients are allocated with the weights' dims at construction)
        self.w2.axpy(-lr, &self.dw2).expect("shape");
        // check:allow(no_panic, gradients are allocated with the weights' dims at construction)
        self.b2.axpy(-lr, &self.db2).expect("shape");
        // The update itself ran in f32; park the result back on the
        // storage grid (no-op for f32 storage).
        self.round_weights_to_storage();
        self.zero_grad();
    }

    /// Clears accumulated gradients in place (no reallocation — this
    /// runs every optimizer step).
    pub fn zero_grad(&mut self) {
        self.dw1.as_mut_slice().fill(0.0);
        self.db1.as_mut_slice().fill(0.0);
        self.dw2.as_mut_slice().fill(0.0);
        self.db2.as_mut_slice().fill(0.0);
    }

    fn check_input(&self, x: &Tensor) -> Result<(), TensorError> {
        if x.rank() != 3 || x.dims()[0] != self.local_experts || x.dims()[2] != self.model_dim {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![self.local_experts, 0, self.model_dim],
                op: "experts_forward",
            });
        }
        Ok(())
    }
}

/// Adds `bias (ΔE, cols)` to packed rows: expert `e`'s bias row lands
/// on rows `offsets[e]..offsets[e+1]` of `t (R, cols)`. Same scalar
/// add order per row as [`add_bias`], so grouped rows stay bitwise
/// equal to their padded twins.
fn add_bias_grouped(t: &mut Tensor, bias: &Tensor, offsets: &[usize]) {
    let de = bias.dims()[0];
    let cols = bias.dims()[1];
    for e in 0..de {
        let b = &bias.as_slice()[e * cols..(e + 1) * cols];
        for r in offsets[e]..offsets[e + 1] {
            let off = r * cols;
            for (o, bv) in t.as_mut_slice()[off..off + cols].iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
}

fn add_bias(t: &mut Tensor, bias: &Tensor, rows: usize) {
    let de = bias.dims()[0];
    let cols = bias.dims()[1];
    for e in 0..de {
        let b = &bias.as_slice()[e * cols..(e + 1) * cols];
        for r in 0..rows {
            let off = (e * rows + r) * cols;
            for (o, bv) in t.as_mut_slice()[off..off + cols].iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
}

fn accumulate_bias(db: &mut Tensor, e: usize, d: &[f32], rows: usize, cols: usize) {
    let base = e * cols;
    for r in 0..rows {
        let row = &d[r * cols..(r + 1) * cols];
        for (o, v) in db.as_mut_slice()[base..base + cols].iter_mut().zip(row) {
            *o += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = Rng::seed(1);
        let mut ex = ExpertsBlock::new(3, 4, 8, &mut rng);
        let x = rng.normal_tensor(&[3, 5, 4], 0.0, 1.0);
        let y1 = ex.forward(&x).unwrap();
        let y2 = ex.infer(&x).unwrap();
        assert_eq!(y1, y2);
        assert_eq!(y1.dims(), &[3, 5, 4]);
    }

    #[test]
    fn experts_are_independent() {
        // Zeroing expert 1's input must not change expert 0's output.
        let mut rng = Rng::seed(2);
        let ex = ExpertsBlock::new(2, 4, 6, &mut rng);
        let x = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
        let y = ex.infer(&x).unwrap();
        let mut x2 = x.clone();
        for v in &mut x2.as_mut_slice()[12..] {
            *v = 0.0;
        }
        let y2 = ex.infer(&x2).unwrap();
        assert_eq!(&y.as_slice()[..12], &y2.as_slice()[..12]);
        assert_ne!(&y.as_slice()[12..], &y2.as_slice()[12..]);
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let mut rng = Rng::seed(3);
        let mut ex = ExpertsBlock::new(2, 3, 4, &mut rng);
        let x = rng.normal_tensor(&[2, 2, 3], 0.0, 1.0);
        let up = rng.normal_tensor(&[2, 2, 3], 0.0, 1.0);
        ex.forward(&x).unwrap();
        let dx = ex.backward(&up).unwrap();
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = ex.infer(&xp).unwrap().mul(&up).unwrap().sum();
            let lm = ex.infer(&xm).unwrap().mul(&up).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 3e-2,
                "i={i} fd={fd} got={}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn weight_gradients_descend_a_loss() {
        let mut rng = Rng::seed(4);
        let mut ex = ExpertsBlock::new(2, 4, 8, &mut rng);
        let x = rng.normal_tensor(&[2, 6, 4], 0.0, 1.0);
        let target = rng.normal_tensor(&[2, 6, 4], 0.0, 1.0);
        let mut initial = None;
        for _ in 0..50 {
            let y = ex.forward(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            let loss = 0.5 * diff.sq_norm();
            assert!(loss.is_finite());
            initial.get_or_insert(loss);
            ex.backward(&diff).unwrap();
            ex.step(0.01);
        }
        let y = ex.infer(&x).unwrap();
        let final_loss = 0.5 * y.sub(&target).unwrap().sq_norm();
        let initial = initial.unwrap();
        assert!(
            final_loss < 0.6 * initial,
            "loss {initial} → {final_loss} did not descend"
        );
    }

    /// Packs a padded `(ΔE, C, M)` input into `(R, M)` with the given
    /// per-expert row counts (rows beyond a bin's count are unused).
    fn pack(x: &Tensor, counts: &[usize]) -> (Tensor, Vec<usize>) {
        let (c, m) = (x.dims()[1], x.dims()[2]);
        let mut offsets = vec![0usize];
        for &cnt in counts {
            offsets.push(offsets.last().unwrap() + cnt);
        }
        let total = *offsets.last().unwrap();
        let mut packed = vec![0.0f32; total * m];
        for (e, &cnt) in counts.iter().enumerate() {
            packed[offsets[e] * m..offsets[e + 1] * m]
                .copy_from_slice(&x.as_slice()[e * c * m..e * c * m + cnt * m]);
        }
        (Tensor::from_vec(packed, &[total, m]).unwrap(), offsets)
    }

    #[test]
    fn grouped_forward_rows_bitwise_equal_padded_rows() {
        let mut rng = Rng::seed(11);
        let mut ex = ExpertsBlock::new(3, 4, 8, &mut rng);
        let x = rng.normal_tensor(&[3, 7, 4], 0.0, 1.0);
        // Ragged bins: 2, 7, 0 of the 7 capacity rows.
        let counts = [2usize, 7, 0];
        let (packed, offsets) = pack(&x, &counts);
        let grouped = ex.forward_grouped(&packed, &offsets).unwrap();
        let padded = ex.forward(&x).unwrap();
        let m = 4;
        for (e, &cnt) in counts.iter().enumerate() {
            assert_eq!(
                &grouped.as_slice()[offsets[e] * m..offsets[e + 1] * m],
                &padded.as_slice()[e * 7 * m..e * 7 * m + cnt * m],
                "expert {e}"
            );
        }
        let inferred = ex.infer_grouped(&packed, &offsets).unwrap();
        assert_eq!(inferred.as_slice(), grouped.as_slice());
    }

    #[test]
    fn grouped_backward_matches_padded_backward_on_uniform_bins() {
        // With every bin exactly at capacity the two paths see the
        // same rows with the same reduction shapes — gradients must
        // agree bitwise.
        let mut rng = Rng::seed(12);
        let mut pad = ExpertsBlock::new(2, 4, 8, &mut rng);
        let mut grp = pad.clone();
        let x = rng.normal_tensor(&[2, 5, 4], 0.0, 1.0);
        let dy = rng.normal_tensor(&[2, 5, 4], 0.0, 1.0);
        let counts = [5usize, 5];
        let (px, offsets) = pack(&x, &counts);
        let (pdy, _) = pack(&dy, &counts);

        pad.forward(&x).unwrap();
        let dx_pad = pad.backward(&dy).unwrap();
        grp.forward_grouped(&px, &offsets).unwrap();
        let dx_grp = grp.backward_grouped(&pdy).unwrap();

        let (dx_packed, _) = pack(&dx_pad, &counts);
        assert_eq!(dx_grp.as_slice(), dx_packed.as_slice());
        assert_eq!(pad.dw1.as_slice(), grp.dw1.as_slice());
        assert_eq!(pad.db1.as_slice(), grp.db1.as_slice());
        assert_eq!(pad.dw2.as_slice(), grp.dw2.as_slice());
        assert_eq!(pad.db2.as_slice(), grp.db2.as_slice());
    }

    #[test]
    fn grouped_input_grad_matches_finite_difference() {
        let mut rng = Rng::seed(13);
        let mut ex = ExpertsBlock::new(2, 3, 4, &mut rng);
        let offsets = [0usize, 2, 5];
        let x = rng.normal_tensor(&[5, 3], 0.0, 1.0);
        let up = rng.normal_tensor(&[5, 3], 0.0, 1.0);
        ex.forward_grouped(&x, &offsets).unwrap();
        let dx = ex.backward_grouped(&up).unwrap();
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = ex
                .infer_grouped(&xp, &offsets)
                .unwrap()
                .mul(&up)
                .unwrap()
                .sum();
            let lm = ex
                .infer_grouped(&xm, &offsets)
                .unwrap()
                .mul(&up)
                .unwrap()
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 3e-2,
                "i={i} fd={fd} got={}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn grouped_weight_gradients_descend_a_loss() {
        let mut rng = Rng::seed(14);
        let mut ex = ExpertsBlock::new(2, 4, 8, &mut rng);
        let offsets = [0usize, 4, 10];
        let x = rng.normal_tensor(&[10, 4], 0.0, 1.0);
        let target = rng.normal_tensor(&[10, 4], 0.0, 1.0);
        let mut initial = None;
        for _ in 0..50 {
            let y = ex.forward_grouped(&x, &offsets).unwrap();
            let diff = y.sub(&target).unwrap();
            initial.get_or_insert(0.5 * diff.sq_norm());
            ex.backward_grouped(&diff).unwrap();
            ex.step(0.01);
        }
        let y = ex.infer_grouped(&x, &offsets).unwrap();
        let final_loss = 0.5 * y.sub(&target).unwrap().sq_norm();
        let initial = initial.unwrap();
        assert!(
            final_loss < 0.6 * initial,
            "grouped loss {initial} → {final_loss} did not descend"
        );
    }

    #[test]
    fn grouped_bf16_storage_composes() {
        let mut rng = Rng::seed(15);
        let f32_block = ExpertsBlock::new(2, 8, 16, &mut rng);
        let bf16_block = f32_block.clone().with_storage_precision(Precision::Bf16);
        let offsets = [0usize, 3, 9];
        let x = rng.normal_tensor(&[9, 8], 0.0, 1.0);
        let yf = f32_block.infer_grouped(&x, &offsets).unwrap();
        let yb = bf16_block.infer_grouped(&x, &offsets).unwrap();
        for (a, b) in yf.as_slice().iter().zip(yb.as_slice()) {
            let scale = a.abs().max(1.0);
            assert!((a - b).abs() / scale < 0.05, "f32 {a} vs bf16 {b}");
        }
    }

    #[test]
    fn grouped_rejects_bad_offsets() {
        let mut rng = Rng::seed(16);
        let mut ex = ExpertsBlock::new(2, 3, 4, &mut rng);
        let x = rng.normal_tensor(&[5, 3], 0.0, 1.0);
        assert!(ex.forward_grouped(&x, &[0, 5]).is_err()); // wrong bin count
        assert!(ex.forward_grouped(&x, &[0, 3, 2]).is_err()); // not monotone
        assert!(ex.forward_grouped(&x, &[0, 2, 4]).is_err()); // total ≠ rows
        assert!(ex.backward_grouped(&x).is_err()); // no cached forward
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = Rng::seed(5);
        let mut ex = ExpertsBlock::new(1, 2, 2, &mut rng);
        assert!(ex.backward(&Tensor::zeros(&[1, 1, 2])).is_err());
    }

    #[test]
    fn from_weights_validates() {
        let mut rng = Rng::seed(6);
        let w1 = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
        let b1 = Tensor::zeros(&[2, 4]);
        let w2 = rng.normal_tensor(&[2, 4, 3], 0.0, 1.0);
        let b2 = Tensor::zeros(&[2, 3]);
        assert!(ExpertsBlock::from_weights(w1.clone(), b1.clone(), w2.clone(), b2.clone()).is_ok());
        let bad_b1 = Tensor::zeros(&[2, 5]);
        assert!(ExpertsBlock::from_weights(w1, bad_b1, w2, b2).is_err());
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed(7);
        let ex = ExpertsBlock::new(2, 3, 5, &mut rng);
        assert_eq!(ex.num_params(), 2 * (3 * 5 + 5 + 5 * 3 + 3));
    }

    #[test]
    fn bf16_storage_halves_weight_bytes_and_stays_on_grid() {
        let mut rng = Rng::seed(8);
        let f32_block = ExpertsBlock::new(2, 4, 8, &mut rng);
        let f32_bytes = f32_block.weight_bytes();
        let ex = f32_block.with_storage_precision(Precision::Bf16);
        assert_eq!(ex.weight_bytes() * 2, f32_bytes);
        let on_grid = |t: &Tensor| {
            t.as_slice()
                .iter()
                .all(|&v| Precision::Bf16.round(v).to_bits() == v.to_bits())
        };
        let (w1, b1, w2, b2) = ex.weights();
        assert!(on_grid(w1) && on_grid(b1) && on_grid(w2) && on_grid(b2));
    }

    #[test]
    fn bf16_storage_stays_on_grid_after_steps_and_still_learns() {
        let mut rng = Rng::seed(9);
        let mut ex = ExpertsBlock::new(2, 4, 8, &mut rng).with_storage_precision(Precision::Bf16);
        let x = rng.normal_tensor(&[2, 6, 4], 0.0, 1.0);
        let target = rng.normal_tensor(&[2, 6, 4], 0.0, 1.0);
        let mut initial = None;
        for _ in 0..50 {
            let y = ex.forward(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            initial.get_or_insert(0.5 * diff.sq_norm());
            ex.backward(&diff).unwrap();
            ex.step(0.01);
            // The rest-point invariant: every stored weight is bf16-
            // representable after every optimizer step.
            let (w1, _, w2, _) = ex.weights();
            for &v in w1.as_slice().iter().chain(w2.as_slice()) {
                assert_eq!(Precision::Bf16.round(v).to_bits(), v.to_bits());
            }
        }
        let y = ex.infer(&x).unwrap();
        let final_loss = 0.5 * y.sub(&target).unwrap().sq_norm();
        let initial = initial.unwrap();
        assert!(
            final_loss < 0.7 * initial,
            "bf16 storage must still descend: {initial} → {final_loss}"
        );
    }

    #[test]
    fn bf16_output_stays_within_format_error_of_f32() {
        let mut rng = Rng::seed(10);
        let f32_block = ExpertsBlock::new(2, 8, 16, &mut rng);
        let bf16_block = f32_block.clone().with_storage_precision(Precision::Bf16);
        let x = rng.normal_tensor(&[2, 5, 8], 0.0, 1.0);
        let yf = f32_block.infer(&x).unwrap();
        let yb = bf16_block.infer(&x).unwrap();
        // bf16 keeps 8 mantissa bits → ~2^-8 relative weight error;
        // the two-GEMM chain roughly doubles it. Scale-aware budget.
        for (a, b) in yf.as_slice().iter().zip(yb.as_slice()) {
            let scale = a.abs().max(1.0);
            assert!((a - b).abs() / scale < 0.05, "f32 {a} vs bf16 {b}");
        }
    }
}
