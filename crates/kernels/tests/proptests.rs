//! Property-based tests: the sparse Tutel kernels and the dense
//! GShard/Fairseq einsum are the *same linear operators*, and
//! encode/decode backward passes are the exact adjoints of their
//! forwards.

use proptest::prelude::*;
use tutel_gate::{route, CapacityPolicy, RouteConfig, Routing};
use tutel_kernels::{
    fast_decode, fast_decode_backward, fast_encode, fast_encode_backward, DenseCombine,
};
use tutel_tensor::{Rng, Tensor};

fn fixture(
    tokens: usize,
    experts: usize,
    k: usize,
    f: f64,
    seed: u64,
) -> (Routing, Tensor, Tensor) {
    let mut rng = Rng::seed(seed);
    let probs = rng
        .uniform_tensor(&[tokens, experts], 0.0, 1.0)
        .softmax_last();
    let cfg = RouteConfig {
        k,
        capacity: CapacityPolicy::Fixed(f),
        bpr: false,
        normalize_gates: true,
    };
    let routing = route(&probs, &cfg).unwrap();
    let m = 5;
    let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
    let y = rng.normal_tensor(&[experts, routing.capacity, m], 0.0, 1.0);
    (routing, x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dense_and_sparse_are_the_same_operator(
        tokens in 1usize..24,
        experts in 1usize..6,
        k_off in 0usize..3,
        f in 0.5f64..2.0,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_off % experts;
        let (routing, x, y) = fixture(tokens, experts, k, f, seed);
        let dense = DenseCombine::new(&routing);
        let de = dense.encode(&x).unwrap();
        let se = fast_encode(&x, &routing).unwrap();
        prop_assert!(de.sub(&se).unwrap().max_abs() < 1e-5);
        let dd = dense.decode(&y).unwrap();
        let sd = fast_decode(&y, &routing, tokens).unwrap();
        prop_assert!(dd.sub(&sd).unwrap().max_abs() < 1e-5);
    }

    #[test]
    fn encode_backward_is_the_adjoint(
        tokens in 1usize..20,
        experts in 1usize..5,
        f in 0.5f64..2.0,
        seed in any::<u64>(),
    ) {
        // ⟨encode(x), y⟩ must equal ⟨x, encodeᵀ(y)⟩ exactly: encode is
        // linear and its backward is its transpose.
        let (routing, x, y) = fixture(tokens, experts, 1, f, seed);
        let ex = fast_encode(&x, &routing).unwrap();
        let lhs: f32 = ex.mul(&y).unwrap().sum();
        let xt = fast_encode_backward(&y, &routing, tokens).unwrap();
        let rhs: f32 = x.mul(&xt).unwrap().sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn decode_backward_is_the_adjoint_in_y(
        tokens in 1usize..20,
        experts in 1usize..5,
        f in 0.5f64..2.0,
        seed in any::<u64>(),
    ) {
        // ⟨decode(y), u⟩ = ⟨y, decodeᵀ(u)⟩ for fixed gates.
        let (routing, _, y) = fixture(tokens, experts, 2.min(experts), f, seed);
        let mut rng = Rng::seed(seed ^ 1);
        let u = rng.normal_tensor(&[tokens, 5], 0.0, 1.0);
        let dy_fwd = fast_decode(&y, &routing, tokens).unwrap();
        let lhs: f32 = dy_fwd.mul(&u).unwrap().sum();
        let (yt, _) = fast_decode_backward(&u, &y, &routing).unwrap();
        let rhs: f32 = y.mul(&yt).unwrap().sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn decode_of_encode_is_gated_identity_without_drops(
        tokens in 1usize..16,
        experts in 1usize..5,
        seed in any::<u64>(),
    ) {
        // With auto-min capacity (no drops) and top-1 routing with raw
        // probability gates, decode(encode(x)) = g ⊙ x row-wise.
        let mut rng = Rng::seed(seed);
        let probs = rng.uniform_tensor(&[tokens, experts], 0.0, 1.0).softmax_last();
        let cfg = RouteConfig {
            k: 1,
            capacity: CapacityPolicy::AutoMin,
            bpr: false,
            normalize_gates: true,
        };
        let routing = route(&probs, &cfg).unwrap();
        let x = rng.normal_tensor(&[tokens, 4], 0.0, 1.0);
        let out = fast_decode(&fast_encode(&x, &routing).unwrap(), &routing, tokens).unwrap();
        for t in 0..tokens {
            let g = routing.gate_of[t][0];
            for j in 0..4 {
                let expect = g * x.at(&[t, j]);
                prop_assert!((out.at(&[t, j]) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dropped_gate_gradients_are_zero(
        tokens in 2usize..16,
        seed in any::<u64>(),
    ) {
        // Capacity pressure: every dropped assignment must contribute a
        // zero gate gradient (it never touched the output).
        let (routing, _, y) = fixture(tokens, 2, 1, 0.5, seed);
        let mut rng = Rng::seed(seed ^ 2);
        let u = rng.normal_tensor(&[tokens, 5], 0.0, 1.0);
        let (_, dgates) = fast_decode_backward(&u, &y, &routing).unwrap();
        for (t, locs) in routing.location_of.iter().enumerate() {
            for (i, l) in locs.iter().enumerate() {
                if l.is_none() {
                    prop_assert_eq!(dgates[t][i], 0.0);
                }
            }
        }
    }
}
