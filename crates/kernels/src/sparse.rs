//! Tutel's sparse fast encode/decode (Figure 18b / Figure 19).
//!
//! Complexity is `O(T·k·M)` — a factor `T` below the dense einsum —
//! because each (token, selection) pair touches exactly one `M`-length
//! row. The GPU kernels assign one warp per token row; this CPU
//! equivalent parallelizes the same row-at-a-time structure on the
//! `tutel-rt` pool.
//!
//! # Ownership parallelism
//!
//! Every pass is organized so each output row has exactly **one
//! writer** — no atomics, no locks, and results that are bit-identical
//! for any `TUTEL_THREADS`:
//!
//! * token-major passes (`fast_decode`, `fast_encode_backward`, gate
//!   gradients) parallelize over token rows, each token reading its
//!   own `≤ k` slots;
//! * slot-major passes (`fast_encode`, the `d_y` half of
//!   [`fast_decode_backward`]) parallelize over capacity-slot rows via
//!   an inverse slot map (`slot → (token, selection)`), exploiting the
//!   router's invariant that a capacity slot is granted to at most one
//!   (token, selection) pair.
//!
//! Row blocks are fixed at [`ROW_CHUNK`] rows — a function of the
//! problem shape only, never of the worker count.

use tutel_gate::Routing;
use tutel_tensor::{dispatch, scratch, Tensor, TensorError};

/// Output rows per parallel chunk (fixed: part of the determinism
/// contract, never derived from pool size).
const ROW_CHUNK: usize = 64;

/// Inverse slot map: for each `(expert, capacity)` slot, the
/// `(token, selection)` pair that owns it, if any. The router grants
/// each slot at most once (per-expert location counter), which is what
/// makes single-writer slot-major passes possible.
///
/// Arena-backed: the map is rebuilt every iteration on the hot path,
/// so it checks its buffer out of [`scratch`] (callers recycle it)
/// instead of growing a fresh `Vec`. Owners are encoded as two f32
/// lanes per slot — `token + 1` (`0.0` ⇒ unowned) and the selection
/// index — exact because token counts sit far below 2²⁴.
// check:hot
fn slot_owners(routing: &Routing) -> Tensor {
    let slots = routing.experts * routing.capacity;
    let mut owners = scratch::zeroed(&[slots, 2]);
    let os = owners.as_mut_slice();
    for (t, (experts, locs)) in routing
        .expert_of
        .iter()
        .zip(&routing.location_of)
        .enumerate()
    {
        for (i, (&e, loc)) in experts.iter().zip(locs).enumerate() {
            if let Some(l) = *loc {
                let s = e * routing.capacity + l;
                os[s * 2] = (t + 1) as f32;
                os[s * 2 + 1] = i as f32;
            }
        }
    }
    owners
}

/// Decodes one slot of the arena-backed [`slot_owners`] map.
#[inline]
fn owner_of(os: &[f32], slot: usize) -> Option<(u32, u32)> {
    let t = os[slot * 2];
    if t == 0.0 {
        None
    } else {
        Some((t as u32 - 1, os[slot * 2 + 1] as u32))
    }
}

/// Sparse encode (`moe.fast_encode`): scatters the MoE layer input
/// `x (T, M)` into the All-to-All dispatch buffer `(E, ΔC, M)`.
///
/// Dispatch is *unweighted* (GShard semantics: `bool(scores)` — gate
/// values are applied at decode), so a token routed to an expert
/// contributes its raw feature row; dropped (capacity-overflow)
/// assignments contribute nothing and the corresponding capacity slot
/// stays zero.
///
/// # Errors
///
/// Returns a [`TensorError`] if `x` is not rank-2 or its token count
/// disagrees with the routing.
///
/// # Example
///
/// ```
/// use tutel_gate::{route, RouteConfig};
/// use tutel_kernels::fast_encode;
/// use tutel_tensor::Tensor;
///
/// let probs = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2])?;
/// let routing = route(&probs, &RouteConfig::top1())?;
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let dispatched = fast_encode(&x, &routing)?;
/// assert_eq!(dispatched.dims(), &[2, 1, 2]); // (E, ΔC, M)
/// assert_eq!(dispatched.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
/// # Ok::<(), tutel_tensor::TensorError>(())
/// ```
// check:hot
pub fn fast_encode(x: &Tensor, routing: &Routing) -> Result<Tensor, TensorError> {
    let m = check_tokens(x, routing)?;
    // check:hot call site — the owner map comes from the arena.
    let owners = slot_owners(routing);
    let os = owners.as_slice();
    let mut out = scratch::zeroed(&[routing.experts, routing.capacity, m]);
    let xs = x.as_slice();
    // Slot-major: each slot row is either a copy of its owner token's
    // feature row or stays zero. One warp per row on GPU; one memcpy
    // per owned row here.
    tutel_rt::parallel_chunks(out.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let slot0 = blk * ROW_CHUNK;
        for (s, orow) in chunk.chunks_mut(m).enumerate() {
            if let Some((t, _)) = owner_of(os, slot0 + s) {
                orow.copy_from_slice(&xs[t as usize * m..(t as usize + 1) * m]);
            }
        }
    });
    scratch::recycle(owners);
    Ok(out)
}

/// Backward of [`fast_encode`]: gathers `d_dispatched (E, ΔC, M)` back
/// into `d_x (T, M)`.
///
/// # Errors
///
/// Returns a [`TensorError`] if `d_dispatched` has the wrong shape.
// check:hot
pub fn fast_encode_backward(
    d_dispatched: &Tensor,
    routing: &Routing,
    tokens: usize,
) -> Result<Tensor, TensorError> {
    let m = check_dispatch(d_dispatched, routing)?;
    let cap = routing.capacity;
    let mut dx = scratch::zeroed(&[tokens, m]);
    let dd = d_dispatched.as_slice();
    // Token-major: each token row sums the gradients parked in its
    // own slots, in selection order (same order as the serial kernel).
    // Lanewise accumulation routes through the active kernel table;
    // both modes add element-at-a-time, so results stay bitwise
    // identical under any `TUTEL_SIMD` setting.
    tutel_rt::parallel_chunks(dx.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let add_assign = dispatch::table().add_assign;
        let t0 = blk * ROW_CHUNK;
        for (ti, orow) in chunk.chunks_mut(m).enumerate() {
            let t = t0 + ti;
            for (&e, loc) in routing.expert_of[t].iter().zip(&routing.location_of[t]) {
                if let Some(l) = *loc {
                    let src = &dd[(e * cap + l) * m..(e * cap + l + 1) * m];
                    add_assign(src, orow);
                }
            }
        }
    });
    Ok(dx)
}

/// Sparse decode (`moe.fast_decode`): combines expert outputs
/// `y (E, ΔC, M)` into the MoE layer output `(T, M)`, weighting each
/// retrieved row by its gate value. Dropped tokens receive zeros for
/// the dropped assignment (GShard semantics).
///
/// # Errors
///
/// Returns a [`TensorError`] if `y` has the wrong shape.
// check:hot
pub fn fast_decode(y: &Tensor, routing: &Routing, tokens: usize) -> Result<Tensor, TensorError> {
    let m = check_dispatch(y, routing)?;
    let cap = routing.capacity;
    let mut out = scratch::zeroed(&[tokens, m]);
    let ys = y.as_slice();
    // Token-major: each token row is a gate-weighted sum of its ≤ k
    // expert output rows, accumulated in selection order via the
    // kernel table's axpy (mul then add per lane in both modes, so
    // scalar and SIMD stay bitwise identical).
    tutel_rt::parallel_chunks(out.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let axpy = dispatch::table().axpy;
        let t0 = blk * ROW_CHUNK;
        for (ti, orow) in chunk.chunks_mut(m).enumerate() {
            let t = t0 + ti;
            for ((&e, loc), &g) in routing.expert_of[t]
                .iter()
                .zip(&routing.location_of[t])
                .zip(&routing.gate_of[t])
            {
                if let Some(l) = *loc {
                    let src = &ys[(e * cap + l) * m..(e * cap + l + 1) * m];
                    axpy(g, src, orow);
                }
            }
        }
    });
    Ok(out)
}

/// Backward of [`fast_decode`]: returns `(d_y, d_gates)` where `d_y`
/// has shape `(E, ΔC, M)` and `d_gates[t][i]` is the gradient of the
/// `i`-th gate value of token `t` (`⟨y_row, d_out_row⟩`, Figure 19).
///
/// Runs as two ownership-parallel passes: slot-major for `d_y` (each
/// slot's gradient is its owner's `g · d_out` row) and token-major for
/// `d_gates`.
///
/// # Errors
///
/// Returns a [`TensorError`] on any shape mismatch.
// check:hot
pub fn fast_decode_backward(
    d_out: &Tensor,
    y: &Tensor,
    routing: &Routing,
) -> Result<(Tensor, Vec<Vec<f32>>), TensorError> {
    let m = check_tokens(d_out, routing)?;
    let m2 = check_dispatch(y, routing)?;
    if m != m2 {
        return Err(TensorError::shape_mismatch(
            "fast_decode_backward",
            d_out.dims(),
            y.dims(),
        ));
    }
    let cap = routing.capacity;
    // check:hot call site — the owner map comes from the arena.
    let owners = slot_owners(routing);
    let os = owners.as_slice();
    let ds = d_out.as_slice();
    let ys = y.as_slice();

    // Pass 1, slot-major: dy[slot] = g · d_out[owner token].
    let mut dy = scratch::zeroed(&[routing.experts, cap, m]);
    tutel_rt::parallel_chunks(dy.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let axpy = dispatch::table().axpy;
        let slot0 = blk * ROW_CHUNK;
        for (s, orow) in chunk.chunks_mut(m).enumerate() {
            if let Some((t, i)) = owner_of(os, slot0 + s) {
                let g = routing.gate_of[t as usize][i as usize];
                let drow = &ds[t as usize * m..(t as usize + 1) * m];
                axpy(g, drow, orow);
            }
        }
    });
    scratch::recycle(owners);

    // Pass 2, token-major: dgates[t][i] = ⟨y_slot, d_out_t⟩ through
    // the kernel table's 8-lane reduction-tree dot (same summation
    // order in scalar and SIMD modes).
    let mut dgates: Vec<Vec<f32>> = routing.gate_of.iter().map(|g| vec![0.0; g.len()]).collect();
    tutel_rt::parallel_chunks(&mut dgates, ROW_CHUNK, |blk, chunk| {
        let dot = dispatch::table().dot;
        let t0 = blk * ROW_CHUNK;
        for (ti, grow) in chunk.iter_mut().enumerate() {
            let t = t0 + ti;
            let drow = &ds[t * m..(t + 1) * m];
            for (i, (&e, loc)) in routing.expert_of[t]
                .iter()
                .zip(&routing.location_of[t])
                .enumerate()
            {
                if let Some(l) = *loc {
                    let yrow = &ys[(e * cap + l) * m..(e * cap + l + 1) * m];
                    grow[i] = dot(yrow, drow);
                }
            }
        }
    });
    Ok((dy, dgates))
}

fn check_tokens(x: &Tensor, routing: &Routing) -> Result<usize, TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op: "fast_encode",
        });
    }
    if x.dims()[0] != routing.num_tokens() {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: vec![routing.num_tokens(), x.dims()[1]],
            op: "fast_encode",
        });
    }
    Ok(x.dims()[1])
}

fn check_dispatch(y: &Tensor, routing: &Routing) -> Result<usize, TensorError> {
    if y.rank() != 3 || y.dims()[0] != routing.experts || y.dims()[1] != routing.capacity {
        return Err(TensorError::shape_mismatch(
            "fast_decode",
            y.dims(),
            &[routing.experts, routing.capacity, 0],
        ));
    }
    Ok(y.dims()[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_gate::{route, RouteConfig};
    use tutel_tensor::Rng;

    fn routing_and_input(tokens: usize, experts: usize, k: usize, seed: u64) -> (Routing, Tensor) {
        let mut rng = Rng::seed(seed);
        let probs = rng
            .uniform_tensor(&[tokens, experts], 0.0, 1.0)
            .softmax_last();
        let cfg = RouteConfig {
            k,
            ..RouteConfig::top1()
        };
        let routing = route(&probs, &cfg).unwrap();
        let x = rng.normal_tensor(&[tokens, 6], 0.0, 1.0);
        (routing, x)
    }

    #[test]
    fn encode_places_rows_at_locations() {
        let (routing, x) = routing_and_input(8, 4, 1, 1);
        let d = fast_encode(&x, &routing).unwrap();
        for (t, (experts, locs)) in routing
            .expert_of
            .iter()
            .zip(&routing.location_of)
            .enumerate()
        {
            if let (Some(&e), Some(Some(l))) = (experts.first(), locs.first()) {
                for mi in 0..6 {
                    assert_eq!(d.at(&[e, *l, mi]), x.at(&[t, mi]));
                }
            }
        }
    }

    #[test]
    fn dropped_tokens_leave_zero_slots_and_get_zero_output() {
        // All tokens to one expert, tiny capacity.
        let mut probs = Tensor::zeros(&[6, 3]);
        for t in 0..6 {
            probs.set(&[t, 0], 1.0);
        }
        let routing = route(&probs, &RouteConfig::top1()).unwrap();
        assert_eq!(routing.capacity, 2);
        let mut rng = Rng::seed(2);
        let x = rng.normal_tensor(&[6, 4], 0.0, 1.0);
        let d = fast_encode(&x, &routing).unwrap();
        // Experts 1, 2 received nothing.
        assert_eq!(d.index_axis0(1).unwrap().max_abs(), 0.0);
        // Decode of the identity expert returns zeros for dropped tokens.
        let out = fast_decode(&d, &routing, 6).unwrap();
        for t in 2..6 {
            for mi in 0..4 {
                assert_eq!(out.at(&[t, mi]), 0.0, "token {t} must be dropped");
            }
        }
    }

    #[test]
    fn decode_weights_by_gates() {
        let (routing, x) = routing_and_input(8, 4, 2, 3);
        let d = fast_encode(&x, &routing).unwrap();
        let out = fast_decode(&d, &routing, 8).unwrap();
        // With identity experts, surviving tokens get Σ_i g_i · x ≈ x
        // when all k assignments survive (gates normalized).
        for t in 0..8 {
            if routing.location_of[t].iter().all(|l| l.is_some()) {
                for mi in 0..6 {
                    assert!((out.at(&[t, mi]) - x.at(&[t, mi])).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn encode_backward_matches_finite_difference() {
        let (routing, x) = routing_and_input(5, 3, 2, 4);
        let mut rng = Rng::seed(5);
        let up = rng.normal_tensor(&[3, routing.capacity, 6], 0.0, 1.0);
        let dx = fast_encode_backward(&up, &routing, 5).unwrap();
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = fast_encode(&xp, &routing).unwrap().mul(&up).unwrap().sum();
            let lm = fast_encode(&xm, &routing).unwrap().mul(&up).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 1e-2,
                "i={i} fd={fd} got={}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn decode_backward_matches_finite_difference() {
        let (routing, _) = routing_and_input(5, 3, 2, 6);
        let mut rng = Rng::seed(7);
        let y = rng.normal_tensor(&[3, routing.capacity, 6], 0.0, 1.0);
        let up = rng.normal_tensor(&[5, 6], 0.0, 1.0);
        let (dy, dgates) = fast_decode_backward(&up, &y, &routing).unwrap();
        let eps = 1e-2;
        for i in 0..y.len() {
            let mut yp = y.clone();
            yp.as_mut_slice()[i] += eps;
            let mut ym = y.clone();
            ym.as_mut_slice()[i] -= eps;
            let lp = fast_decode(&yp, &routing, 5)
                .unwrap()
                .mul(&up)
                .unwrap()
                .sum();
            let lm = fast_decode(&ym, &routing, 5)
                .unwrap()
                .mul(&up)
                .unwrap()
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dy.as_slice()[i]).abs() < 1e-2, "i={i}");
        }
        // Gate gradients: perturb a gate, re-decode.
        for t in 0..5 {
            for gi in 0..2 {
                if routing.location_of[t][gi].is_none() {
                    assert_eq!(dgates[t][gi], 0.0);
                    continue;
                }
                let mut rp = routing.clone();
                rp.gate_of[t][gi] += eps;
                let mut rm = routing.clone();
                rm.gate_of[t][gi] -= eps;
                let lp = fast_decode(&y, &rp, 5).unwrap().mul(&up).unwrap().sum();
                let lm = fast_decode(&y, &rm, 5).unwrap().mul(&up).unwrap().sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dgates[t][gi]).abs() < 1e-1,
                    "t={t} gi={gi} fd={fd} got={}",
                    dgates[t][gi]
                );
            }
        }
    }

    #[test]
    fn dispatch_kernels_bit_identical_across_limits() {
        let (routing, x) = routing_and_input(130, 8, 2, 17);
        let run = |limit: usize| {
            tutel_rt::with_parallelism_limit(limit, || {
                let d = fast_encode(&x, &routing).unwrap();
                let out = fast_decode(&d, &routing, 130).unwrap();
                let (dy, dgates) = fast_decode_backward(&out, &d, &routing).unwrap();
                let dx = fast_encode_backward(&dy, &routing, 130).unwrap();
                (d, out, dy, dgates, dx)
            })
        };
        let reference = run(1);
        for limit in [2, 4, 8] {
            assert_eq!(run(limit), reference, "limit {limit}");
        }
    }

    #[test]
    fn dispatch_kernels_bit_identical_across_simd_modes() {
        if !dispatch::simd_available() {
            return;
        }
        let (routing, x) = routing_and_input(130, 8, 2, 19);
        let run = |force: bool| {
            dispatch::with_simd_mode(Some(force), || {
                let d = fast_encode(&x, &routing).unwrap();
                let out = fast_decode(&d, &routing, 130).unwrap();
                let (dy, dgates) = fast_decode_backward(&out, &d, &routing).unwrap();
                let dx = fast_encode_backward(&dy, &routing, 130).unwrap();
                (d, out, dy, dgates, dx)
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn shape_validation() {
        let (routing, x) = routing_and_input(4, 2, 1, 8);
        assert!(fast_encode(&x.reshape(&[24]).unwrap(), &routing).is_err());
        let bad = Tensor::zeros(&[3, routing.capacity, 6]);
        assert!(fast_decode(&bad, &routing, 4).is_err());
        assert!(fast_encode_backward(&bad, &routing, 4).is_err());
    }
}
