//! Memory accounting for encode/decode, reproducing Table 4 of the
//! paper (GPU memory cost of a single MoE layer: Fairseq vs Tutel).
//!
//! The dense path materializes per-token one-hot tensors whose size
//! scales with `T · E · ΔC` — with `ΔC = k·f·T/E` that is `O(k·f·T²)`,
//! which is why Fairseq's footprint explodes super-linearly in
//! tokens/step (3.7 GiB at 4 Ki tokens → 57.9 GiB at 32 Ki) while
//! Tutel's stays `O(T·k·M)`.

use tutel_simgpu::MemoryMeter;

/// Static model settings for the memory accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySettings {
    /// Tokens per step (`T`).
    pub tokens: usize,
    /// Global experts (`E`).
    pub experts: usize,
    /// Model dimension (`M`).
    pub model_dim: usize,
    /// Hidden dimension of the expert FFN (`V`).
    pub hidden_dim: usize,
    /// Top-k.
    pub k: usize,
    /// Capacity factor.
    pub capacity_factor: f64,
    /// Local experts per GPU (`ΔE`).
    pub local_experts: usize,
}

impl MemorySettings {
    /// The Table 4 static setting: `M = V = 4096`, top-2, `ΔE = 2`,
    /// `E = 64` global experts (32 GPUs × 2 local experts).
    pub fn table4(tokens: usize) -> Self {
        MemorySettings {
            tokens,
            experts: 64,
            model_dim: 4096,
            hidden_dim: 4096,
            k: 2,
            capacity_factor: 1.0,
            local_experts: 2,
        }
    }

    /// Expert capacity `ΔC` per Equation 1.
    pub fn capacity(&self) -> usize {
        tutel_gate::expert_capacity(self.k, self.capacity_factor, self.tokens, self.experts)
    }
}

const F32: u64 = 4;

/// Accounts the activation memory of one forward pass of a Fairseq-style
/// MoE layer (dense einsum encode/decode of Figure 18a).
pub fn fairseq_layer_memory(s: &MemorySettings) -> MemoryMeter {
    let mut mem = MemoryMeter::new();
    let (t, e, cap, m, v) = dims(s);
    common_activations(&mut mem, s);
    // Dense one-hot locations (T, ΔC) and combine weights (T, E, ΔC),
    // kept for the backward pass, plus the boolean dispatch mask of the
    // same shape (Figure 18a lines 8–12).
    mem.alloc("dense_locations_onehot", t * cap * F32);
    mem.alloc("dense_combine_weights", t * e * cap * F32);
    mem.alloc("dense_dispatch_mask", t * e * cap * F32);
    // The einsum's materialized intermediate for backward.
    mem.alloc("dense_einsum_saved", t * e * cap * F32);
    // Dispatched input and expert activations.
    mem.alloc("dispatch_input", e * cap * m * F32);
    mem.alloc("expert_hidden", e * cap * v * F32);
    mem.alloc("expert_output", e * cap * m * F32);
    mem
}

/// Accounts the activation memory of one forward pass of a Tutel MoE
/// layer (sparse fast encode/decode of Figure 18b).
pub fn tutel_layer_memory(s: &MemorySettings) -> MemoryMeter {
    let mut mem = MemoryMeter::new();
    let (_t, e, cap, m, v) = dims(s);
    let t = s.tokens as u64;
    common_activations(&mut mem, s);
    // Sparse bookkeeping: indices, locations, gates — O(T·k) scalars.
    mem.alloc("sparse_idxs", t * s.k as u64 * F32);
    mem.alloc("sparse_locations", t * s.k as u64 * F32);
    mem.alloc("sparse_gates", t * s.k as u64 * F32);
    // Dispatched input and expert activations (same as dense).
    mem.alloc("dispatch_input", e * cap * m * F32);
    mem.alloc("expert_hidden", e * cap * v * F32);
    mem.alloc("expert_output", e * cap * m * F32);
    mem
}

fn dims(s: &MemorySettings) -> (u64, u64, u64, u64, u64) {
    (
        s.tokens as u64,
        s.experts as u64,
        s.capacity() as u64,
        s.model_dim as u64,
        s.hidden_dim as u64,
    )
}

/// Allocations both implementations share: layer input/output, gate
/// logits/probabilities, local expert weights.
fn common_activations(mem: &mut MemoryMeter, s: &MemorySettings) {
    let (t, e, _cap, m, v) = dims(s);
    mem.alloc("layer_input", t * m * F32);
    mem.alloc("gate_logits", t * e * F32);
    mem.alloc("gate_probs", t * e * F32);
    mem.alloc("layer_output", t * m * F32);
    mem.alloc("expert_weights", s.local_experts as u64 * 2 * m * v * F32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tutel_uses_less_memory_everywhere() {
        for tokens in [4096, 8192, 16384, 32768] {
            let s = MemorySettings::table4(tokens);
            let fair = fairseq_layer_memory(&s).peak_bytes();
            let tut = tutel_layer_memory(&s).peak_bytes();
            assert!(tut < fair, "tokens {tokens}: tutel {tut} vs fairseq {fair}");
        }
    }

    #[test]
    fn saving_grows_with_tokens_per_step() {
        // Table 4: −21.6 % at 4 Ki tokens growing to −90.2 % at 32 Ki.
        let save = |tokens: usize| {
            let s = MemorySettings::table4(tokens);
            let fair = fairseq_layer_memory(&s).peak_bytes() as f64;
            let tut = tutel_layer_memory(&s).peak_bytes() as f64;
            1.0 - tut / fair
        };
        let s4k = save(4096);
        let s32k = save(32768);
        assert!(s4k > 0.05 && s4k < 0.6, "4k saving {s4k}");
        assert!(s32k > 0.6, "32k saving {s32k}");
        assert!(s32k > s4k);
    }

    #[test]
    fn dense_overhead_is_superlinear_in_tokens() {
        let extra = |tokens: usize| {
            let s = MemorySettings::table4(tokens);
            fairseq_layer_memory(&s).total_for("dense") as f64
        };
        // Doubling T should more than double the dense bookkeeping
        // (ΔC also grows with T at fixed E-scaling).
        assert!(extra(16384) > 2.5 * extra(8192));
    }

    #[test]
    fn capacity_matches_equation1() {
        let s = MemorySettings::table4(16384);
        // E = 64, k = 2, f = 1: ΔC = 2·16384/64 = 512.
        assert_eq!(s.capacity(), 512);
    }
}
