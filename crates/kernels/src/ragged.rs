//! Dropless dispatch: scatter/gather straight into packed ragged
//! expert bins (MegaBlocks-style), no capacity dimension anywhere.
//!
//! Where [`crate::sparse`] moves rows through the padded `(E, ΔC, M)`
//! buffer, these kernels use a [`RaggedRouting`]'s CSR `offsets` to
//! place each routed assignment at packed row `offsets[e] + location`
//! of an `(R, M)` buffer, `R` = total routed assignments. Zero padding
//! rows exist, so compute and All-to-All bytes scale with what was
//! actually routed — the padded path's skew cliff disappears.
//!
//! The ownership-parallel structure is identical to the padded
//! kernels: slot-major passes walk the packed rows (each row has
//! exactly one owner, recorded in the ragged permutation arrays) and
//! token-major passes walk token rows in selection order. Row blocks
//! are fixed at [`ROW_CHUNK`] rows and all lane arithmetic routes
//! through the kernel dispatch table, so results are bit-identical
//! for every `TUTEL_THREADS` and `TUTEL_SIMD` setting — and, because
//! a packed row holds the same bytes as its padded twin row, bitwise
//! comparable to the padded kernels row by row.

use tutel_gate::{RaggedRouting, Routing};
use tutel_tensor::{dispatch, scratch, Tensor, TensorError};

/// Output rows per parallel chunk (fixed: part of the determinism
/// contract, never derived from pool size).
const ROW_CHUNK: usize = 64;

/// Ragged encode: scatters `x (T, M)` into the packed dispatch buffer
/// `(R, M)` — expert `e`'s bin is rows `offsets[e]..offsets[e+1]`,
/// with zero padding rows. Dispatch is unweighted (GShard semantics),
/// exactly like [`crate::fast_encode`].
///
/// # Errors
///
/// Returns a [`TensorError`] if `x` is not rank-2 or the routing pair
/// is inconsistent.
// check:hot
pub fn ragged_encode(
    x: &Tensor,
    routing: &Routing,
    ragged: &RaggedRouting,
) -> Result<Tensor, TensorError> {
    let m = check_tokens(x, routing, "ragged_encode")?;
    check_pair(routing, ragged, "ragged_encode")?;
    let mut out = scratch::zeroed(&[ragged.total(), m]);
    let xs = x.as_slice();
    // Slot-major: every packed row has exactly one owner (the ragged
    // view drops unowned capacity slots at construction), so this is
    // one memcpy per row with a single writer.
    tutel_rt::parallel_chunks(out.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let slot0 = blk * ROW_CHUNK;
        for (s, orow) in chunk.chunks_mut(m).enumerate() {
            let t = ragged.slot_token[slot0 + s] as usize;
            orow.copy_from_slice(&xs[t * m..(t + 1) * m]);
        }
    });
    Ok(out)
}

/// Backward of [`ragged_encode`]: gathers `d_packed (R, M)` back into
/// `d_x (T, M)`.
///
/// # Errors
///
/// Returns a [`TensorError`] on shape mismatch.
// check:hot
pub fn ragged_encode_backward(
    d_packed: &Tensor,
    routing: &Routing,
    ragged: &RaggedRouting,
    tokens: usize,
) -> Result<Tensor, TensorError> {
    let m = check_packed(d_packed, ragged, "ragged_encode_backward")?;
    check_pair(routing, ragged, "ragged_encode_backward")?;
    let mut dx = scratch::zeroed(&[tokens, m]);
    let dd = d_packed.as_slice();
    // Token-major, selection order — the same accumulation order as
    // the padded twin, lanewise through the kernel table.
    tutel_rt::parallel_chunks(dx.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let add_assign = dispatch::table().add_assign;
        let t0 = blk * ROW_CHUNK;
        for (ti, orow) in chunk.chunks_mut(m).enumerate() {
            let t = t0 + ti;
            for (&e, loc) in routing.expert_of[t].iter().zip(&routing.location_of[t]) {
                if let Some(l) = *loc {
                    let s = ragged.offsets[e] + l;
                    add_assign(&dd[s * m..(s + 1) * m], orow);
                }
            }
        }
    });
    Ok(dx)
}

/// Ragged decode: combines packed expert outputs `y (R, M)` into the
/// layer output `(T, M)`, weighting each gathered row by its gate
/// value — [`crate::fast_decode`] without the capacity dimension.
///
/// # Errors
///
/// Returns a [`TensorError`] on shape mismatch.
// check:hot
pub fn ragged_decode(
    y: &Tensor,
    routing: &Routing,
    ragged: &RaggedRouting,
    tokens: usize,
) -> Result<Tensor, TensorError> {
    let m = check_packed(y, ragged, "ragged_decode")?;
    check_pair(routing, ragged, "ragged_decode")?;
    let mut out = scratch::zeroed(&[tokens, m]);
    let ys = y.as_slice();
    // Token-major: gate-weighted sum over the token's ≤ k packed rows
    // in selection order via the kernel table's axpy.
    tutel_rt::parallel_chunks(out.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let axpy = dispatch::table().axpy;
        let t0 = blk * ROW_CHUNK;
        for (ti, orow) in chunk.chunks_mut(m).enumerate() {
            let t = t0 + ti;
            for ((&e, loc), &g) in routing.expert_of[t]
                .iter()
                .zip(&routing.location_of[t])
                .zip(&routing.gate_of[t])
            {
                if let Some(l) = *loc {
                    let s = ragged.offsets[e] + l;
                    axpy(g, &ys[s * m..(s + 1) * m], orow);
                }
            }
        }
    });
    Ok(out)
}

/// Backward of [`ragged_decode`]: returns `(d_y (R, M), d_gates)`,
/// mirroring [`crate::fast_decode_backward`]'s two ownership-parallel
/// passes (slot-major for `d_y`, token-major for the gate gradients).
///
/// # Errors
///
/// Returns a [`TensorError`] on shape mismatch.
// check:hot
pub fn ragged_decode_backward(
    d_out: &Tensor,
    y: &Tensor,
    routing: &Routing,
    ragged: &RaggedRouting,
) -> Result<(Tensor, Vec<Vec<f32>>), TensorError> {
    let m = check_tokens(d_out, routing, "ragged_decode_backward")?;
    let m2 = check_packed(y, ragged, "ragged_decode_backward")?;
    if m != m2 {
        return Err(TensorError::shape_mismatch(
            "ragged_decode_backward",
            d_out.dims(),
            y.dims(),
        ));
    }
    check_pair(routing, ragged, "ragged_decode_backward")?;
    let ds = d_out.as_slice();
    let ys = y.as_slice();

    // Pass 1, slot-major: dy[row] = g · d_out[owner token].
    let mut dy = scratch::zeroed(&[ragged.total(), m]);
    tutel_rt::parallel_chunks(dy.as_mut_slice(), ROW_CHUNK * m, |blk, chunk| {
        let axpy = dispatch::table().axpy;
        let slot0 = blk * ROW_CHUNK;
        for (s, orow) in chunk.chunks_mut(m).enumerate() {
            let t = ragged.slot_token[slot0 + s] as usize;
            let i = ragged.slot_select[slot0 + s] as usize;
            let g = routing.gate_of[t][i];
            axpy(g, &ds[t * m..(t + 1) * m], orow);
        }
    });

    // Pass 2, token-major: dgates[t][i] = ⟨y_row, d_out_t⟩ through the
    // kernel table's reduction-tree dot.
    let mut dgates: Vec<Vec<f32>> = routing.gate_of.iter().map(|g| vec![0.0; g.len()]).collect();
    tutel_rt::parallel_chunks(&mut dgates, ROW_CHUNK, |blk, chunk| {
        let dot = dispatch::table().dot;
        let t0 = blk * ROW_CHUNK;
        for (ti, grow) in chunk.iter_mut().enumerate() {
            let t = t0 + ti;
            let drow = &ds[t * m..(t + 1) * m];
            for (i, (&e, loc)) in routing.expert_of[t]
                .iter()
                .zip(&routing.location_of[t])
                .enumerate()
            {
                if let Some(l) = *loc {
                    let s = ragged.offsets[e] + l;
                    grow[i] = dot(&ys[s * m..(s + 1) * m], drow);
                }
            }
        }
    });
    Ok((dy, dgates))
}

fn check_tokens(x: &Tensor, routing: &Routing, op: &'static str) -> Result<usize, TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op,
        });
    }
    if x.dims()[0] != routing.num_tokens() {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: vec![routing.num_tokens(), x.dims()[1]],
            op,
        });
    }
    Ok(x.dims()[1])
}

fn check_packed(
    y: &Tensor,
    ragged: &RaggedRouting,
    op: &'static str,
) -> Result<usize, TensorError> {
    if y.rank() != 2 || y.dims()[0] != ragged.total() {
        return Err(TensorError::shape_mismatch(
            op,
            y.dims(),
            &[ragged.total(), 0],
        ));
    }
    Ok(y.dims()[1])
}

fn check_pair(
    routing: &Routing,
    ragged: &RaggedRouting,
    op: &'static str,
) -> Result<(), TensorError> {
    if ragged.experts != routing.experts
        || ragged.offsets.len() != routing.experts + 1
        || ragged.total() != routing.counts.iter().sum::<usize>()
    {
        return Err(TensorError::InvalidArgument(format!(
            "{op}: ragged view does not match routing \
             ({} experts vs {}, {} packed rows vs {} routed)",
            ragged.experts,
            routing.experts,
            ragged.total(),
            routing.counts.iter().sum::<usize>()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fast_decode, fast_decode_backward, fast_encode, fast_encode_backward};
    use tutel_gate::{route, RouteConfig};
    use tutel_tensor::Rng;

    fn dropless_routing(
        tokens: usize,
        experts: usize,
        k: usize,
        seed: u64,
    ) -> (Routing, RaggedRouting, Tensor) {
        let mut rng = Rng::seed(seed);
        let probs = rng
            .uniform_tensor(&[tokens, experts], 0.0, 1.0)
            .softmax_last();
        let cfg = RouteConfig {
            k,
            ..RouteConfig::top1().with_capacity_factor(0.0)
        };
        let routing = route(&probs, &cfg).unwrap();
        let ragged = RaggedRouting::from_routing(&routing);
        let x = rng.normal_tensor(&[tokens, 6], 0.0, 1.0);
        (routing, ragged, x)
    }

    #[test]
    fn packed_rows_hold_the_same_bytes_as_their_padded_twins() {
        let (routing, ragged, x) = dropless_routing(12, 4, 2, 3);
        let packed = ragged_encode(&x, &routing, &ragged).unwrap();
        let padded = fast_encode(&x, &routing).unwrap();
        let m = 6;
        for e in 0..routing.experts {
            for l in 0..routing.counts[e] {
                let s = ragged.offsets[e] + l;
                let pr = &packed.as_slice()[s * m..(s + 1) * m];
                let dr = &padded.as_slice()
                    [(e * routing.capacity + l) * m..(e * routing.capacity + l + 1) * m];
                assert_eq!(pr, dr, "expert {e} slot {l}");
            }
        }
        assert_eq!(packed.dims(), &[ragged.total(), m]);
    }

    #[test]
    fn ragged_decode_is_bitwise_equal_to_padded_decode() {
        let (routing, ragged, x) = dropless_routing(17, 5, 2, 5);
        let packed = ragged_encode(&x, &routing, &ragged).unwrap();
        let padded = fast_encode(&x, &routing).unwrap();
        let a = ragged_decode(&packed, &routing, &ragged, 17).unwrap();
        let b = fast_decode(&padded, &routing, 17).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn ragged_backwards_are_bitwise_equal_to_padded_backwards() {
        let (routing, ragged, x) = dropless_routing(13, 4, 2, 7);
        let mut rng = Rng::seed(8);
        let packed = ragged_encode(&x, &routing, &ragged).unwrap();
        let padded = fast_encode(&x, &routing).unwrap();
        let d_out = rng.normal_tensor(&[13, 6], 0.0, 1.0);

        let (dy_r, dg_r) = ragged_decode_backward(&d_out, &packed, &routing, &ragged).unwrap();
        let (dy_p, dg_p) = fast_decode_backward(&d_out, &padded, &routing).unwrap();
        assert_eq!(dg_r, dg_p);
        let m = 6;
        for e in 0..routing.experts {
            for l in 0..routing.counts[e] {
                let s = ragged.offsets[e] + l;
                assert_eq!(
                    &dy_r.as_slice()[s * m..(s + 1) * m],
                    &dy_p.as_slice()
                        [(e * routing.capacity + l) * m..(e * routing.capacity + l + 1) * m],
                );
            }
        }

        let dx_r = ragged_encode_backward(&dy_r, &routing, &ragged, 13).unwrap();
        let dx_p = fast_encode_backward(&dy_p, &routing, 13).unwrap();
        assert_eq!(dx_r.as_slice(), dx_p.as_slice());
    }

    #[test]
    fn ragged_kernels_bit_identical_across_limits_and_simd_modes() {
        let (routing, ragged, x) = dropless_routing(130, 8, 2, 17);
        let run = || {
            let d = ragged_encode(&x, &routing, &ragged).unwrap();
            let out = ragged_decode(&d, &routing, &ragged, 130).unwrap();
            let (dy, dgates) = ragged_decode_backward(&out, &d, &routing, &ragged).unwrap();
            let dx = ragged_encode_backward(&dy, &routing, &ragged, 130).unwrap();
            (d, out, dy, dgates, dx)
        };
        let reference = tutel_rt::with_parallelism_limit(1, run);
        for limit in [2, 4, 8] {
            assert_eq!(
                tutel_rt::with_parallelism_limit(limit, run),
                reference,
                "limit {limit}"
            );
        }
        if dispatch::simd_available() {
            let scalar = dispatch::with_simd_mode(Some(false), run);
            let simd = dispatch::with_simd_mode(Some(true), run);
            assert_eq!(scalar, simd);
        }
    }

    #[test]
    fn clamped_routings_still_produce_a_consistent_ragged_view() {
        // Ragged is the dropless layout, but the view itself works for
        // clamped routings too (dropped assignments own no row).
        let mut rng = Rng::seed(4);
        let probs = rng.uniform_tensor(&[20, 4], 0.0, 1.0).softmax_last();
        let routing = route(&probs, &RouteConfig::top2()).unwrap();
        let ragged = RaggedRouting::from_routing(&routing);
        let x = rng.normal_tensor(&[20, 6], 0.0, 1.0);
        let packed = ragged_encode(&x, &routing, &ragged).unwrap();
        let padded = fast_encode(&x, &routing).unwrap();
        let a = ragged_decode(&packed, &routing, &ragged, 20).unwrap();
        let b = fast_decode(&padded, &routing, 20).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn shape_validation() {
        let (routing, ragged, x) = dropless_routing(4, 2, 1, 8);
        assert!(ragged_encode(&x.reshape(&[24]).unwrap(), &routing, &ragged).is_err());
        let bad = Tensor::zeros(&[ragged.total() + 1, 6]);
        assert!(ragged_decode(&bad, &routing, &ragged, 4).is_err());
        assert!(ragged_encode_backward(&bad, &routing, &ragged, 4).is_err());
        let mut mismatched = ragged.clone();
        mismatched.offsets.pop();
        mismatched.experts -= 1;
        assert!(ragged_encode(&x, &routing, &mismatched).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Dropless encode∘decode round-trips bitwise: with k = 1
            /// and a unit gate, every token's output row is exactly
            /// its input row (`1.0 · x` is an identity in IEEE 754).
            #[test]
            fn encode_decode_round_trips_bitwise(
                tokens in 1usize..60,
                experts in 1usize..10,
                m in 1usize..24,
                seed in 0u64..1024,
            ) {
                let mut rng = Rng::seed(seed);
                let probs = rng
                    .uniform_tensor(&[tokens, experts], 0.0, 1.0)
                    .softmax_last();
                let cfg = RouteConfig::top1().with_capacity_factor(0.0);
                let mut routing = route(&probs, &cfg).unwrap();
                for g in &mut routing.gate_of {
                    g.fill(1.0);
                }
                let ragged = RaggedRouting::from_routing(&routing);
                let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
                let packed = ragged_encode(&x, &routing, &ragged).unwrap();
                prop_assert_eq!(packed.dims(), &[tokens, m]);
                let back = ragged_decode(&packed, &routing, &ragged, tokens).unwrap();
                prop_assert_eq!(back.as_slice(), x.as_slice());
            }

            /// On arbitrary dropless top-k routings the ragged kernels
            /// agree bitwise with the padded twins, row for row.
            #[test]
            fn ragged_matches_padded_bitwise(
                tokens in 1usize..40,
                experts in 1usize..8,
                k in 1usize..3,
                seed in 0u64..1024,
            ) {
                let k = k.min(experts);
                let mut rng = Rng::seed(seed);
                let probs = rng
                    .uniform_tensor(&[tokens, experts], 0.0, 1.0)
                    .softmax_last();
                let cfg = RouteConfig {
                    k,
                    ..RouteConfig::top1().with_capacity_factor(0.0)
                };
                let routing = route(&probs, &cfg).unwrap();
                let ragged = RaggedRouting::from_routing(&routing);
                let x = rng.normal_tensor(&[tokens, 5], 0.0, 1.0);
                let packed = ragged_encode(&x, &routing, &ragged).unwrap();
                let padded = fast_encode(&x, &routing).unwrap();
                let a = ragged_decode(&packed, &routing, &ragged, tokens).unwrap();
                let b = fast_decode(&padded, &routing, tokens).unwrap();
                prop_assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }
}
