//! The dense GShard/Fairseq encode/decode baseline (Figure 18a).
//!
//! Materializes the `(T, E, ΔC)` one-hot *combine* tensor and performs
//! full einsums against it — `O(T·E·ΔC·M)` work, almost all of it
//! multiplications by zero, plus `O(T·E·ΔC)` extra memory. This is the
//! implementation Tutel's sparse kernels replace; it exists here so the
//! equivalence can be tested and the memory/time gap benchmarked
//! (Figure 24, Table 4).

use tutel_gate::Routing;
use tutel_tensor::{Tensor, TensorError};

/// The materialized combine tensor `(T, E, ΔC)` of Figure 18a, line 10:
/// `combine[t][e][c] = gate(t→e)` if token `t` occupies capacity slot
/// `c` of expert `e`, else 0.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCombine {
    weights: Tensor,
}

impl DenseCombine {
    /// Builds the combine tensor from a routing decision.
    pub fn new(routing: &Routing) -> Self {
        let t = routing.num_tokens();
        let (e, cap) = (routing.experts, routing.capacity);
        let mut weights = Tensor::zeros(&[t, e, cap]);
        for (ti, ((experts, locs), gates)) in routing
            .expert_of
            .iter()
            .zip(&routing.location_of)
            .zip(&routing.gate_of)
            .enumerate()
        {
            for ((&ei, loc), &g) in experts.iter().zip(locs).zip(gates) {
                if let Some(l) = *loc {
                    weights.set(&[ti, ei, l], g);
                }
            }
        }
        DenseCombine { weights }
    }

    /// The raw `(T, E, ΔC)` tensor.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Bytes this tensor occupies (the Table 4 memory overhead source).
    pub fn bytes(&self) -> u64 {
        (self.weights.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Dense encode: `dispatch[e][c] = Σ_t bool(combine[t][e][c]) · x[t]`
    /// — the full einsum of Figure 18a line 12, zeros included.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` is not `(T, M)`.
    pub fn encode(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let (t, e, cap) = self.dims();
        if x.rank() != 2 || x.dims()[0] != t {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![t, 0],
                op: "dense_encode",
            });
        }
        let m = x.dims()[1];
        let mut out = Tensor::zeros(&[e, cap, m]);
        // Deliberately dense: iterate the full T×E×ΔC×M index space.
        for ti in 0..t {
            for ei in 0..e {
                for c in 0..cap {
                    let w = if self.weights.at(&[ti, ei, c]) != 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                    let row = &x.as_slice()[ti * m..(ti + 1) * m];
                    let off = (ei * cap + c) * m;
                    let orow = &mut out.as_mut_slice()[off..off + m];
                    for (o, v) in orow.iter_mut().zip(row) {
                        *o += w * v;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Dense decode: `out[t] = Σ_{e,c} combine[t][e][c] · y[e][c]`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `y` is not `(E, ΔC, M)`.
    pub fn decode(&self, y: &Tensor) -> Result<Tensor, TensorError> {
        let (t, e, cap) = self.dims();
        if y.rank() != 3 || y.dims()[0] != e || y.dims()[1] != cap {
            return Err(TensorError::ShapeMismatch {
                left: y.dims().to_vec(),
                right: vec![e, cap, 0],
                op: "dense_decode",
            });
        }
        let m = y.dims()[2];
        let mut out = Tensor::zeros(&[t, m]);
        for ti in 0..t {
            for ei in 0..e {
                for c in 0..cap {
                    let w = self.weights.at(&[ti, ei, c]);
                    let off = (ei * cap + c) * m;
                    let yrow = &y.as_slice()[off..off + m];
                    let orow = &mut out.as_mut_slice()[ti * m..(ti + 1) * m];
                    for (o, v) in orow.iter_mut().zip(yrow) {
                        *o += w * v;
                    }
                }
            }
        }
        Ok(out)
    }

    fn dims(&self) -> (usize, usize, usize) {
        (
            self.weights.dims()[0],
            self.weights.dims()[1],
            self.weights.dims()[2],
        )
    }
}

/// Convenience alias: the result of a dense encode, for symmetry with
/// the sparse API.
pub type DenseEncoded = Tensor;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fast_decode, fast_encode};
    use tutel_gate::{route, RouteConfig};
    use tutel_tensor::Rng;

    fn setup(tokens: usize, experts: usize, k: usize, seed: u64) -> (Routing, Tensor, Tensor) {
        let mut rng = Rng::seed(seed);
        let probs = rng
            .uniform_tensor(&[tokens, experts], 0.0, 1.0)
            .softmax_last();
        let cfg = RouteConfig {
            k,
            ..RouteConfig::top1()
        };
        let routing = route(&probs, &cfg).unwrap();
        let x = rng.normal_tensor(&[tokens, 5], 0.0, 1.0);
        let y = rng.normal_tensor(&[experts, routing.capacity, 5], 0.0, 1.0);
        (routing, x, y)
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        let diff = a.sub(b).unwrap().max_abs();
        assert!(diff < 1e-5, "max diff {diff}");
    }

    #[test]
    fn dense_and_sparse_encode_agree() {
        for seed in 0..5 {
            let (routing, x, _) = setup(12, 4, 1, seed);
            let dense = DenseCombine::new(&routing).encode(&x).unwrap();
            let sparse = fast_encode(&x, &routing).unwrap();
            assert_close(&dense, &sparse);
        }
    }

    #[test]
    fn dense_and_sparse_decode_agree() {
        for seed in 0..5 {
            let (routing, _, y) = setup(12, 4, 2, 100 + seed);
            let dense = DenseCombine::new(&routing).decode(&y).unwrap();
            let sparse = fast_decode(&y, &routing, 12).unwrap();
            assert_close(&dense, &sparse);
        }
    }

    #[test]
    fn combine_tensor_memory_scales_with_t_e_cap() {
        let (routing, _, _) = setup(16, 4, 2, 9);
        let c = DenseCombine::new(&routing);
        assert_eq!(c.bytes(), (16 * 4 * routing.capacity * 4) as u64);
    }

    #[test]
    fn dense_encode_validates_shapes() {
        let (routing, _, y) = setup(6, 3, 1, 11);
        let c = DenseCombine::new(&routing);
        assert!(c.encode(&Tensor::zeros(&[7, 5])).is_err());
        assert!(c
            .decode(&Tensor::zeros(&[3, routing.capacity + 1, 5]))
            .is_err());
        assert!(c.decode(&y).is_ok());
    }
}
