//! Telemetry-instrumented wrappers around the sparse kernels.
//!
//! Each wrapper times the kernel in a span (whose name doubles as the
//! per-step stage key: `encode` / `decode`) and counts the elements it
//! touched. With a disabled [`Telemetry`] handle the wrappers reduce
//! to the plain kernels plus one branch.

use tutel_gate::{RaggedRouting, Routing};
use tutel_obs::Telemetry;
use tutel_tensor::{Tensor, TensorError};

use crate::ragged::{ragged_decode, ragged_encode};
use crate::sparse::{fast_decode, fast_encode};

/// [`fast_encode`] inside an `encode` span; counts the dispatched
/// elements (`E·ΔC·M`) into `kernels.encode.elements` and the routed
/// assignment slots into `kernels.encode.calls`.
///
/// # Errors
///
/// Returns whatever [`fast_encode`] returns.
pub fn fast_encode_observed(
    x: &Tensor,
    routing: &Routing,
    tel: &Telemetry,
) -> Result<Tensor, TensorError> {
    if !tel.is_enabled() {
        return fast_encode(x, routing);
    }
    let span = tel
        .span("encode")
        .tag("tokens", routing.num_tokens())
        .tag("experts", routing.experts)
        .tag("capacity", routing.capacity);
    let out = fast_encode(x, routing)?;
    tel.add_counter("kernels.encode.elements", out.len() as u64);
    tel.add_counter("kernels.encode.calls", 1);
    drop(span);
    Ok(out)
}

/// [`fast_decode`] inside a `decode` span; counts the combined output
/// elements (`T·M`) into `kernels.decode.elements` and invocations
/// into `kernels.decode.calls`.
///
/// # Errors
///
/// Returns whatever [`fast_decode`] returns.
pub fn fast_decode_observed(
    y: &Tensor,
    routing: &Routing,
    tokens: usize,
    tel: &Telemetry,
) -> Result<Tensor, TensorError> {
    if !tel.is_enabled() {
        return fast_decode(y, routing, tokens);
    }
    let span = tel
        .span("decode")
        .tag("tokens", tokens)
        .tag("experts", routing.experts)
        .tag("capacity", routing.capacity);
    let out = fast_decode(y, routing, tokens)?;
    tel.add_counter("kernels.decode.elements", out.len() as u64);
    tel.add_counter("kernels.decode.calls", 1);
    drop(span);
    Ok(out)
}

/// [`ragged_encode`] inside an `encode` span; same stage key as the
/// padded wrapper so per-step stage timings compare across paths, but
/// tagged `packed_rows` instead of `capacity` — the ragged layout has
/// no capacity dimension.
///
/// # Errors
///
/// Returns whatever [`ragged_encode`] returns.
pub fn ragged_encode_observed(
    x: &Tensor,
    routing: &Routing,
    ragged: &RaggedRouting,
    tel: &Telemetry,
) -> Result<Tensor, TensorError> {
    if !tel.is_enabled() {
        return ragged_encode(x, routing, ragged);
    }
    let span = tel
        .span("encode")
        .tag("tokens", routing.num_tokens())
        .tag("experts", routing.experts)
        .tag("packed_rows", ragged.total());
    let out = ragged_encode(x, routing, ragged)?;
    tel.add_counter("kernels.encode.elements", out.len() as u64);
    tel.add_counter("kernels.encode.calls", 1);
    drop(span);
    Ok(out)
}

/// [`ragged_decode`] inside a `decode` span; counts the combined
/// output elements (`T·M`) like the padded wrapper.
///
/// # Errors
///
/// Returns whatever [`ragged_decode`] returns.
pub fn ragged_decode_observed(
    y: &Tensor,
    routing: &Routing,
    ragged: &RaggedRouting,
    tokens: usize,
    tel: &Telemetry,
) -> Result<Tensor, TensorError> {
    if !tel.is_enabled() {
        return ragged_decode(y, routing, ragged, tokens);
    }
    let span = tel
        .span("decode")
        .tag("tokens", tokens)
        .tag("experts", routing.experts)
        .tag("packed_rows", ragged.total());
    let out = ragged_decode(y, routing, ragged, tokens)?;
    tel.add_counter("kernels.decode.elements", out.len() as u64);
    tel.add_counter("kernels.decode.calls", 1);
    drop(span);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_gate::{route, RouteConfig};

    #[test]
    fn observed_kernels_match_plain_and_count_elements() {
        let probs = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.5, 0.5], &[3, 2])
            .unwrap()
            .softmax_last();
        let routing = route(&probs, &RouteConfig::top1().with_capacity_factor(4.0)).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();

        let tel = Telemetry::enabled();
        let dispatched = fast_encode_observed(&x, &routing, &tel).unwrap();
        assert_eq!(dispatched, fast_encode(&x, &routing).unwrap());
        let combined = fast_decode_observed(&dispatched, &routing, 3, &tel).unwrap();
        assert_eq!(combined, fast_decode(&dispatched, &routing, 3).unwrap());

        assert_eq!(
            tel.counter_value("kernels.encode.elements"),
            Some(dispatched.len() as u64)
        );
        assert_eq!(
            tel.counter_value("kernels.decode.elements"),
            Some(combined.len() as u64)
        );
        assert_eq!(tel.counter_value("kernels.encode.calls"), Some(1));
        // Both spans made it into the ring.
        let spans: Vec<String> = tel
            .events()
            .into_iter()
            .filter_map(|e| match e {
                tutel_obs::Event::Span(s) => Some(s.name),
                _ => None,
            })
            .collect();
        assert_eq!(spans, vec!["encode".to_string(), "decode".to_string()]);
    }
}
