//! Fast encode/decode kernels for MoE dispatch and combine
//! (Section 4.2 of the Tutel paper).
//!
//! *Encode* builds the All-to-All dispatch input `(E, ΔC, M)` from the
//! MoE layer input `(T, M)` and the routing decision; *decode* is its
//! reverse, producing the layer output from All-to-All'd expert outputs
//! weighted by gate values.
//!
//! Two implementations are provided, mirroring Figure 18:
//!
//! * [`dense`] — the GShard/Fairseq einsum formulation, which
//!   materializes a `(T, E, ΔC)` combine tensor and performs
//!   `O(T·E·ΔC·M)` multiply-adds, almost all of them against zeros;
//! * [`sparse`] — Tutel's formulation (the K0/K1/K2 kernels of
//!   Figure 19), which touches only the `O(T·k·M)` useful elements.
//!
//! Both are differentiable (forward + backward) and produce bit-equal
//! results; the unit/property tests assert the equivalence, and
//! [`memory`] accounts for the Table 4 memory gap.

pub mod dense;
pub mod memory;
pub mod observed;
pub mod ragged;
pub mod sparse;

pub use dense::{DenseCombine, DenseEncoded};
pub use observed::{
    fast_decode_observed, fast_encode_observed, ragged_decode_observed, ragged_encode_observed,
};
pub use ragged::{ragged_decode, ragged_decode_backward, ragged_encode, ragged_encode_backward};
pub use sparse::{fast_decode, fast_decode_backward, fast_encode, fast_encode_backward};
