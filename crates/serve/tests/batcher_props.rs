//! Property tests for the continuous batcher's scheduling invariants:
//! occupancy bounds, per-request token order, seed-determinism of
//! admission, and the no-starvation contract (a request waits only
//! while every slot is busy, and is always served to completion).
//!
//! The batcher is pure bookkeeping on virtual time, so these drive it
//! directly with a simulated engine loop — no tensors, no threads.

use std::collections::HashMap;

use proptest::prelude::*;
use tutel_serve::batcher::{BatcherConfig, ContinuousBatcher};

/// One synthetic request: `(tokens, arrival_us, deadline_slack_us)`.
type Workload = Vec<(usize, u64, u64)>;

/// A full simulated run: drives offer/admit/plan_step on a virtual
/// clock exactly like the engine does, recording everything the
/// properties need.
struct RunLog {
    /// `(step index, request id, token idx)` for every served row.
    served: Vec<(usize, u64, usize)>,
    /// Per-step occupancy and inflight count at plan time.
    steps: Vec<(usize, usize)>,
    /// For each launch, whether any request was pending and how many
    /// slots were occupied — the work-conservation witness.
    launches: Vec<(usize, usize)>,
    /// Completion step per request id.
    completed: HashMap<u64, usize>,
}

fn simulate(cfg: BatcherConfig, workload: &Workload, step_cost_us: u64) -> RunLog {
    let mut b = ContinuousBatcher::new(cfg);
    let mut arrivals: Vec<(u64, u64, u64, usize)> = workload
        .iter()
        .enumerate()
        .map(|(i, &(tokens, arrival, slack))| (arrival, i as u64, arrival + slack, tokens))
        .collect();
    arrivals.sort_by_key(|&(arrival, id, ..)| (arrival, id));
    let mut next = 0usize;
    let mut clock = 0u64;
    let mut log = RunLog {
        served: Vec::new(),
        steps: Vec::new(),
        launches: Vec::new(),
        completed: HashMap::new(),
    };
    let mut step_idx = 0usize;
    loop {
        // Offer everything that has arrived.
        while next < arrivals.len() && arrivals[next].0 <= clock {
            let (arrival, id, deadline, tokens) = arrivals[next];
            b.offer(id, tokens, arrival, deadline);
            next += 1;
        }
        b.admit(clock);
        if b.inflight_len() == 0 {
            match arrivals.get(next) {
                None => break,
                Some(&(arrival, ..)) => {
                    clock = clock.max(arrival);
                    continue;
                }
            }
        }
        let next_arrival = arrivals.get(next).map(|&(a, ..)| a);
        if !b.should_launch(clock, next_arrival) {
            let fire = b.launch_deadline_us();
            let jump = next_arrival.map_or(fire, |a| a.min(fire));
            clock = clock.max(jump);
            continue;
        }
        log.launches.push((b.pending_len(), b.inflight_len()));
        let (plan, finished) = b.plan_step();
        log.steps.push((plan.occupancy(), plan.entries.len()));
        for &(id, tok) in &plan.entries {
            log.served.push((step_idx, id, tok));
        }
        clock += step_cost_us + plan.occupancy() as u64;
        for id in finished {
            log.completed.insert(id, step_idx);
        }
        step_idx += 1;
        if step_idx > 100_000 {
            panic!("batcher failed to drain the workload");
        }
    }
    log
}

fn workload_strategy() -> impl Strategy<Value = (Workload, usize, u64)> {
    (
        proptest::collection::vec((1usize..6, 0u64..2_000, 100u64..5_000), 1..40),
        1usize..6,
        0u64..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occupancy_never_exceeds_capacity((workload, slots, timeout) in workload_strategy()) {
        let cfg = BatcherConfig {
            max_batch_tokens: slots,
            max_inflight: slots + 2, // capped by max_batch_tokens
            admit_timeout_us: timeout,
        };
        let log = simulate(cfg, &workload, 50);
        for &(occ, inflight) in &log.steps {
            prop_assert!(occ <= cfg.max_batch_tokens, "occupancy {occ} > cap {}", cfg.max_batch_tokens);
            prop_assert!(inflight <= cfg.slots());
        }
    }

    #[test]
    fn token_order_within_a_request_is_preserved((workload, slots, timeout) in workload_strategy()) {
        let cfg = BatcherConfig {
            max_batch_tokens: slots,
            max_inflight: slots,
            admit_timeout_us: timeout,
        };
        let log = simulate(cfg, &workload, 50);
        let mut cursor: HashMap<u64, usize> = HashMap::new();
        let mut last_step: HashMap<u64, usize> = HashMap::new();
        for &(step, id, tok) in &log.served {
            let want = cursor.entry(id).or_insert(0);
            prop_assert_eq!(tok, *want, "request {} served token {} expecting {}", id, tok, *want);
            if let Some(&prev) = last_step.get(&id) {
                prop_assert!(step > prev, "request {} served twice in one step", id);
            }
            last_step.insert(id, step);
            *want += 1;
        }
        // Every request finishes with every token served exactly once.
        for (i, &(tokens, ..)) in workload.iter().enumerate() {
            let id = i as u64;
            prop_assert_eq!(cursor.get(&id).copied().unwrap_or(0), tokens);
            prop_assert!(log.completed.contains_key(&id), "request {} never completed", id);
        }
    }

    #[test]
    fn admission_and_planning_are_deterministic((workload, slots, timeout) in workload_strategy()) {
        let cfg = BatcherConfig {
            max_batch_tokens: slots,
            max_inflight: slots,
            admit_timeout_us: timeout,
        };
        let a = simulate(cfg, &workload, 50);
        let b = simulate(cfg, &workload, 50);
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn waiting_implies_saturation((workload, slots, timeout) in workload_strategy()) {
        // The no-starvation contract: admission is work-conserving,
        // so at every launch, a non-empty pending set implies every
        // slot is occupied. A request can therefore only be delayed
        // past its deadline budget while the batcher is saturated —
        // EDF admission then serves the tightest deadline first.
        let cfg = BatcherConfig {
            max_batch_tokens: slots,
            max_inflight: slots,
            admit_timeout_us: timeout,
        };
        let log = simulate(cfg, &workload, 50);
        for &(pending, inflight) in &log.launches {
            prop_assert!(
                pending == 0 || inflight == cfg.slots(),
                "request starved with a free slot: pending {pending}, inflight {inflight}, slots {}",
                cfg.slots()
            );
        }
    }
}
