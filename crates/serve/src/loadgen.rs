//! Seeded load generation: open and closed arrival models, plus
//! bursty and diurnal traces.
//!
//! Nothing here reads a wall clock or an OS entropy source — every
//! arrival time, token count, and think time derives from a
//! [`tutel_tensor::Rng`] seed, so a trace replays bit-identically
//! (the `test_determinism` lint enforces the absence of ambient
//! randomness). Open models pre-compute the full arrival trace;
//! the closed-loop generator drives an [`Engine`] interactively,
//! issuing each user's next request when its previous one completes.

use tutel_tensor::Rng;

use crate::engine::{Engine, ServeReport};
use crate::model::ServeModel;
use crate::request::{Request, RequestId, ServeError};

/// Arrival process of an open (trace-driven) workload.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Poisson process: exponential inter-arrival gaps at `rate`
    /// requests per virtual second.
    OpenPoisson {
        /// Offered load, requests per virtual second.
        rate_per_s: f64,
    },
    /// Fixed gap between consecutive arrivals.
    Uniform {
        /// Gap in virtual µs.
        gap_us: u64,
    },
    /// Bursts of `burst` back-to-back arrivals separated by idle
    /// gaps — the adversarial case for fill-or-timeout admission.
    Bursty {
        /// Requests per burst (arriving at the same instant).
        burst: usize,
        /// Idle gap between bursts, virtual µs.
        idle_us: u64,
    },
    /// A day-night cycle: a Poisson process whose rate swings
    /// sinusoidally between `trough_per_s` and `peak_per_s` over
    /// `period_us`.
    Diurnal {
        /// Off-peak rate, requests per virtual second.
        trough_per_s: f64,
        /// Peak rate, requests per virtual second.
        peak_per_s: f64,
        /// Cycle length in virtual µs.
        period_us: u64,
    },
}

/// Shape of one generated workload.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Arrival process.
    pub arrivals: Arrival,
    /// Requests to generate.
    pub requests: usize,
    /// Minimum token rows per request (≥ 1).
    pub tokens_min: usize,
    /// Maximum token rows per request (inclusive).
    pub tokens_max: usize,
    /// Per-request latency budget: deadline = arrival + this.
    pub deadline_us: u64,
    /// Token feature width (must match the served model).
    pub model_dim: usize,
    /// Seed for arrivals, token counts, and token features.
    pub seed: u64,
}

/// Exponential gap sample via inverse transform; `u` is clamped away
/// from 1 so the log stays finite.
fn exp_gap_us(rng: &mut Rng, rate_per_s: f64) -> u64 {
    let u = f64::from(rng.uniform()).min(0.999_999);
    let gap_s = -(1.0 - u).ln() / rate_per_s.max(1e-9);
    (gap_s * 1e6).round() as u64
}

/// Diurnal rate at virtual time `t`: sinusoid between trough and peak.
fn diurnal_rate(trough: f64, peak: f64, period_us: u64, t_us: u64) -> f64 {
    let phase = (t_us % period_us.max(1)) as f64 / period_us.max(1) as f64;
    let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
    trough + (peak - trough) * swing
}

/// Generates the full arrival trace for an open workload. Requests
/// are numbered from `first_id` in arrival order.
pub fn generate_trace(cfg: &TraceConfig, first_id: RequestId) -> Vec<Request> {
    let mut rng = Rng::seed(cfg.seed);
    let span = cfg.tokens_max.max(cfg.tokens_min) - cfg.tokens_min.min(cfg.tokens_max) + 1;
    let lo = cfg.tokens_min.min(cfg.tokens_max).max(1);
    let mut clock_us: u64 = 0;
    let mut out = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let gap = match cfg.arrivals {
            Arrival::OpenPoisson { rate_per_s } => exp_gap_us(&mut rng, rate_per_s),
            Arrival::Uniform { gap_us } => gap_us,
            Arrival::Bursty { burst, idle_us } => {
                if i == 0 || !i.is_multiple_of(burst.max(1)) {
                    0
                } else {
                    idle_us
                }
            }
            Arrival::Diurnal {
                trough_per_s,
                peak_per_s,
                period_us,
            } => {
                let rate = diurnal_rate(trough_per_s, peak_per_s, period_us, clock_us);
                exp_gap_us(&mut rng, rate)
            }
        };
        clock_us += gap;
        let tokens = lo + rng.below(span);
        out.push(Request {
            id: first_id + i as u64,
            tokens: rng.normal_tensor(&[tokens, cfg.model_dim], 0.0, 1.0),
            arrival_us: clock_us,
            deadline_us: clock_us + cfg.deadline_us,
        });
    }
    out
}

/// Closed-loop workload: `users` concurrent users, each thinking for
/// a seeded exponential gap after a completion before issuing its
/// next request.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopConfig {
    /// Concurrent users.
    pub users: usize,
    /// Requests each user issues in total.
    pub requests_per_user: usize,
    /// Mean think time between a completion and the next issue, µs.
    pub think_mean_us: u64,
    /// Token range and deadline budget, as in [`TraceConfig`].
    pub tokens_min: usize,
    /// Maximum token rows per request (inclusive).
    pub tokens_max: usize,
    /// Per-request latency budget.
    pub deadline_us: u64,
    /// Token feature width.
    pub model_dim: usize,
    /// Seed for think times, token counts, and features.
    pub seed: u64,
}

/// Drives `engine` closed-loop until every user has issued and
/// completed its quota. Completions feed back into arrivals, so the
/// offered load self-regulates around the engine's service rate —
/// the classic closed system.
///
/// # Errors
///
/// Propagates executor failures from the engine.
pub fn run_closed_loop(
    model: &ServeModel,
    engine: &mut Engine<'_>,
    cfg: &ClosedLoopConfig,
) -> Result<(), ServeError> {
    let _ = model;
    let mut rng = Rng::seed(cfg.seed);
    let lo = cfg.tokens_min.min(cfg.tokens_max).max(1);
    let span = cfg.tokens_max.max(cfg.tokens_min) - lo + 1;
    // user id ↔ request id mapping: request ids are issued densely;
    // remaining[u] counts requests user u still has to issue.
    let mut remaining: Vec<usize> = vec![cfg.requests_per_user; cfg.users];
    let mut owner: Vec<(RequestId, usize)> = Vec::new();
    let mut next_id: RequestId = 0;
    let mut issue = |engine: &mut Engine<'_>,
                     rng: &mut Rng,
                     owner: &mut Vec<(RequestId, usize)>,
                     user: usize,
                     at_us: u64| {
        let tokens = lo + rng.below(span);
        let id = next_id;
        next_id += 1;
        owner.push((id, user));
        engine.submit(Request {
            id,
            tokens: rng.normal_tensor(&[tokens, cfg.model_dim], 0.0, 1.0),
            arrival_us: at_us,
            deadline_us: at_us + cfg.deadline_us,
        });
    };
    // Every user issues its first request at t=0 (staggered by think
    // time so the burst is not fully synchronized).
    for (u, quota) in remaining.iter_mut().enumerate() {
        let stagger = exp_gap_us(&mut rng, 1e6 / cfg.think_mean_us.max(1) as f64);
        *quota -= 1;
        issue(engine, &mut rng, &mut owner, u, stagger);
    }
    loop {
        let progressed = engine.pump()?;
        let finished: Vec<RequestId> = engine.completed_last_pump().to_vec();
        let now = engine.now_us();
        for id in finished {
            let Some(pos) = owner.iter().position(|&(rid, _)| rid == id) else {
                continue;
            };
            let (_, user) = owner.swap_remove(pos);
            if remaining[user] > 0 {
                remaining[user] -= 1;
                let think = exp_gap_us(&mut rng, 1e6 / cfg.think_mean_us.max(1) as f64);
                issue(engine, &mut rng, &mut owner, user, now + think);
            }
        }
        if !progressed && !engine.has_work() {
            break;
        }
    }
    Ok(())
}

/// Convenience wrapper: build an engine, run the closed loop, return
/// the report.
///
/// # Errors
///
/// As [`run_closed_loop`].
pub fn run_closed_loop_to_report(
    model: &ServeModel,
    engine_cfg: &crate::engine::EngineConfig,
    cfg: &ClosedLoopConfig,
    tel: &tutel_obs::Telemetry,
) -> Result<ServeReport, ServeError> {
    let mut engine = Engine::new(model, engine_cfg, tel)?;
    run_closed_loop(model, &mut engine, cfg)?;
    Ok(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(arrivals: Arrival) -> TraceConfig {
        TraceConfig {
            arrivals,
            requests: 20,
            tokens_min: 1,
            tokens_max: 4,
            deadline_us: 10_000,
            model_dim: 8,
            seed: 17,
        }
    }

    #[test]
    fn traces_are_seed_deterministic() {
        for arrivals in [
            Arrival::OpenPoisson {
                rate_per_s: 5_000.0,
            },
            Arrival::Uniform { gap_us: 100 },
            Arrival::Bursty {
                burst: 4,
                idle_us: 500,
            },
            Arrival::Diurnal {
                trough_per_s: 500.0,
                peak_per_s: 8_000.0,
                period_us: 2_000,
            },
        ] {
            let a = generate_trace(&base(arrivals), 0);
            let b = generate_trace(&base(arrivals), 0);
            assert_eq!(a.len(), 20);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_us, y.arrival_us);
                assert_eq!(x.tokens.as_slice(), y.tokens.as_slice());
            }
        }
    }

    #[test]
    fn arrivals_are_monotone_and_deadlines_offset() {
        let trace = generate_trace(
            &base(Arrival::OpenPoisson {
                rate_per_s: 1_000.0,
            }),
            5,
        );
        let mut prev = 0;
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, 5 + i as u64);
            assert!(r.arrival_us >= prev);
            assert_eq!(r.deadline_us, r.arrival_us + 10_000);
            let n = r.tokens.dims()[0];
            assert!((1..=4).contains(&n));
            prev = r.arrival_us;
        }
    }

    #[test]
    fn bursts_share_an_instant() {
        let trace = generate_trace(
            &base(Arrival::Bursty {
                burst: 4,
                idle_us: 500,
            }),
            0,
        );
        assert_eq!(trace[0].arrival_us, trace[3].arrival_us);
        assert!(trace[4].arrival_us >= trace[3].arrival_us + 500);
    }
}
