//! The serving engine: a deterministic discrete-event loop joining
//! the ingress queue, the continuous batcher, and the micro-batch
//! executor, with per-request latency/SLO accounting exported through
//! `obs`.
//!
//! Time is **virtual**: the clock advances from the arrival trace and
//! a [`ServiceModel`] (a fixed per-step cost curve), never from the
//! wall. Every step's tensor math really executes — the outputs in
//! each [`crate::request::RequestOutcome`] are the layer's actual
//! numbers — but scheduling decisions replay bit-identically from a
//! seed, which is what lets CI assert latency distributions and the
//! proptests assert admission invariants.

use tutel_obs::{AnomalyRecord, DecisionRecord, Telemetry};
use tutel_tensor::Tensor;

use crate::batcher::{BatcherConfig, ContinuousBatcher};
use crate::exec::{execute_step, ExecConfig};
use crate::model::ServeModel;
use crate::queue::IngressQueue;
use crate::request::{Request, RequestId, RequestOutcome, ServeError};

/// Deterministic cost of one micro-batch step in virtual µs:
/// `step_floor_us + per_token_us · occupancy`. The floor models the
/// fixed dispatch/combine launch overhead that continuous batching
/// amortizes across co-scheduled requests — the entire goodput
/// argument lives in this term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed cost per step (kernel launches, All-to-All setup).
    pub step_floor_us: u64,
    /// Marginal cost per token row in the step.
    pub per_token_us: u64,
}

impl ServiceModel {
    /// Virtual duration of a step serving `occupancy` rows.
    pub fn step_cost_us(&self, occupancy: usize) -> u64 {
        self.step_floor_us + self.per_token_us * occupancy as u64
    }
}

/// Everything the engine needs beyond the model.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Batcher knobs (slots, fill-or-timeout patience).
    pub batcher: BatcherConfig,
    /// Virtual step cost curve.
    pub service: ServiceModel,
    /// Ingress queue bound; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Distributed execution knobs.
    pub exec: ExecConfig,
}

/// Aggregate results of one engine run.
pub struct ServeReport {
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests rejected at the full ingress queue.
    pub rejected: u64,
    /// Micro-batch steps executed.
    pub steps: u64,
    /// Median end-to-end latency (µs) over completed requests.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_misses: u64,
    /// Token rows of deadline-meeting requests per virtual second.
    pub goodput_tps: f64,
    /// Virtual time of the last completion.
    pub makespan_us: u64,
    /// Total All-to-All payload elements across all steps.
    pub a2a_elems: u64,
}

impl ServeReport {
    /// Completed requests.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }
}

/// Exact percentile over a latency population: index
/// `round(q · (n−1))` of the sorted values (deterministic, no
/// interpolation).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs an open-trace workload: `requests` arrive per their
/// `arrival_us` stamps, flow through the bounded queue and the
/// continuous batcher, and execute step by step until drained.
///
/// # Errors
///
/// Propagates executor errors; queue rejections are *not* errors (the
/// report counts them).
pub fn run_trace(
    model: &ServeModel,
    cfg: &EngineConfig,
    requests: Vec<Request>,
    tel: &Telemetry,
) -> Result<ServeReport, ServeError> {
    let mut engine = Engine::new(model, cfg, tel)?;
    for req in requests {
        engine.submit(req);
    }
    engine.drain()?;
    Ok(engine.finish())
}

/// State of one request being served.
struct Tracked {
    req: Request,
    admitted_us: u64,
    first_token_us: Option<u64>,
    served: usize,
    steps: u64,
    out_rows: Vec<f32>,
}

/// The discrete-event serving loop. [`run_trace`] covers the open
/// arrival model; the closed-loop generator drives [`Engine`]
/// directly so completions can trigger the next arrivals.
pub struct Engine<'a> {
    model: &'a ServeModel,
    cfg: EngineConfig,
    tel: &'a Telemetry,
    queue: IngressQueue,
    batcher: ContinuousBatcher,
    /// Requests offered to the batcher but not yet finished, by id.
    tracked: Vec<Tracked>,
    clock_us: u64,
    steps: u64,
    a2a_elems: u64,
    outcomes: Vec<RequestOutcome>,
    /// Ids the current caller of [`Engine::pump`] saw complete.
    just_finished: Vec<RequestId>,
}

impl<'a> Engine<'a> {
    /// Creates an idle engine at virtual time zero.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the model and exec config disagree.
    pub fn new(
        model: &'a ServeModel,
        cfg: &EngineConfig,
        tel: &'a Telemetry,
    ) -> Result<Self, ServeError> {
        if cfg.exec.world != model.dims.world {
            return Err(ServeError::Config(format!(
                "engine exec world {} != model world {}",
                cfg.exec.world, model.dims.world
            )));
        }
        Ok(Engine {
            model,
            cfg: *cfg,
            tel,
            queue: IngressQueue::new(cfg.queue_capacity),
            batcher: ContinuousBatcher::new(cfg.batcher),
            tracked: Vec::new(),
            clock_us: 0,
            steps: 0,
            a2a_elems: 0,
            outcomes: Vec::new(),
            just_finished: Vec::new(),
        })
    }

    /// Current virtual time.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// Offers a request to the bounded ingress queue; a full queue
    /// rejects it (counted, not an error).
    pub fn submit(&mut self, req: Request) {
        self.tel.add_counter("serve.requests.offered", 1);
        if self.queue.push(req).is_err() {
            self.tel.add_counter("serve.requests.rejected", 1);
        }
    }

    /// Whether any work remains anywhere in the pipeline.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.batcher.is_idle()
    }

    /// Advances the loop by one event — an admission wait or an
    /// executed step — and returns the ids of requests that completed
    /// during it. Returns `Ok(false)` when no work remains.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn pump(&mut self) -> Result<bool, ServeError> {
        self.just_finished.clear();
        // Ingest everything that has arrived by now, admit EDF; while
        // idle, jump the clock to the next arrival (the clock is
        // monotone, so this loop consumes the queue and terminates).
        loop {
            self.ingest();
            if self.batcher.inflight_len() > 0 {
                break;
            }
            match self.queue.next_arrival_us() {
                None => return Ok(!self.just_finished.is_empty()),
                Some(t) => self.clock_us = self.clock_us.max(t),
            }
        }
        // Fill-or-timeout: wait for company while it can still show
        // up within the admission patience window.
        while !self
            .batcher
            .should_launch(self.clock_us, self.queue.next_arrival_us())
        {
            let fire_at = self.batcher.launch_deadline_us();
            let next = self.queue.next_arrival_us().unwrap_or(u64::MAX);
            self.clock_us = self.clock_us.max(next.min(fire_at));
            self.ingest();
        }
        self.execute_one_step()?;
        Ok(true)
    }

    /// Runs the loop until no work remains.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        while self.pump()? {}
        Ok(())
    }

    /// Ids that completed during the last [`Engine::pump`].
    pub fn completed_last_pump(&self) -> &[RequestId] {
        &self.just_finished
    }

    fn ingest(&mut self) {
        for req in self.queue.drain_arrived(self.clock_us) {
            if req.num_tokens() == 0 {
                // Degenerate but legal: complete instantly.
                self.outcomes.push(RequestOutcome {
                    id: req.id,
                    output: Tensor::zeros(&[0, self.model.dims.model_dim]),
                    arrival_us: req.arrival_us,
                    deadline_us: req.deadline_us,
                    admitted_us: req.arrival_us,
                    first_token_us: req.arrival_us,
                    finish_us: req.arrival_us,
                    steps: 0,
                });
                continue;
            }
            self.batcher
                .offer(req.id, req.num_tokens(), req.arrival_us, req.deadline_us);
            self.tracked.push(Tracked {
                admitted_us: 0,
                first_token_us: None,
                served: 0,
                steps: 0,
                out_rows: Vec::with_capacity(req.num_tokens() * self.model.dims.model_dim),
                req,
            });
        }
        for (id, at) in self.batcher.admit(self.clock_us) {
            if let Some(t) = self.tracked.iter_mut().find(|t| t.req.id == id) {
                t.admitted_us = at;
            }
        }
    }

    fn execute_one_step(&mut self) -> Result<(), ServeError> {
        let (plan, finished) = self.batcher.plan_step();
        let occupancy = plan.occupancy();
        if occupancy == 0 {
            return Ok(());
        }
        let m = self.model.dims.model_dim;

        // Gather the step's token rows in plan order.
        let mut rows = Vec::with_capacity(occupancy * m);
        for &(id, tok) in &plan.entries {
            let t = self
                .tracked
                .iter()
                .find(|t| t.req.id == id)
                .ok_or_else(|| ServeError::Config(format!("planned unknown request {id}")))?;
            let src = t.req.tokens.as_slice();
            let row = src
                .get(tok * m..(tok + 1) * m)
                .ok_or_else(|| ServeError::Config(format!("request {id} has no token {tok}")))?;
            rows.extend_from_slice(row);
        }
        let batch = Tensor::from_vec(rows, &[occupancy, m])?;

        let span = self
            .tel
            .span("serve.step")
            .tag("tokens", occupancy as u64)
            .tag("inflight", plan.entries.len() as u64);
        let step_out = execute_step(self.model, &self.cfg.exec, &batch)?;
        drop(span);
        self.a2a_elems += step_out.a2a_elems;
        self.steps += 1;
        self.tel.add_counter("serve.steps", 1);
        self.tel
            .add_counter("serve.tokens.served", occupancy as u64);
        self.tel.add_counter("serve.a2a.elems", step_out.a2a_elems);
        self.tel
            .set_gauge("serve.capacity", step_out.capacity as f64);

        // Advance the virtual clock by the step's modeled cost and
        // scatter outputs back to their requests.
        self.clock_us += self.cfg.service.step_cost_us(occupancy);
        let now = self.clock_us;
        let out = step_out.outputs.as_slice();
        for (i, &(id, _)) in plan.entries.iter().enumerate() {
            if let Some(t) = self.tracked.iter_mut().find(|t| t.req.id == id) {
                t.out_rows.extend_from_slice(&out[i * m..(i + 1) * m]);
                t.served += 1;
                t.steps += 1;
                t.first_token_us.get_or_insert(now);
            }
        }
        for id in finished {
            self.finalize(id, now)?;
        }
        Ok(())
    }

    fn finalize(&mut self, id: RequestId, now: u64) -> Result<(), ServeError> {
        let idx = self
            .tracked
            .iter()
            .position(|t| t.req.id == id)
            .ok_or_else(|| ServeError::Config(format!("finished unknown request {id}")))?;
        let t = self.tracked.swap_remove(idx);
        let n = t.req.num_tokens();
        let outcome = RequestOutcome {
            id,
            output: Tensor::from_vec(t.out_rows, &[n, self.model.dims.model_dim])?,
            arrival_us: t.req.arrival_us,
            deadline_us: t.req.deadline_us,
            admitted_us: t.admitted_us,
            first_token_us: t.first_token_us.unwrap_or(now),
            finish_us: now,
            steps: t.steps,
        };
        let latency = outcome.latency_us();
        let span = self
            .tel
            .span("serve.request")
            .request(id)
            .tag("tokens", n as u64)
            .tag("latency_us", latency);
        drop(span);
        self.tel.record_hist("serve.latency_us", latency as f64);
        self.tel.add_counter("serve.requests.completed", 1);
        if outcome.missed_deadline() {
            self.tel.add_counter("serve.deadline_miss", 1);
            self.tel.anomaly(AnomalyRecord {
                kind: "serve.deadline_miss".into(),
                rank: None,
                request_id: Some(id),
                ratio: latency as f64
                    / outcome
                        .deadline_us
                        .saturating_sub(outcome.arrival_us)
                        .max(1) as f64,
                detail: format!(
                    "request {id} finished {}us past its deadline (latency {latency}us)",
                    outcome.finish_us - outcome.deadline_us
                ),
                step: None,
            });
        }
        self.just_finished.push(id);
        self.outcomes.push(outcome);
        Ok(())
    }

    /// Closes the run: computes the latency distribution, flags
    /// straggler victims in the anomaly ring, stamps the audit log,
    /// and returns the report.
    pub fn finish(self) -> ServeReport {
        let mut latencies: Vec<u64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_us)
            .collect();
        latencies.sort_unstable();
        let p50 = percentile_us(&latencies, 0.50);
        let p99 = percentile_us(&latencies, 0.99);
        let misses = self.outcomes.iter().filter(|o| o.missed_deadline()).count() as u64;
        let makespan = self.outcomes.iter().map(|o| o.finish_us).max().unwrap_or(0);
        let good_tokens: u64 = self
            .outcomes
            .iter()
            .filter(|o| !o.missed_deadline())
            .map(|o| o.output.dims().first().copied().unwrap_or(0) as u64)
            .sum();
        let goodput = if makespan == 0 {
            0.0
        } else {
            good_tokens as f64 * 1e6 / makespan as f64
        };

        // Straggler alerts name their victim: any request whose
        // latency exceeds 3× the median is flagged with its id.
        if p50 > 0 {
            for o in &self.outcomes {
                let l = o.latency_us();
                if l > 3 * p50 {
                    self.tel.anomaly(AnomalyRecord {
                        kind: "serve.straggler".into(),
                        rank: None,
                        request_id: Some(o.id),
                        ratio: l as f64 / p50 as f64,
                        detail: format!("request {} latency {l}us vs p50 {p50}us", o.id),
                        step: None,
                    });
                }
            }
        }
        self.tel.set_gauge("serve.p50_us", p50 as f64);
        self.tel.set_gauge("serve.p99_us", p99 as f64);
        self.tel.set_gauge("serve.goodput_tps", goodput);
        // The adaptive audit log records what the serving tier ran
        // with, next to the decisions the adaptive machinery makes,
        // so a latency regression and its configuration sit side by
        // side.
        self.tel.decision(DecisionRecord {
            kind: "serve.batcher".into(),
            capacity_factor: 0.0,
            candidates: vec![
                ("p50_us".into(), p50 as f64 * 1e-6),
                ("p99_us".into(), p99 as f64 * 1e-6),
            ],
            chosen: format!(
                "{} slots={} timeout={}us",
                self.cfg.exec.label(),
                self.cfg.batcher.slots(),
                self.cfg.batcher.admit_timeout_us
            ),
            predicted_s: None,
            measured_s: Some(makespan as f64 * 1e-6),
            cause: None,
            precision: None,
            dropless: self.cfg.exec.dropless,
            step: None,
        });

        ServeReport {
            outcomes: self.outcomes,
            rejected: self.queue.rejected(),
            steps: self.steps,
            p50_us: p50,
            p99_us: p99,
            deadline_misses: misses,
            goodput_tps: goodput,
            makespan_us: makespan,
            a2a_elems: self.a2a_elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Strategy;
    use crate::model::ModelDims;
    use tutel_comm::AllToAllAlgo;
    use tutel_tensor::Rng;

    fn engine_cfg(world: usize, slots: usize) -> EngineConfig {
        EngineConfig {
            batcher: BatcherConfig {
                max_batch_tokens: slots,
                max_inflight: slots,
                admit_timeout_us: 50,
            },
            service: ServiceModel {
                step_floor_us: 100,
                per_token_us: 10,
            },
            queue_capacity: 64,
            exec: ExecConfig {
                strategy: Strategy::P1,
                algo: AllToAllAlgo::Linear,
                degree: 1,
                world,
                threads: 1,
                dropless: true,
            },
        }
    }

    fn requests(seed: u64, n: usize, model_dim: usize) -> Vec<Request> {
        let mut rng = Rng::seed(seed);
        (0..n)
            .map(|i| {
                let tokens = rng.below(3) + 1;
                let arrival = i as u64 * 60;
                Request {
                    id: i as u64,
                    tokens: rng.normal_tensor(&[tokens, model_dim], 0.0, 1.0),
                    arrival_us: arrival,
                    deadline_us: arrival + 5_000,
                }
            })
            .collect()
    }

    #[test]
    fn trace_run_is_deterministic_and_complete() {
        let dims = ModelDims::small(1);
        let model = ServeModel::materialize(dims, 11).unwrap();
        let cfg = engine_cfg(1, 4);
        let tel = Telemetry::disabled();
        let a = run_trace(&model, &cfg, requests(3, 8, dims.model_dim), &tel).unwrap();
        let b = run_trace(&model, &cfg, requests(3, 8, dims.model_dim), &tel).unwrap();
        assert_eq!(a.completed(), 8);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.p50_us, b.p50_us);
        assert_eq!(a.p99_us, b.p99_us);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish_us, y.finish_us);
            assert_eq!(x.output.as_slice(), y.output.as_slice());
        }
    }

    #[test]
    fn batched_outputs_match_the_per_request_reference_bitwise() {
        let dims = ModelDims::small(2);
        let model = ServeModel::materialize(dims, 21).unwrap();
        let cfg = engine_cfg(2, 4);
        let tel = Telemetry::disabled();
        let reqs = requests(9, 10, dims.model_dim);
        let originals: Vec<Request> = reqs.clone();
        let report = run_trace(&model, &cfg, reqs, &tel).unwrap();
        assert_eq!(report.completed(), 10);
        for o in &report.outcomes {
            let req = originals.iter().find(|r| r.id == o.id).unwrap();
            let reference = crate::exec::reference_rows(&model, &req.tokens).unwrap();
            assert_eq!(
                o.output.as_slice(),
                reference.as_slice(),
                "request {} diverged from its solo reference",
                o.id
            );
        }
    }

    #[test]
    fn continuous_batching_beats_serial_on_an_overlapping_trace() {
        let dims = ModelDims::small(1);
        let model = ServeModel::materialize(dims, 5).unwrap();
        let tel = Telemetry::disabled();
        let continuous = run_trace(
            &model,
            &engine_cfg(1, 4),
            requests(7, 12, dims.model_dim),
            &tel,
        )
        .unwrap();
        let mut serial_cfg = engine_cfg(1, 4);
        serial_cfg.batcher = BatcherConfig::serial();
        let serial = run_trace(&model, &serial_cfg, requests(7, 12, dims.model_dim), &tel).unwrap();
        assert!(
            continuous.goodput_tps > serial.goodput_tps,
            "continuous {} <= serial {}",
            continuous.goodput_tps,
            serial.goodput_tps
        );
        assert!(continuous.p99_us <= serial.p99_us);
    }

    #[test]
    fn slo_accounting_lands_in_telemetry_with_request_ids() {
        let dims = ModelDims::small(1);
        let model = ServeModel::materialize(dims, 2).unwrap();
        let tel = Telemetry::enabled();
        let mut cfg = engine_cfg(1, 2);
        // Impossible deadline: everything misses.
        let reqs: Vec<Request> = requests(1, 3, dims.model_dim)
            .into_iter()
            .map(|mut r| {
                r.deadline_us = r.arrival_us + 1;
                r
            })
            .collect();
        cfg.batcher.admit_timeout_us = 0;
        let report = run_trace(&model, &cfg, reqs, &tel).unwrap();
        assert_eq!(report.deadline_misses, 3);
        assert_eq!(tel.counter_value("serve.deadline_miss"), Some(3));
        let anomalies = tel.anomalies();
        assert!(anomalies
            .iter()
            .any(|a| a.kind == "serve.deadline_miss" && a.request_id.is_some()));
        assert!(!tel.decisions().is_empty());
    }
}
