//! Bounded ingress queue: the boundary between concurrent request
//! producers and the deterministic engine.
//!
//! Producers (benchmark drivers, the load generator, `rt`-pool
//! workers) push from any thread; a full queue rejects instead of
//! blocking, so admission control happens before any serving capacity
//! is spent. The engine drains in virtual-arrival order — the drain
//! sorts by `(arrival_us, id)`, so the handoff order is a pure
//! function of the trace no matter how OS threads interleaved their
//! pushes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::request::{Request, ServeError};

/// Thread-safe bounded queue of not-yet-admitted requests.
pub struct IngressQueue {
    inner: Mutex<VecDeque<Request>>,
    capacity: usize,
    rejected: AtomicU64,
}

impl IngressQueue {
    /// Creates a queue holding at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> Self {
        IngressQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            rejected: AtomicU64::new(0),
        }
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] if the queue already holds
    /// `capacity` requests; the rejection counter is bumped and the
    /// request is dropped without consuming serving capacity.
    pub fn push(&self, req: Request) -> Result<(), ServeError> {
        let mut q = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if q.len() >= self.capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                id: req.id,
                capacity: self.capacity,
            });
        }
        q.push_back(req);
        Ok(())
    }

    /// Removes and returns every queued request whose arrival time is
    /// at or before `now_us`, sorted by `(arrival_us, id)` — the
    /// deterministic handoff order regardless of producer-thread
    /// interleaving.
    pub fn drain_arrived(&self, now_us: u64) -> Vec<Request> {
        let mut q = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut ready = Vec::new();
        let mut waiting = VecDeque::new();
        for req in q.drain(..) {
            if req.arrival_us <= now_us {
                ready.push(req);
            } else {
                waiting.push_back(req);
            }
        }
        *q = waiting;
        ready.sort_by_key(|r| (r.arrival_us, r.id));
        ready
    }

    /// Earliest arrival time among still-queued requests, if any.
    pub fn next_arrival_us(&self) -> Option<u64> {
        let q = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        q.iter().map(|r| r.arrival_us).min()
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_tensor::Tensor;

    fn req(id: u64, arrival_us: u64) -> Request {
        Request {
            id,
            tokens: Tensor::zeros(&[1, 4]),
            arrival_us,
            deadline_us: arrival_us + 1_000,
        }
    }

    #[test]
    fn rejects_when_full_and_counts_it() {
        let q = IngressQueue::new(2);
        q.push(req(0, 0)).unwrap();
        q.push(req(1, 0)).unwrap();
        let err = q.push(req(2, 0)).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { id: 2, capacity: 2 }));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_is_sorted_and_respects_arrival_time() {
        let q = IngressQueue::new(8);
        // Pushed out of order; only arrivals ≤ now drain, sorted.
        q.push(req(5, 30)).unwrap();
        q.push(req(1, 10)).unwrap();
        q.push(req(2, 10)).unwrap();
        q.push(req(9, 99)).unwrap();
        let got: Vec<u64> = q.drain_arrived(30).iter().map(|r| r.id).collect();
        assert_eq!(got, vec![1, 2, 5]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_arrival_us(), Some(99));
    }

    #[test]
    fn concurrent_pushes_on_the_rt_pool_drain_deterministically() {
        // Producers race on the rt pool; the drain order must be a
        // pure function of the trace (arrival, id), not of thread
        // scheduling.
        let q = IngressQueue::new(64);
        let q_ref = &q;
        tutel_rt::parallel_for(32, 1, |start, end| {
            for i in start..end {
                let id = i as u64;
                let _ = q_ref.push(req(id, (id % 4) * 10));
            }
        });
        let got: Vec<u64> = q_ref.drain_arrived(100).iter().map(|r| r.id).collect();
        let mut expect: Vec<u64> = (0..32).collect();
        expect.sort_by_key(|id| (id % 4, *id));
        assert_eq!(got, expect);
    }
}
