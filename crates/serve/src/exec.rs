//! Micro-batch execution: one serving step through the overlapped
//! dispatch → expert FFN → combine path, plus the sequential
//! per-request reference executor the differential oracle compares
//! against.
//!
//! # The serving oracle contract
//!
//! Every operation on the serve path is **per-token-row**: router
//! logits, softmax, top-k selection, gate normalization, encode
//! (slot moves), the expert FFN (row-wise GEMMs), and decode (a
//! fixed-order k-sum per token). The only place a micro-batch could
//! couple one request's result to its batch-mates is capacity
//! clamping — so serving always routes **dropless**
//! ([`tutel_gate::CapacityPolicy::AutoMin`], see
//! [`crate::model::ModelDims::route_config`]). Under that policy, a
//! token's output is a function of its own row and the model alone,
//! and therefore:
//!
//! * P1 execution is **bitwise identical** to running the token's
//!   request by itself through [`reference_rows`], for any batch
//!   composition, pipeline degree, world size, or thread count;
//! * P2 re-associates one addition chain (the hidden-shard partial
//!   sum), so it is instead bounded by ≤ 4 scaled ULP.
//!
//! Capacity is only a **buffer shape**: each rank resolves its
//! dropless minimum, ranks agree on the global maximum (one
//! all-gather) padded up to a multiple of the pipeline degree, and
//! the padded slots stay zero — no token ever decodes from them.

use tutel::overlap::run_overlapped;
use tutel_comm::runtime::{run_threaded, run_threaded_reliable, Communicator, ReliableConfig};
use tutel_comm::AllToAllAlgo;
use tutel_experts::{ExpertsBlock, ShardedExpertParams};
use tutel_gate::{route, RaggedRouting, Router};
use tutel_kernels::{fast_decode, fast_encode, ragged_decode, ragged_encode};
use tutel_rt::with_parallelism_limit;
use tutel_simgpu::Topology;
use tutel_tensor::{Tensor, TensorError};

use crate::model::ServeModel;
use crate::request::ServeError;

/// Expert-parallel strategy for the serving step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Each rank applies its experts' full parameters in one block.
    P1,
    /// Parameters sharded along the hidden dimension; per-shard
    /// partial outputs are summed (re-associates one addition chain).
    P2,
}

impl Strategy {
    /// Short label for grids and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::P1 => "P1",
            Strategy::P2 => "P2",
        }
    }
}

/// Knobs of the distributed serving step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// P1 or P2 expert parallelism.
    pub strategy: Strategy,
    /// All-to-All algorithm on the wire.
    pub algo: AllToAllAlgo,
    /// Pipeline degree: capacity is split into this many overlapped
    /// chunks.
    pub degree: usize,
    /// Simulated ranks; must equal the model's world.
    pub world: usize,
    /// Per-rank compute parallelism limit.
    pub threads: usize,
    /// Route the expert exchange through packed ragged bins and
    /// grouped GEMM — exact routed counts on the wire, no capacity
    /// padding anywhere. `false` keeps the padded capacity twin, which
    /// the harness diff-tests the grouped path against.
    pub dropless: bool,
}

impl ExecConfig {
    /// Grid label, e.g. `P1/lin d2 w2`.
    pub fn label(&self) -> String {
        let algo = match self.algo {
            AllToAllAlgo::Linear => "lin",
            AllToAllAlgo::TwoDh => "2dh",
        };
        format!(
            "{}/{} d{} w{}{}",
            self.strategy.label(),
            algo,
            self.degree,
            self.world,
            if self.dropless { " dl" } else { "" }
        )
    }
}

/// The topology for each simulated world size: single node for one
/// rank, a 2-node hierarchy otherwise so 2DH exercises both phases.
pub fn topology_for(world: usize) -> Topology {
    match world {
        1 => Topology::single_node(1),
        2 => Topology::new(2, 1),
        w => Topology::new(2, w / 2),
    }
}

/// What one rank's program returns: its flat output rows, the
/// reconciled capacity, and its wire payload volume.
type RankResult = Result<(Vec<f32>, usize, u64), ServeError>;

/// What one executed step produced.
pub struct StepOutput {
    /// Per-token outputs `(B, model_dim)`, row `i` for batch row `i`.
    pub outputs: Tensor,
    /// Shared expert capacity the step ran with (after degree
    /// padding).
    pub capacity: usize,
    /// Total `f32` elements all ranks pushed onto the wire as
    /// collective payload during the step.
    pub a2a_elems: u64,
}

/// Executes one micro-batch step over the threaded runtime.
///
/// Batch rows are dealt round-robin across ranks (row `i` to rank
/// `i mod world`; the batch is zero-padded up to a multiple of the
/// world size, and padded rows are dropped from the output). Each
/// rank gates and routes its own rows with the replicated router,
/// dropless; capacity is reconciled globally so every rank's
/// All-to-All wires agree.
///
/// # Errors
///
/// [`ServeError::Config`] for an empty batch or a config/model
/// mismatch; [`ServeError::Tensor`]/[`ServeError::Comm`] propagated
/// from execution.
pub fn execute_step(
    model: &ServeModel,
    cfg: &ExecConfig,
    batch: &Tensor,
) -> Result<StepOutput, ServeError> {
    execute_step_with(model, cfg, batch, None)
}

/// [`execute_step`] with the comm reliability layer armed: sends are
/// logged for retransmission and `cfg_rel.plan` (if any) injects
/// seeded drop/duplicate/delay faults, which the retry protocol must
/// absorb without changing a single output bit.
///
/// # Errors
///
/// As [`execute_step`]; additionally [`ServeError::Comm`] with
/// [`tutel_comm::CommError::Timeout`] when the fault plan exhausts
/// the retry budget.
pub fn execute_step_reliable(
    model: &ServeModel,
    cfg: &ExecConfig,
    batch: &Tensor,
    cfg_rel: ReliableConfig,
) -> Result<StepOutput, ServeError> {
    execute_step_with(model, cfg, batch, Some(cfg_rel))
}

fn execute_step_with(
    model: &ServeModel,
    cfg: &ExecConfig,
    batch: &Tensor,
    cfg_rel: Option<ReliableConfig>,
) -> Result<StepOutput, ServeError> {
    let dims = model.dims;
    if cfg.world != dims.world {
        return Err(ServeError::Config(format!(
            "exec world {} != model world {}",
            cfg.world, dims.world
        )));
    }
    if cfg.degree == 0 {
        return Err(ServeError::Config("pipeline degree must be nonzero".into()));
    }
    let b = batch.dims().first().copied().unwrap_or(0);
    if b == 0 {
        return Err(ServeError::Config("empty micro-batch".into()));
    }
    if batch.dims() != [b, dims.model_dim] {
        return Err(ServeError::Config(format!(
            "batch dims {:?} != (B, {})",
            batch.dims(),
            dims.model_dim
        )));
    }

    // Zero-pad to a multiple of world so every rank serves the same
    // row count. A zero row routes deterministically (uniform gate)
    // and its output is discarded below; under dropless routing it
    // cannot perturb any real row (see module docs).
    let world = cfg.world;
    let bp = b.div_ceil(world) * world;
    let per_rank = bp / world;
    let mut padded = batch.as_slice().to_vec();
    padded.resize(bp * dims.model_dim, 0.0);
    let padded = Tensor::from_vec(padded, &[bp, dims.model_dim])?;

    let topo = topology_for(world);
    if topo.world_size() != world {
        return Err(ServeError::Config(format!(
            "topology world {} != {}",
            topo.world_size(),
            world
        )));
    }

    let cfg = *cfg;
    let model_ref = model;
    let padded_ref = &padded;
    let program = move |comm: Communicator| {
        with_parallelism_limit(cfg.threads, || {
            if cfg.dropless {
                run_rank_grouped(model_ref, &cfg, padded_ref, per_rank, comm)
            } else {
                run_rank(model_ref, &cfg, padded_ref, per_rank, comm)
            }
        })
    };
    let rank_results: Vec<RankResult> = match cfg_rel {
        None => run_threaded(topo, program),
        Some(rel) => run_threaded_reliable(topo, rel, program),
    };

    let mut outs = Vec::with_capacity(world);
    let mut capacity = 0usize;
    let mut a2a_elems = 0u64;
    for res in rank_results {
        let (out, cap, sent) = res?;
        capacity = capacity.max(cap);
        a2a_elems += sent;
        outs.push(out);
    }

    // Stitch rank outputs back round-robin and drop the padding rows.
    let m = dims.model_dim;
    let mut stitched = vec![0.0f32; b * m];
    for (i, row) in stitched.chunks_mut(m).enumerate() {
        let rank = i % world;
        let local = i / world;
        let src = outs
            .get(rank)
            .and_then(|o| o.get(local * m..(local + 1) * m))
            .ok_or_else(|| ServeError::Config("rank output shorter than its rows".into()))?;
        row.copy_from_slice(src);
    }
    Ok(StepOutput {
        outputs: Tensor::from_vec(stitched, &[b, m])?,
        capacity,
        a2a_elems,
    })
}

/// One rank's program: gate + route its rows, reconcile capacity,
/// drive the overlapped exchange, decode. Returns the rank's flat
/// output rows, the reconciled capacity, and its wire payload volume.
fn run_rank(
    model: &ServeModel,
    cfg: &ExecConfig,
    padded: &Tensor,
    per_rank: usize,
    mut comm: Communicator,
) -> RankResult {
    let dims = model.dims;
    let world = cfg.world;
    let rank = comm.rank();
    let m = dims.model_dim;

    // This rank's rows: global rows rank, rank+world, rank+2·world, …
    let mut rows = Vec::with_capacity(per_rank * m);
    let src = padded.as_slice();
    for local in 0..per_rank {
        let g = local * world + rank;
        rows.extend_from_slice(&src[g * m..(g + 1) * m]);
    }
    let x = Tensor::from_vec(rows, &[per_rank, m])?;

    // Gate + dropless route, per-row and identical to the reference
    // by construction.
    let probs = model.router.logits(&x)?.softmax_last();
    let mut routing = route(&probs, &dims.route_config())?;

    // Reconcile capacity: ranks must agree on the wire shape. The
    // shared value is the max of the per-rank dropless minima, padded
    // to a multiple of the pipeline degree. Raising capacity after
    // routing is safe: dropless slot assignment never clamped, so
    // every assigned slot stays valid and new slots stay empty.
    let local_cap = routing.capacity;
    let global_cap = if world > 1 {
        let gathered = comm.all_gather(&[local_cap as f32])?;
        gathered
            .iter()
            .fold(local_cap, |acc, &c| acc.max(c as usize))
    } else {
        local_cap
    };
    let capacity = global_cap.div_ceil(cfg.degree) * cfg.degree;
    routing.capacity = capacity;
    let cc = capacity / cfg.degree;

    let enc = fast_encode(&x, &routing)?;
    let enc_chunks = enc.split_axis(1, cfg.degree)?;
    let enc_wire: Vec<Vec<f32>> = enc_chunks.iter().map(|c| c.as_slice().to_vec()).collect();

    // This rank's expert slice, built once: the full local block
    // under P1, or its hidden-dimension shards under P2.
    let local = local_block(model, rank)?;
    let blocks: Vec<ExpertsBlock> = match cfg.strategy {
        Strategy::P1 => vec![local],
        Strategy::P2 => {
            let params = ShardedExpertParams::from_block(&local, dims.shards)?;
            (0..params.shards())
                .map(|r| params.shard_block(r))
                .collect()
        }
    };

    // The overlap engine wants an infallible chunk-compute closure;
    // shape errors (impossible once dims validated, but typed anyway)
    // are parked here and surfaced after the exchange drains, with a
    // zero chunk keeping the collective protocol in lock-step.
    let wire_len = world * dims.local_experts * cc * m;
    let mut parked: Option<TensorError> = None;
    let run = run_overlapped(
        &mut comm,
        cfg.algo,
        &enc_wire,
        |_, received| match compute_chunk(model, &blocks, received, world, cc) {
            Ok(wire) => wire,
            Err(e) => {
                parked.get_or_insert(e);
                vec![0.0; wire_len]
            }
        },
    )?;
    if let Some(e) = parked {
        return Err(ServeError::Tensor(e));
    }

    let mut out_chunks = Vec::with_capacity(cfg.degree);
    for wire in run.combined {
        out_chunks.push(Tensor::from_vec(
            wire,
            &[dims.local_experts * world, cc, m],
        )?);
    }
    let combined = Tensor::concat_axis(&out_chunks, 1)?;
    let output = fast_decode(&combined, &routing, per_rank)?;
    Ok((
        output.as_slice().to_vec(),
        capacity,
        comm.sent_payload_elems(),
    ))
}

/// One rank's **dropless** program: route, pack ragged bins, exchange
/// the exact routed rows over flexible (v-) All-to-Alls, grouped-GEMM
/// the received bins, exchange back, decode. Capacity never
/// materializes — the wire carries an `offsets`-shaped count header
/// plus the rows themselves, not `E·C` padded slabs, so payloads
/// shrink to the routed token counts and a hot expert costs only its
/// own rows.
///
/// The pipeline degree splits every expert bin into `degree`
/// deterministic sub-ranges and runs one blocking v-exchange per
/// sub-range: overlap changes *when* rows move, never what they hold,
/// and each output row's GEMM accumulation order is independent of
/// its bin-mates, so the padded twin's bitwise contract carries over
/// unchanged. The returned "capacity" is the rank's largest routed
/// bin — the shape the padded twin would have inflated every expert
/// to.
fn run_rank_grouped(
    model: &ServeModel,
    cfg: &ExecConfig,
    padded: &Tensor,
    per_rank: usize,
    mut comm: Communicator,
) -> RankResult {
    let dims = model.dims;
    let world = cfg.world;
    let rank = comm.rank();
    let m = dims.model_dim;
    let le = dims.local_experts;

    // This rank's rows: global rows rank, rank+world, rank+2·world, …
    let mut rows = Vec::with_capacity(per_rank * m);
    let src = padded.as_slice();
    for local in 0..per_rank {
        let g = local * world + rank;
        rows.extend_from_slice(&src[g * m..(g + 1) * m]);
    }
    let x = Tensor::from_vec(rows, &[per_rank, m])?;

    // Gate + dropless route; no capacity reconciliation — ranks don't
    // need to agree on any buffer shape, only on the v-payloads they
    // exchange, and those carry their own counts.
    let probs = model.router.logits(&x)?.softmax_last();
    let routing = route(&probs, &dims.route_config())?;
    let ragged = RaggedRouting::from_routing(&routing);
    let enc = ragged_encode(&x, &routing, &ragged)?;
    let es = enc.as_slice();

    let local = local_block(model, rank)?;
    let blocks: Vec<ExpertsBlock> = match cfg.strategy {
        Strategy::P1 => vec![local],
        Strategy::P2 => {
            let params = ShardedExpertParams::from_block(&local, dims.shards)?;
            (0..params.shards())
                .map(|r| params.shard_block(r))
                .collect()
        }
    };

    // Chunk c of bin e: the deterministic sub-range
    // [len·c/D, len·(c+1)/D) of the bin's packed rows.
    let bin_chunk = |e: usize, c: usize| -> (usize, usize) {
        let s = ragged.offsets[e];
        let len = ragged.offsets[e + 1] - s;
        (s + len * c / cfg.degree, s + len * (c + 1) / cfg.degree)
    };

    let mut y_packed = vec![0.0f32; ragged.total() * m];
    for c in 0..cfg.degree {
        // Outbound: rank d receives a header of its `le` bin-chunk
        // row counts (f32-exact below 2^24) followed by the rows,
        // expert-major.
        let sends: Vec<Vec<f32>> = (0..world)
            .map(|d| {
                let mut buf = Vec::new();
                for e in d * le..(d + 1) * le {
                    let (s, t) = bin_chunk(e, c);
                    buf.push((t - s) as f32);
                }
                for e in d * le..(d + 1) * le {
                    let (s, t) = bin_chunk(e, c);
                    buf.extend_from_slice(&es[s * m..t * m]);
                }
                buf
            })
            .collect();
        let recvd = match cfg.algo {
            AllToAllAlgo::Linear => comm.all_to_all_v(&sends)?,
            AllToAllAlgo::TwoDh => comm.all_to_all_v_2dh(&sends)?,
        };

        // Regroup the (src, expert) segments into per-expert bins in
        // source order and grouped-GEMM them with this rank's blocks.
        let mut seg_len = vec![vec![0usize; le]; world];
        for (s_rank, buf) in recvd.iter().enumerate() {
            for e in 0..le {
                seg_len[s_rank][e] = buf[e] as usize;
            }
        }
        let mut offsets = vec![0usize; le + 1];
        for e in 0..le {
            offsets[e + 1] = offsets[e] + (0..world).map(|s| seg_len[s][e]).sum::<usize>();
        }
        let total = offsets[le];

        let back: Vec<Vec<f32>> = if total == 0 {
            // Nothing routed here this chunk (possible under heavy
            // skew): keep the collective in lock-step with empties.
            vec![Vec::new(); world]
        } else {
            let mut gx = vec![0.0f32; total * m];
            // place[s][e]: packed row where src s's expert-e segment
            // landed — the return trip reads it back out.
            let mut place = vec![vec![0usize; le]; world];
            let mut at = 0usize;
            for e in 0..le {
                for (s_rank, buf) in recvd.iter().enumerate() {
                    let skip: usize = seg_len[s_rank][..e].iter().sum();
                    let n = seg_len[s_rank][e];
                    let from = le + skip * m;
                    gx[at * m..(at + n) * m].copy_from_slice(&buf[from..from + n * m]);
                    place[s_rank][e] = at;
                    at += n;
                }
            }
            let gx_t = Tensor::from_vec(gx, &[total, m])?;
            let mut acc: Option<Tensor> = None;
            for block in &blocks {
                let y = block.infer_grouped(&gx_t, &offsets)?;
                acc = Some(match acc {
                    None => y,
                    Some(mut a) => {
                        a.axpy(1.0, &y)?;
                        a
                    }
                });
            }
            let y_t =
                acc.ok_or_else(|| ServeError::Config("strategy produced no expert blocks".into()))?;
            let ys = y_t.as_slice();
            (0..world)
                .map(|s_rank| {
                    let mut buf = Vec::new();
                    for e in 0..le {
                        let at = place[s_rank][e];
                        let n = seg_len[s_rank][e];
                        buf.extend_from_slice(&ys[at * m..(at + n) * m]);
                    }
                    buf
                })
                .collect()
        };

        let returned = match cfg.algo {
            AllToAllAlgo::Linear => comm.all_to_all_v(&back)?,
            AllToAllAlgo::TwoDh => comm.all_to_all_v_2dh(&back)?,
        };
        for (d, buf) in returned.iter().enumerate() {
            let mut at = 0usize;
            for e in d * le..(d + 1) * le {
                let (s, t) = bin_chunk(e, c);
                let n = (t - s) * m;
                y_packed[s * m..t * m].copy_from_slice(&buf[at..at + n]);
                at += n;
            }
        }
    }

    let y_t = Tensor::from_vec(y_packed, &[ragged.total(), m])?;
    let output = ragged_decode(&y_t, &routing, &ragged, per_rank)?;
    let eff_cap = (0..routing.experts)
        .map(|e| ragged.bin_len(e))
        .max()
        .unwrap_or(0);
    Ok((
        output.as_slice().to_vec(),
        eff_cap,
        comm.sent_payload_elems(),
    ))
}

/// Expert-side compute for one pipeline chunk: rebuild the
/// `(ΔE, W·cc, M)` batch from the origin-major wire, apply the
/// executing rank's expert blocks (one full block under P1, one per
/// hidden shard under P2, partials summed in shard order), and lay
/// the result back out rank-major for the return exchange.
fn compute_chunk(
    model: &ServeModel,
    blocks: &[ExpertsBlock],
    received: Vec<f32>,
    world: usize,
    cc: usize,
) -> Result<Vec<f32>, TensorError> {
    let dims = model.dims;
    let m = dims.model_dim;
    let flex = Tensor::from_vec(received, &[world, dims.local_experts, cc, m])?
        .permute(&[1, 0, 2, 3])?
        .reshape(&[dims.local_experts, world * cc, m])?;
    let mut acc: Option<Tensor> = None;
    for block in blocks {
        let y = block.infer(&flex)?;
        acc = Some(match acc {
            None => y,
            Some(mut a) => {
                a.axpy(1.0, &y)?;
                a
            }
        });
    }
    let out = match acc {
        Some(t) => t,
        None => Tensor::zeros(flex.dims()),
    };
    out.reshape(&[dims.local_experts, world, cc, m])?
        .permute(&[1, 0, 2, 3])
        .map(|t| t.as_slice().to_vec())
}

/// The executing rank's slice of the global expert bank.
fn local_block(model: &ServeModel, rank: usize) -> Result<ExpertsBlock, TensorError> {
    let (w1, b1, w2, b2) = model.experts.weights();
    let slice = |t: &Tensor| -> Result<Tensor, TensorError> {
        Ok(t.split_axis(0, model.dims.world)?[rank].clone())
    };
    ExpertsBlock::from_weights(slice(w1)?, slice(b1)?, slice(w2)?, slice(b2)?)
}

/// The sequential per-request reference: the same gate → dropless
/// route → encode → global-expert FFN → decode chain with no
/// distribution at all. The differential oracle runs each request
/// through this alone and demands the batched engine reproduce it
/// per the module-level contract.
///
/// # Errors
///
/// [`ServeError::Tensor`] if `rows` does not match the model width.
pub fn reference_rows(model: &ServeModel, rows: &Tensor) -> Result<Tensor, ServeError> {
    let n = rows.dims().first().copied().unwrap_or(0);
    let probs = model.router.logits(rows)?.softmax_last();
    let routing = route(&probs, &model.dims.route_config())?;
    let enc = fast_encode(rows, &routing)?;
    let y = model.experts.infer(&enc)?;
    Ok(fast_decode(&y, &routing, n)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelDims;
    use tutel_tensor::Rng;

    fn batch(dims: &ModelDims, b: usize, seed: u64) -> Tensor {
        Rng::seed(seed).normal_tensor(&[b, dims.model_dim], 0.0, 1.0)
    }

    #[test]
    fn grouped_step_matches_padded_twin_and_reference_bitwise() {
        // P1 at one thread: the dropless grouped step, the padded
        // capacity twin, and the solo reference must agree bit for
        // bit — only the wire layout differs.
        let dims = ModelDims::small(2);
        let model = ServeModel::materialize(dims, 7).unwrap();
        let x = batch(&dims, 9, 11);
        let expect = reference_rows(&model, &x).unwrap();
        for algo in [AllToAllAlgo::Linear, AllToAllAlgo::TwoDh] {
            for degree in [1, 2] {
                let mut cfg = ExecConfig {
                    strategy: Strategy::P1,
                    algo,
                    degree,
                    world: 2,
                    threads: 1,
                    dropless: true,
                };
                let grouped = execute_step(&model, &cfg, &x).unwrap();
                cfg.dropless = false;
                let padded = execute_step(&model, &cfg, &x).unwrap();
                assert_eq!(
                    grouped.outputs.as_slice(),
                    expect.as_slice(),
                    "grouped vs reference ({})",
                    cfg.label()
                );
                assert_eq!(
                    grouped.outputs.as_slice(),
                    padded.outputs.as_slice(),
                    "grouped vs padded twin ({})",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn grouped_step_moves_fewer_wire_elements_than_padded() {
        // The point of the exercise: exact routed counts on the wire.
        // Header overhead is a few f32 per (peer, chunk); the padded
        // twin ships E·C·M slabs regardless of routing.
        let dims = ModelDims::small(4);
        let model = ServeModel::materialize(dims, 3).unwrap();
        let x = batch(&dims, 32, 5);
        let mut cfg = ExecConfig {
            strategy: Strategy::P1,
            algo: AllToAllAlgo::Linear,
            degree: 1,
            world: 4,
            threads: 1,
            dropless: true,
        };
        let grouped = execute_step(&model, &cfg, &x).unwrap();
        cfg.dropless = false;
        let padded = execute_step(&model, &cfg, &x).unwrap();
        assert_eq!(grouped.outputs.as_slice(), padded.outputs.as_slice());
        assert!(
            grouped.a2a_elems < padded.a2a_elems,
            "grouped wire {} !< padded wire {}",
            grouped.a2a_elems,
            padded.a2a_elems
        );
    }
}
