//! Request and outcome types plus the crate's typed error.
//!
//! All timestamps in this crate are **virtual time** in microseconds:
//! the engine advances a deterministic clock from the arrival trace
//! and a [`crate::engine::ServiceModel`], so every admission,
//! deadline, and latency decision replays bit-identically from a
//! seed. Wall-clock only ever feeds observability metrics that no
//! output or assertion depends on.

use std::fmt;

use tutel_comm::CommError;
use tutel_tensor::{Tensor, TensorError};

/// Identifies one request for the lifetime of an engine run.
pub type RequestId = u64;

/// One inference request: a short sequence of token feature rows to
/// push through the MoE layer, with an arrival time and a latency
/// deadline (both virtual, absolute).
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id; ties in every ordering break toward the smaller id.
    pub id: RequestId,
    /// Token features `(n, model_dim)`; one row is served per
    /// micro-batch step, in row order.
    pub tokens: Tensor,
    /// Absolute virtual arrival time (µs).
    pub arrival_us: u64,
    /// Absolute virtual deadline (µs); finishing later counts as an
    /// SLO miss (the request is still served — serving never sheds
    /// admitted work).
    pub deadline_us: u64,
}

impl Request {
    /// Number of token rows in this request.
    pub fn num_tokens(&self) -> usize {
        self.tokens.dims().first().copied().unwrap_or(0)
    }
}

/// What the engine produced for one request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The request's id.
    pub id: RequestId,
    /// Layer output `(n, model_dim)`, row `i` for token `i`.
    pub output: Tensor,
    /// Copied from the request.
    pub arrival_us: u64,
    /// Copied from the request.
    pub deadline_us: u64,
    /// Virtual time the request was admitted into the running batch.
    pub admitted_us: u64,
    /// Virtual completion time of the step serving the first token.
    pub first_token_us: u64,
    /// Virtual completion time of the step serving the last token.
    pub finish_us: u64,
    /// Micro-batch steps this request participated in.
    pub steps: u64,
}

impl RequestOutcome {
    /// End-to-end latency (arrival → last token), µs.
    pub fn latency_us(&self) -> u64 {
        self.finish_us.saturating_sub(self.arrival_us)
    }

    /// Whether the request finished after its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.finish_us > self.deadline_us
    }
}

/// Typed error surface of the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// A tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// A collective failed on the wire.
    Comm(CommError),
    /// The engine was configured inconsistently (e.g. zero batch
    /// capacity, token width not matching the model).
    Config(String),
    /// The bounded ingress queue was full; the request was rejected
    /// at admission, before consuming any serving capacity.
    QueueFull {
        /// The rejected request.
        id: RequestId,
        /// The queue's bound at rejection time.
        capacity: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Tensor(e) => write!(f, "tensor error: {e}"),
            ServeError::Comm(e) => write!(f, "comm error: {e}"),
            ServeError::Config(msg) => write!(f, "config error: {msg}"),
            ServeError::QueueFull { id, capacity } => {
                write!(
                    f,
                    "request {id} rejected: ingress queue full (capacity {capacity})"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

impl From<CommError> for ServeError {
    fn from(e: CommError) -> Self {
        ServeError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_miss_accounting() {
        let outcome = RequestOutcome {
            id: 3,
            output: Tensor::zeros(&[2, 4]),
            arrival_us: 100,
            deadline_us: 500,
            admitted_us: 150,
            first_token_us: 300,
            finish_us: 600,
            steps: 2,
        };
        assert_eq!(outcome.latency_us(), 500);
        assert!(outcome.missed_deadline());
    }

    #[test]
    fn errors_render_their_cause() {
        let e = ServeError::QueueFull { id: 9, capacity: 4 };
        assert!(e.to_string().contains("request 9"));
        assert!(e.to_string().contains("capacity 4"));
    }
}
