//! The served model: a replicated router plus the global expert bank,
//! materialized deterministically from a seed.

use tutel_experts::ExpertsBlock;
use tutel_gate::{CapacityPolicy, LinearRouter, RouteConfig};
use tutel_tensor::Rng;

use crate::request::ServeError;

/// Static dimensions of the served MoE layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelDims {
    /// Token feature width.
    pub model_dim: usize,
    /// Expert hidden width (split across `shards` under P2).
    pub hidden_dim: usize,
    /// Experts owned by each rank.
    pub local_experts: usize,
    /// Simulated world size; global experts = `local_experts · world`.
    pub world: usize,
    /// Experts per token.
    pub top_k: usize,
    /// Hidden-dimension shards under P2 execution.
    pub shards: usize,
}

impl ModelDims {
    /// A small default sized like the conformance fixture: fast to
    /// execute yet exercising multi-expert routing and sharding.
    pub fn small(world: usize) -> Self {
        ModelDims {
            model_dim: 8,
            hidden_dim: 16,
            local_experts: 2,
            world,
            top_k: 2,
            shards: 2,
        }
    }

    /// Global expert count.
    pub fn experts(&self) -> usize {
        self.local_experts * self.world
    }

    /// The routing configuration serving always uses: **dropless**
    /// ([`CapacityPolicy::AutoMin`]). Capacity clamping is the one
    /// place a micro-batch could couple one request's output to its
    /// batch-mates (a neighbour's token stealing the last slot), so
    /// the serving path forbids it — which is exactly what makes the
    /// per-request differential oracle a bitwise contract.
    pub fn route_config(&self) -> RouteConfig {
        RouteConfig {
            k: self.top_k,
            capacity: CapacityPolicy::AutoMin,
            bpr: false,
            normalize_gates: true,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.model_dim == 0 || self.hidden_dim == 0 {
            return Err(ServeError::Config(
                "model/hidden dim must be nonzero".into(),
            ));
        }
        if self.local_experts == 0 || self.world == 0 {
            return Err(ServeError::Config(
                "experts and world must be nonzero".into(),
            ));
        }
        if self.top_k == 0 || self.top_k > self.experts() {
            return Err(ServeError::Config(format!(
                "top_k {} out of range for {} experts",
                self.top_k,
                self.experts()
            )));
        }
        if self.shards == 0 || !self.hidden_dim.is_multiple_of(self.shards) {
            return Err(ServeError::Config(format!(
                "shards {} must divide hidden dim {}",
                self.shards, self.hidden_dim
            )));
        }
        Ok(())
    }
}

/// Parameters of the served layer. The router is replicated on every
/// rank; the expert bank is global and sliced per rank at execution
/// time (P1 applies a rank's full slice, P2 shards it again along the
/// hidden dimension).
pub struct ServeModel {
    /// Layer dimensions.
    pub dims: ModelDims,
    /// Replicated gate.
    pub router: LinearRouter,
    /// Global expert parameters `(E, ·)`.
    pub experts: ExpertsBlock,
}

impl ServeModel {
    /// Materializes a model from a seed: same seed, same bits,
    /// everywhere.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if `dims` is inconsistent.
    pub fn materialize(dims: ModelDims, seed: u64) -> Result<Self, ServeError> {
        dims.validate()?;
        let mut rng = Rng::seed(seed);
        let router = LinearRouter::new(dims.model_dim, dims.experts(), &mut rng);
        let experts = ExpertsBlock::new(dims.experts(), dims.model_dim, dims.hidden_dim, &mut rng);
        Ok(ServeModel {
            dims,
            router,
            experts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_gate::Router;

    #[test]
    fn materialization_is_deterministic() {
        let dims = ModelDims::small(2);
        let a = ServeModel::materialize(dims, 7).unwrap();
        let b = ServeModel::materialize(dims, 7).unwrap();
        assert_eq!(a.router.weights().as_slice(), b.router.weights().as_slice());
        let (aw, ..) = a.experts.weights();
        let (bw, ..) = b.experts.weights();
        assert_eq!(aw.as_slice(), bw.as_slice());
        assert_eq!(a.router.num_experts(), 4);
    }

    #[test]
    fn bad_dims_are_typed_errors() {
        let mut dims = ModelDims::small(1);
        dims.top_k = 99;
        assert!(matches!(
            ServeModel::materialize(dims, 1),
            Err(ServeError::Config(_))
        ));
        let mut dims = ModelDims::small(1);
        dims.shards = 3;
        assert!(dims.validate().is_err());
    }
}
