//! The continuous token-level batcher.
//!
//! Requests admitted into the running set contribute **one token row
//! per micro-batch step** (the serving analogue of iteration-level
//! scheduling: the batch is re-formed every step, so a finishing
//! sequence frees its slot immediately instead of holding the batch
//! until the longest member drains). Admission is earliest-deadline-
//! first over `(deadline, arrival, id)` and **work-conserving**: a
//! request waits only while every slot is occupied, which is what
//! makes the no-starvation property provable — a deadline miss
//! implies the batcher was saturated for the victim's entire wait.
//!
//! Launch is **fill-or-timeout**: a step fires as soon as the running
//! set fills every slot, or when the oldest admitted request has
//! waited `admit_timeout_us` (so a lone request is never parked
//! waiting for company that may not come).
//!
//! Everything here is pure bookkeeping on virtual time — no tensors,
//! no threads — so the proptests can hammer invariants cheaply.

use crate::request::RequestId;

/// Batcher knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Token rows per micro-batch step; since each running sequence
    /// contributes exactly one row per step, this also caps the
    /// running set.
    pub max_batch_tokens: usize,
    /// Concurrent sequences admitted at once (further capped by
    /// `max_batch_tokens`).
    pub max_inflight: usize,
    /// Fill-or-timeout: fire a partial step once the oldest admitted
    /// request has waited this long (µs of virtual time).
    pub admit_timeout_us: u64,
}

impl BatcherConfig {
    /// Effective slot count: sequences running concurrently.
    pub fn slots(&self) -> usize {
        self.max_inflight.min(self.max_batch_tokens).max(1)
    }

    /// The one-request-at-a-time baseline the benchmark compares
    /// against: a single slot and immediate launch.
    pub fn serial() -> Self {
        BatcherConfig {
            max_batch_tokens: 1,
            max_inflight: 1,
            admit_timeout_us: 0,
        }
    }
}

/// A request waiting for a slot.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: RequestId,
    total_tokens: usize,
    arrival_us: u64,
    deadline_us: u64,
}

impl Pending {
    /// EDF key; ties break toward earlier arrival, then smaller id.
    fn key(&self) -> (u64, u64, RequestId) {
        (self.deadline_us, self.arrival_us, self.id)
    }
}

/// A request occupying a slot.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: RequestId,
    total_tokens: usize,
    /// Next token row to serve; strictly monotone, so token order
    /// within a request is preserved by construction.
    cursor: usize,
    admitted_us: u64,
}

/// One step's worth of work: for each entry, serve token row
/// `token_idx` of request `id`. Entries are in admission order, which
/// is itself deterministic (EDF over a sorted pending list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPlan {
    /// `(request, token row)` pairs, one per occupied slot.
    pub entries: Vec<(RequestId, usize)>,
}

impl StepPlan {
    /// Token rows in this step.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

/// The continuous batcher's full state.
pub struct ContinuousBatcher {
    cfg: BatcherConfig,
    pending: Vec<Pending>,
    inflight: Vec<InFlight>,
}

impl ContinuousBatcher {
    /// Creates an empty batcher.
    pub fn new(cfg: BatcherConfig) -> Self {
        ContinuousBatcher {
            cfg,
            pending: Vec::new(),
            inflight: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BatcherConfig {
        &self.cfg
    }

    /// Hands a request to the batcher; it waits in EDF order until a
    /// slot frees. `total_tokens` of zero completes immediately and is
    /// never scheduled (the engine filters those before offering).
    pub fn offer(&mut self, id: RequestId, total_tokens: usize, arrival_us: u64, deadline_us: u64) {
        self.pending.push(Pending {
            id,
            total_tokens,
            arrival_us,
            deadline_us,
        });
        self.pending.sort_by_key(Pending::key);
    }

    /// Admits pending requests into free slots (EDF order) and
    /// returns `(id, admitted_us)` for each. Work-conserving: after
    /// this call, either no request is pending or every slot is
    /// occupied.
    pub fn admit(&mut self, now_us: u64) -> Vec<(RequestId, u64)> {
        let slots = self.cfg.slots();
        let mut admitted = Vec::new();
        while self.inflight.len() < slots && !self.pending.is_empty() {
            let p = self.pending.remove(0);
            self.inflight.push(InFlight {
                id: p.id,
                total_tokens: p.total_tokens,
                cursor: 0,
                admitted_us: now_us,
            });
            admitted.push((p.id, now_us));
        }
        admitted
    }

    /// Whether a step should fire at `now_us`, given that the next
    /// chance to admit more work is `next_arrival_us` (None = no
    /// future arrival is known). Fill-or-timeout: fire when full,
    /// when the oldest admitted request has exhausted its patience,
    /// or when nothing could join before that patience runs out.
    pub fn should_launch(&self, now_us: u64, next_arrival_us: Option<u64>) -> bool {
        if self.inflight.is_empty() {
            return false;
        }
        if self.inflight.len() >= self.cfg.slots() {
            return true;
        }
        let fire_at = self.launch_deadline_us();
        if now_us >= fire_at {
            return true;
        }
        match next_arrival_us {
            Some(t) => t >= fire_at,
            None => true,
        }
    }

    /// The virtual time at which a partial batch stops waiting: the
    /// oldest admission plus the admit timeout.
    pub fn launch_deadline_us(&self) -> u64 {
        self.inflight
            .iter()
            .map(|f| f.admitted_us.saturating_add(self.cfg.admit_timeout_us))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Forms the next step — one token per running sequence, in
    /// admission order — and advances every cursor. Sequences that
    /// serve their last token retire and their ids are returned, so
    /// the caller can finalize them and the freed slots refill at the
    /// next [`Self::admit`].
    pub fn plan_step(&mut self) -> (StepPlan, Vec<RequestId>) {
        let entries: Vec<(RequestId, usize)> =
            self.inflight.iter().map(|f| (f.id, f.cursor)).collect();
        let mut finished = Vec::new();
        for f in &mut self.inflight {
            f.cursor += 1;
        }
        self.inflight.retain(|f| {
            if f.cursor >= f.total_tokens {
                finished.push(f.id);
                false
            } else {
                true
            }
        });
        (StepPlan { entries }, finished)
    }

    /// Requests waiting for a slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Requests currently occupying slots.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether the batcher holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(slots: usize, timeout: u64) -> ContinuousBatcher {
        ContinuousBatcher::new(BatcherConfig {
            max_batch_tokens: slots,
            max_inflight: slots,
            admit_timeout_us: timeout,
        })
    }

    #[test]
    fn admission_is_edf_with_arrival_and_id_tiebreaks() {
        let mut b = batcher(2, 100);
        b.offer(1, 4, 0, 900);
        b.offer(2, 4, 0, 500);
        b.offer(3, 4, 5, 500);
        let admitted: Vec<u64> = b.admit(10).iter().map(|(id, _)| *id).collect();
        assert_eq!(admitted, vec![2, 3]);
        assert_eq!(b.pending_len(), 1);
    }

    #[test]
    fn steps_serve_one_token_per_sequence_and_retire_finishers() {
        let mut b = batcher(4, 100);
        b.offer(1, 1, 0, 100);
        b.offer(2, 3, 0, 100);
        b.admit(0);
        let (plan, finished) = b.plan_step();
        assert_eq!(plan.entries, vec![(1, 0), (2, 0)]);
        assert_eq!(finished, vec![1]);
        // Slot freed by request 1 refills before the next step.
        b.offer(3, 2, 10, 90);
        b.admit(10);
        let (plan, finished) = b.plan_step();
        assert_eq!(plan.entries, vec![(2, 1), (3, 0)]);
        assert!(finished.is_empty());
    }

    #[test]
    fn fill_or_timeout_launch_policy() {
        let mut b = batcher(2, 100);
        b.offer(1, 4, 0, 1_000);
        b.admit(0);
        // Half-full, patience not yet exhausted, a fill candidate
        // arrives in time: wait.
        assert!(!b.should_launch(10, Some(50)));
        // The candidate lands after patience runs out: fire now.
        assert!(b.should_launch(10, Some(150)));
        // No future arrival at all: fire.
        assert!(b.should_launch(10, None));
        // Patience exhausted: fire.
        assert!(b.should_launch(100, Some(120)));
        // Full batch always fires.
        b.offer(2, 4, 0, 1_000);
        b.admit(0);
        assert!(b.should_launch(0, Some(1)));
    }

    #[test]
    fn work_conservation_after_admit() {
        let mut b = batcher(2, 0);
        for id in 0..5 {
            b.offer(id, 2, 0, 100);
        }
        b.admit(0);
        assert_eq!(b.inflight_len(), 2);
        assert_eq!(b.pending_len(), 3);
        // Invariant: pending non-empty ⇒ slots full.
        assert!(b.pending_len() == 0 || b.inflight_len() == b.config().slots());
    }
}
