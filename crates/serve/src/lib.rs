//! MoE serving engine with continuous token-level batching.
//!
//! The training stack executes one fixed-size batch per step; serving
//! heavy traffic instead means a stream of small, deadline-bearing
//! requests whose only route to hardware efficiency is sharing
//! micro-batches. This crate adds that serving tier on top of the
//! existing execution machinery, without touching its numerics:
//!
//! * [`queue`] — bounded, thread-safe ingress with deterministic
//!   drain order; admission control happens before any capacity is
//!   spent;
//! * [`batcher`] — the continuous batcher: earliest-deadline-first,
//!   work-conserving admission into a fixed slot set, one token row
//!   per running sequence per step, fill-or-timeout launch;
//! * [`exec`] — one micro-batch step through the overlapped
//!   dispatch → expert FFN → combine path (`tutel::overlap` over the
//!   threaded comm runtime), plus the sequential per-request
//!   reference executor;
//! * [`engine`] — the virtual-time discrete-event loop joining the
//!   three, with per-request latency/SLO accounting (`serve.*`
//!   metrics, p50/p99, deadline misses) exported through `obs`;
//! * [`loadgen`] — seeded open (Poisson, uniform, bursty, diurnal)
//!   and closed-loop workload generators.
//!
//! # Why serving is differentially testable
//!
//! Serving routes **dropless** (capacity adapts to the minimum that
//! drops no token), which removes the only cross-request coupling in
//! the layer. Every remaining operation is per-token-row, so each
//! request's output in any batch composition is bitwise identical to
//! running that request alone (P1; P2 re-associates one sum and is
//! budgeted at ≤ 4 scaled ULP) — see [`exec`]'s module docs for the
//! full argument. The conformance harness holds the engine to that
//! contract across the {P1, P2} × degree × world grid, including
//! under seeded fault-plan replay on the All-to-All.

pub mod batcher;
pub mod engine;
pub mod exec;
pub mod loadgen;
pub mod model;
pub mod queue;
pub mod request;

pub use batcher::{BatcherConfig, ContinuousBatcher, StepPlan};
pub use engine::{Engine, EngineConfig, ServeReport, ServiceModel};
pub use exec::{execute_step, execute_step_reliable, reference_rows, ExecConfig, Strategy};
pub use loadgen::{
    generate_trace, run_closed_loop_to_report, Arrival, ClosedLoopConfig, TraceConfig,
};
pub use model::{ModelDims, ServeModel};
pub use queue::IngressQueue;
pub use request::{Request, RequestId, RequestOutcome, ServeError};
