//! Feature-gated (`check-race`) instrumentation for the runtime: an
//! event recorder capturing the pool's job lifecycle and the arena's
//! ownership transfers, plus a deterministic **simulation** of the
//! pool's claim algorithm whose steal order is driven by an injected
//! choice function ([`sim_pool_run`]).
//!
//! The hooks know nothing about vector clocks: they append typed
//! [`RtEvent`]s to a global log while a [`Session`] is armed, and
//! `tutel-check`'s happens-before analyzer consumes the log offline.
//! Splitting recording from analysis keeps this module dependency-free
//! (rt stays a base crate) and keeps the hot-path cost at one relaxed
//! atomic load when no session is recording.
//!
//! ## Thread identity
//!
//! Events carry a thread id. Drivers that *are* the checked workload
//! wrap their work in [`with_logical_thread`] and get small stable
//! ids; every other thread (pool workers, unrelated tests running
//! concurrently) gets an auto id at or above [`AUTO_THREAD_BASE`].
//! The analyzer restricts leak checks and structural signatures to
//! logical threads, so foreign traffic recorded mid-session can never
//! produce a false finding.
//!
//! ## Event-order guarantee used by the analyzer
//!
//! The log mutex gives one total order. The pool records `ChunkDone`
//! *before* its release-increment of the job's completion counter,
//! and `JobJoin` only after the acquire-side wait — so in the log,
//! every `ChunkDone` of a job precedes its `JobJoin`. A `ChunkDone`
//! *after* `JobJoin` in the log is therefore a real synchronization
//! bug, not recording skew.

use std::cell::Cell;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Call-site of an arena operation, captured via `#[track_caller]`.
pub type Site = &'static Location<'static>;

/// Thread ids at or above this bound were auto-assigned to OS
/// threads; ids below it were set explicitly via
/// [`with_logical_thread`] and mark the checked workload.
pub const AUTO_THREAD_BASE: usize = 1 << 32;

/// One recorded runtime event.
#[derive(Debug, Clone)]
pub enum RtEvent {
    /// A broadcast job entered the pool (or the sim): chunk index
    /// space `0..total`, pre-partitioned into `regions` claim
    /// regions.
    JobSubmit {
        thread: usize,
        job: u64,
        total: usize,
        regions: usize,
    },
    /// One chunk was claimed out of `region`; `steal` marks a claim
    /// outside the participant's own region.
    ChunkClaim {
        thread: usize,
        job: u64,
        chunk: usize,
        region: usize,
        steal: bool,
    },
    /// The chunk's task finished executing.
    ChunkDone {
        thread: usize,
        job: u64,
        chunk: usize,
    },
    /// The submitting caller's join returned.
    JobJoin { thread: usize, job: u64 },
    /// A buffer left an arena. `buf` is the allocation address (the
    /// shadow-state key); `recycled` distinguishes a cache hit from a
    /// fresh allocation.
    ArenaTake {
        thread: usize,
        buf: usize,
        len: usize,
        recycled: bool,
        site: Site,
    },
    /// A buffer was returned to an arena. `retained == false` means
    /// the arena evicted (freed) it instead of keeping it — the
    /// address may be reused by the allocator, so the analyzer must
    /// forget the buffer rather than track a stale shadow.
    ArenaPut {
        thread: usize,
        buf: usize,
        len: usize,
        retained: bool,
        site: Site,
    },
    /// An arena stocked a freshly-allocated buffer directly into its
    /// free list (prewarm): the address is now arena-owned without a
    /// preceding take.
    ArenaStock {
        thread: usize,
        buf: usize,
        len: usize,
    },
    /// An arena dropped every retained buffer (`Arena::clear`).
    ArenaClear { thread: usize },
    /// An explicit access probe ([`note_access`]) on a buffer.
    ArenaAccess {
        thread: usize,
        buf: usize,
        write: bool,
        site: Site,
    },
    /// A structural order marker: folded per logical thread into the
    /// schedule-independence signature.
    OrderMark {
        thread: usize,
        label: &'static str,
        value: u64,
    },
    /// The pool (real or simulated) shut down.
    Shutdown { thread: usize },
}

impl RtEvent {
    /// The thread that recorded this event.
    pub fn thread(&self) -> usize {
        match *self {
            RtEvent::JobSubmit { thread, .. }
            | RtEvent::ChunkClaim { thread, .. }
            | RtEvent::ChunkDone { thread, .. }
            | RtEvent::JobJoin { thread, .. }
            | RtEvent::ArenaTake { thread, .. }
            | RtEvent::ArenaPut { thread, .. }
            | RtEvent::ArenaStock { thread, .. }
            | RtEvent::ArenaClear { thread }
            | RtEvent::ArenaAccess { thread, .. }
            | RtEvent::OrderMark { thread, .. }
            | RtEvent::Shutdown { thread } => thread,
        }
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<Vec<RtEvent>> = Mutex::new(Vec::new());
static SESSION_GATE: Mutex<()> = Mutex::new(());
static NEXT_JOB: AtomicU64 = AtomicU64::new(1);
static NEXT_AUTO_THREAD: AtomicUsize = AtomicUsize::new(AUTO_THREAD_BASE);

thread_local! {
    static LOGICAL_THREAD: Cell<usize> = const { Cell::new(usize::MAX) };
    static AUTO_THREAD: Cell<usize> = const { Cell::new(0) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True while a [`Session`] is armed. Hooks bail on this one relaxed
/// load — the entire cost of the instrumentation outside a session.
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Appends `ev` to the session log (no-op when no session is armed).
pub fn record(ev: RtEvent) {
    if !is_recording() {
        return;
    }
    lock(&LOG).push(ev);
}

/// The calling thread's event id: its logical id if one is set, else
/// a lazily-assigned auto id (>= [`AUTO_THREAD_BASE`]).
pub fn current_thread() -> usize {
    let logical = LOGICAL_THREAD.with(Cell::get);
    if logical != usize::MAX {
        return logical;
    }
    AUTO_THREAD.with(|c| {
        let id = c.get();
        if id != 0 {
            id
        } else {
            let id = NEXT_AUTO_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

/// Runs `f` with the calling thread identified as logical thread
/// `id` (must be below [`AUTO_THREAD_BASE`]); restores the previous
/// identity afterwards. Nesting is allowed — the innermost id wins.
pub fn with_logical_thread<R>(id: usize, f: impl FnOnce() -> R) -> R {
    debug_assert!(id < AUTO_THREAD_BASE, "logical thread id out of range");
    let prev = LOGICAL_THREAD.with(|c| c.replace(id));
    let out = f();
    LOGICAL_THREAD.with(|c| c.set(prev));
    out
}

/// An armed recording session. Only one exists at a time (interleaved
/// logs from unrelated workloads would be meaningless), so concurrent
/// tests serialize on [`Session::begin`].
pub struct Session {
    _gate: MutexGuard<'static, ()>,
}

impl Session {
    /// Clears the log and arms the recorder, blocking until any other
    /// session finishes.
    pub fn begin() -> Session {
        let gate = lock(&SESSION_GATE);
        lock(&LOG).clear();
        RECORDING.store(true, Ordering::SeqCst);
        Session { _gate: gate }
    }

    /// Disarms the recorder and returns the captured log.
    pub fn finish(self) -> Vec<RtEvent> {
        RECORDING.store(false, Ordering::SeqCst);
        std::mem::take(&mut *lock(&LOG))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        RECORDING.store(false, Ordering::SeqCst);
    }
}

/// Allocates a job id and records its submission.
pub(crate) fn job_submit(total: usize, regions: usize) -> u64 {
    let job = NEXT_JOB.fetch_add(1, Ordering::Relaxed);
    record(RtEvent::JobSubmit {
        thread: current_thread(),
        job,
        total,
        regions,
    });
    job
}

pub(crate) fn chunk_claim(job: u64, chunk: usize, region: usize, steal: bool) {
    record(RtEvent::ChunkClaim {
        thread: current_thread(),
        job,
        chunk,
        region,
        steal,
    });
}

pub(crate) fn chunk_done(job: u64, chunk: usize) {
    record(RtEvent::ChunkDone {
        thread: current_thread(),
        job,
        chunk,
    });
}

pub(crate) fn job_join(job: u64) {
    record(RtEvent::JobJoin {
        thread: current_thread(),
        job,
    });
}

pub(crate) fn pool_shutdown() {
    record(RtEvent::Shutdown {
        thread: current_thread(),
    });
}

pub(crate) fn on_arena_take(buf: usize, len: usize, recycled: bool, site: Site) {
    record(RtEvent::ArenaTake {
        thread: current_thread(),
        buf,
        len,
        recycled,
        site,
    });
}

pub(crate) fn on_arena_put(buf: usize, len: usize, retained: bool, site: Site) {
    record(RtEvent::ArenaPut {
        thread: current_thread(),
        buf,
        len,
        retained,
        site,
    });
}

pub(crate) fn on_arena_stock(buf: usize, len: usize) {
    record(RtEvent::ArenaStock {
        thread: current_thread(),
        buf,
        len,
    });
}

pub(crate) fn on_arena_clear() {
    record(RtEvent::ArenaClear {
        thread: current_thread(),
    });
}

/// Records a read (`write == false`) or write access to `buf` for the
/// shadow-state checker. Drivers sprinkle these at the points where
/// arena buffers are actually dereferenced.
#[track_caller]
pub fn note_access(buf: &[f32], write: bool) {
    note_access_id(buf.as_ptr() as usize, write);
}

/// [`note_access`] by raw allocation address, for drivers holding only
/// the address (e.g. modeling a stale pointer that survived a `put`).
#[track_caller]
pub fn note_access_id(buf: usize, write: bool) {
    if !is_recording() {
        return;
    }
    record(RtEvent::ArenaAccess {
        thread: current_thread(),
        buf,
        write,
        site: Location::caller(),
    });
}

/// Emits a structural order marker. The analyzer folds each logical
/// thread's marker sequence (in program order) into the structure
/// signature, so reduction order that varies with the steal schedule
/// shows up as a `schedule_dependent` finding.
pub fn order_mark(label: &'static str, value: u64) {
    if !is_recording() {
        return;
    }
    record(RtEvent::OrderMark {
        thread: current_thread(),
        label,
        value,
    });
}

/// One claimed chunk in a simulated pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClaim {
    pub participant: usize,
    pub chunk: usize,
    pub region: usize,
    pub steal: bool,
}

/// What one simulated pool run did.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Job id shared with the recorded events.
    pub job: u64,
    pub total: usize,
    pub participants: usize,
    /// Every executed chunk, in execution order.
    pub claims: Vec<SimClaim>,
    /// Claims taken outside the claimer's own region.
    pub steals: u64,
    /// Chunks left unexecuted by an aborted run.
    pub leaked: usize,
    /// False when the run was aborted before completion.
    pub joined: bool,
}

/// Runs the pool's claim algorithm in simulation: `total` chunks,
/// pre-partitioned into one contiguous region per participant exactly
/// as [`crate::pool`] partitions them, with the *interleaving* chosen
/// by `choose` — at every step, `choose(n)` picks which of the `n`
/// still-active participants advances by one claim. `exec(chunk,
/// participant)` runs the chunk body under logical thread id
/// `base_thread + participant`.
///
/// Mirrors the real pool's claim loop faithfully: each participant
/// scans regions `(p + offset) % regions` for `offset` in
/// `0..regions`, claims the region's next index, and a claim with
/// `offset > 0` is a steal. Every chunk is executed exactly once —
/// the same guarantee the real pool's atomic cursors provide.
pub fn sim_pool_run(
    participants: usize,
    total: usize,
    base_thread: usize,
    choose: &mut dyn FnMut(usize) -> usize,
    exec: &mut dyn FnMut(usize, usize),
) -> SimRun {
    sim_pool_run_bounded(participants, total, base_thread, choose, exec, None)
}

/// [`sim_pool_run`] that can abort after `abort_after` claims to
/// model a pool shutdown mid-job: a `Shutdown` event is recorded
/// instead of `JobJoin`, leaving the job unjoined (the leak the
/// analyzer must flag).
pub fn sim_pool_run_bounded(
    participants: usize,
    total: usize,
    base_thread: usize,
    choose: &mut dyn FnMut(usize) -> usize,
    exec: &mut dyn FnMut(usize, usize),
    abort_after: Option<u64>,
) -> SimRun {
    let participants = participants.clamp(1, total.max(1));
    let regions = participants;
    let per = total.div_ceil(participants).max(1);
    let mut cursors: Vec<usize> = Vec::with_capacity(regions);
    let mut ends: Vec<usize> = Vec::with_capacity(regions);
    for p in 0..regions {
        cursors.push((p * per).min(total));
        ends.push(((p + 1) * per).min(total));
    }
    // Scan offset per participant, exactly as the real claim loop
    // advances through regions.
    let mut offsets = vec![0usize; participants];

    let job = job_submit(total, regions);
    let mut claims: Vec<SimClaim> = Vec::with_capacity(total);
    let mut steals = 0u64;
    let mut executed = 0usize;
    let mut aborted = false;
    let mut active: Vec<usize> = (0..participants).collect();

    'steps: while !active.is_empty() {
        let pick = choose(active.len()) % active.len().max(1);
        let p = active[pick];
        let mut claimed = None;
        while offsets[p] < regions {
            let region = (p + offsets[p]) % regions;
            let i = cursors[region];
            if i >= ends[region] {
                offsets[p] += 1;
                continue;
            }
            cursors[region] = i + 1;
            claimed = Some((i, region, offsets[p] > 0));
            break;
        }
        match claimed {
            None => {
                active.swap_remove(pick);
            }
            Some((chunk, region, steal)) => {
                with_logical_thread(base_thread + p, || {
                    chunk_claim(job, chunk, region, steal);
                    exec(chunk, p);
                    chunk_done(job, chunk);
                });
                claims.push(SimClaim {
                    participant: p,
                    chunk,
                    region,
                    steal,
                });
                steals += steal as u64;
                executed += 1;
                if abort_after.is_some_and(|k| executed as u64 >= k) {
                    aborted = true;
                    break 'steps;
                }
            }
        }
    }

    if aborted {
        pool_shutdown();
    } else {
        job_join(job);
    }
    SimRun {
        job,
        total,
        participants,
        claims,
        steals,
        leaked: total - executed,
        joined: !aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_executes_every_chunk_exactly_once() {
        let mut step = 0usize;
        let mut seen = [0u32; 17];
        let run = sim_pool_run(
            3,
            17,
            100,
            &mut |n| {
                step += 1;
                step % n
            },
            &mut |c, _p| seen[c] += 1,
        );
        assert!(run.joined);
        assert_eq!(run.leaked, 0);
        assert_eq!(run.claims.len(), 17);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn sim_is_deterministic_in_the_choice_sequence() {
        let drive = |salt: usize| {
            let mut step = salt;
            sim_pool_run(
                4,
                23,
                200,
                &mut |n| {
                    step = step.wrapping_mul(6364136223846793005).wrapping_add(1);
                    step % n
                },
                &mut |_c, _p| {},
            )
            .claims
        };
        assert_eq!(drive(7), drive(7));
        assert_ne!(drive(7), drive(8));
    }

    #[test]
    fn round_robin_choice_never_steals_on_even_split() {
        // With participants advancing in lockstep over an evenly
        // divisible space, nobody exhausts their region early.
        let mut step = 0usize;
        let run = sim_pool_run(
            4,
            16,
            300,
            &mut |n| {
                let pick = step % n;
                step += 1;
                pick
            },
            &mut |_c, _p| {},
        );
        assert_eq!(run.steals, 0);
    }

    #[test]
    fn greedy_single_participant_choice_steals_the_rest() {
        // Participant 0 is always picked: it drains its own region,
        // then steals every other region.
        let run = sim_pool_run(3, 9, 400, &mut |_n| 0, &mut |_c, _p| {});
        assert_eq!(run.claims.len(), 9);
        assert_eq!(run.steals, 6);
        assert!(run.claims.iter().all(|c| c.participant == 0));
    }

    #[test]
    fn session_records_sim_events_in_order() {
        let session = Session::begin();
        let mut step = 0usize;
        let run = with_logical_thread(9, || {
            sim_pool_run(
                2,
                4,
                50,
                &mut |n| {
                    step += 1;
                    step % n
                },
                &mut |_c, _p| {},
            )
        });
        let events = session.finish();
        assert!(matches!(
            events.first(),
            Some(RtEvent::JobSubmit { thread: 9, .. })
        ));
        assert!(matches!(
            events.last(),
            Some(RtEvent::JobJoin { thread: 9, job }) if *job == run.job
        ));
        let dones = events
            .iter()
            .filter(|e| matches!(e, RtEvent::ChunkDone { .. }))
            .count();
        assert_eq!(dones, 4);
    }

    #[test]
    fn aborted_run_records_shutdown_and_leaks() {
        let session = Session::begin();
        let run = sim_pool_run_bounded(2, 6, 60, &mut |_n| 0, &mut |_c, _p| {}, Some(2));
        let events = session.finish();
        assert!(!run.joined);
        assert_eq!(run.leaked, 4);
        assert!(events.iter().any(|e| matches!(e, RtEvent::Shutdown { .. })));
        assert!(!events.iter().any(|e| matches!(e, RtEvent::JobJoin { .. })));
    }

    #[test]
    fn recording_is_off_outside_sessions() {
        assert!(!is_recording());
        record(RtEvent::Shutdown { thread: 0 });
        let session = Session::begin();
        let events = session.finish();
        assert!(events.is_empty());
    }

    #[test]
    fn logical_ids_nest_and_restore() {
        let auto = current_thread();
        assert!(auto >= AUTO_THREAD_BASE);
        with_logical_thread(3, || {
            assert_eq!(current_thread(), 3);
            with_logical_thread(4, || assert_eq!(current_thread(), 4));
            assert_eq!(current_thread(), 3);
        });
        assert_eq!(current_thread(), auto);
    }
}
