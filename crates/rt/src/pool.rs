//! The persistent work-stealing thread pool.
//!
//! # Determinism contract
//!
//! Every primitive here guarantees **bit-identical results regardless
//! of worker count**, by construction:
//!
//! * chunk boundaries are a fixed function of `(n, grain)` — never of
//!   the number of workers, the `TUTEL_THREADS` setting, or any
//!   runtime scheduling decision;
//! * each chunk is executed exactly once, by the same serial kernel a
//!   single-threaded run would use;
//! * chunks must write disjoint output (the safe wrappers
//!   [`parallel_chunks`] / [`parallel_ranges`] enforce this by
//!   handing each chunk its own `&mut` sub-slice).
//!
//! Scheduling *is* dynamic (that is the whole point): chunks are
//! pre-partitioned into one contiguous claim region per participant,
//! each participant drains its own region first, and participants
//! that run dry steal from the other regions. Which thread runs a
//! chunk changes between runs; what the chunk computes does not.
//!
//! # Sizing
//!
//! The global pool is created on first use with
//! `TUTEL_THREADS` workers if that environment variable parses as a
//! positive integer, else `std::thread::available_parallelism()`.
//! The calling thread always participates, so a pool of size `w`
//! spawns `w - 1` background workers and `TUTEL_THREADS=1` runs
//! everything inline with zero spawned threads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool size; a guard against absurd `TUTEL_THREADS`.
const MAX_THREADS: usize = 256;

/// Cumulative pool counters, exported for telemetry.
///
/// `utilization()` is the fraction of chunks executed by background
/// workers (as opposed to the calling thread) — 0.0 on a 1-thread
/// pool, approaching `(w-1)/w` when jobs split evenly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool, including the caller's slot.
    pub workers: usize,
    /// Parallel jobs dispatched through the pool (serial fallbacks
    /// are not counted).
    pub jobs: u64,
    /// Chunks executed across all jobs.
    pub chunks: u64,
    /// Chunks executed by background workers (not the calling
    /// thread).
    pub worker_chunks: u64,
    /// Chunks claimed out of another participant's region.
    pub steals: u64,
}

impl PoolStats {
    /// Fraction of chunk executions that ran on background workers.
    pub fn utilization(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.worker_chunks as f64 / self.chunks as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    chunks: AtomicU64,
    worker_chunks: AtomicU64,
    steals: AtomicU64,
}

/// One broadcast job: a chunk index space `0..total`, pre-partitioned
/// into `cursors.len()` contiguous claim regions.
struct JobCore {
    /// Erased pointer to the caller's `&(dyn Fn(usize) + Sync)`.
    /// Valid until the caller's `run` returns; `run` blocks until
    /// every chunk has finished executing, and exhausted cursors make
    /// late arrivals skip the task entirely, so the pointer is never
    /// dereferenced after `run` unblocks.
    task: *const (dyn Fn(usize) + Sync),
    /// Claim cursor per region; `fetch_add` hands out chunk indices.
    cursors: Vec<AtomicUsize>,
    /// Fixed `[start, end)` bounds per region.
    bounds: Vec<(usize, usize)>,
    /// Total chunks in the job.
    total: usize,
    /// Chunks fully executed so far; the last one signals `done`.
    completed: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Job id in the race checker's event log.
    #[cfg(feature = "check-race")]
    chk_job: u64,
}

// SAFETY: `task` points at a `Sync` closure and is only dereferenced
// while the owning `run` call keeps it alive (see field docs); all
// other fields are themselves thread-safe.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Claims and executes chunks until the job is drained. Returns
    /// `(chunks_run, steals)` for this participant.
    fn participate(&self, who: usize) -> (u64, u64) {
        let regions = self.cursors.len();
        let mut ran = 0u64;
        let mut steals = 0u64;
        for offset in 0..regions {
            let v = (who + offset) % regions;
            let end = self.bounds[v].1;
            loop {
                let i = self.cursors[v].fetch_add(1, Ordering::Relaxed);
                if i >= end {
                    break;
                }
                #[cfg(feature = "check-race")]
                crate::chk::chunk_claim(self.chk_job, i, v, offset > 0);
                // SAFETY: the caller of `run` keeps the closure alive
                // until every chunk completes; we are executing a
                // not-yet-completed chunk.
                unsafe { (*self.task)(i) };
                ran += 1;
                if offset > 0 {
                    steals += 1;
                }
                // Recorded *before* the release-increment below, so in
                // the log's total order every `ChunkDone` precedes the
                // job's `JobJoin` (which follows the acquire-side
                // wait). The analyzer relies on this.
                #[cfg(feature = "check-race")]
                crate::chk::chunk_done(self.chk_job, i);
                if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                    let mut done = lock(&self.done);
                    *done = true;
                    self.done_cv.notify_all();
                }
            }
        }
        (ran, steals)
    }

    fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = match self.done_cv.wait(done) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

struct Slot {
    /// Monotonic job epoch; bumps on every broadcast.
    epoch: u64,
    job: Option<Arc<JobCore>>,
}

struct Shared {
    slot: Mutex<Slot>,
    job_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

/// Locks a mutex, recovering from poisoning (a panicking worker must
/// not wedge every subsequent GEMM).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The pool: `workers - 1` parked background threads plus the calling
/// thread.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

impl Pool {
    /// Creates a pool with `workers` total participants (the caller
    /// counts as one; `workers - 1` threads are spawned).
    fn with_workers(workers: usize) -> Pool {
        let workers = workers.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
            }),
            job_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        for w in 1..workers {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("tutel-rt-{w}"))
                .spawn(move || worker_loop(&shared, w))
                .ok();
        }
        Pool { shared, workers }
    }

    /// Total participants (background workers + the caller's slot).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            workers: self.workers,
            jobs: c.jobs.load(Ordering::Relaxed),
            chunks: c.chunks.load(Ordering::Relaxed),
            worker_chunks: c.worker_chunks.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
        }
    }

    /// Broadcasts `task` over chunk indices `0..total` with at most
    /// `max_participants` claim regions, and blocks until every chunk
    /// has executed. Falls back to a serial loop when parallelism is
    /// pointless or unavailable.
    fn run(&self, total: usize, max_participants: usize, task: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        let participants = self
            .workers
            .min(max_participants)
            .min(total)
            .min(thread_limit());
        if participants <= 1 || IN_JOB.with(|f| f.get()) {
            for i in 0..total {
                task(i);
            }
            return;
        }

        // Fixed, even partition of the chunk index space into one
        // claim region per participant (scheduling only — chunk
        // boundaries are already fixed by the caller).
        let per = total.div_ceil(participants);
        let mut cursors = Vec::with_capacity(participants);
        let mut bounds = Vec::with_capacity(participants);
        for p in 0..participants {
            let start = (p * per).min(total);
            let end = ((p + 1) * per).min(total);
            cursors.push(AtomicUsize::new(start));
            bounds.push((start, end));
        }
        // SAFETY: the lifetime erasure is sound because `run` waits on
        // `job.wait()` below before returning, so `task` outlives
        // every dereference (see `JobCore::task` docs).
        let task_ptr: *const (dyn Fn(usize) + Sync) = task;
        let job = Arc::new(JobCore {
            task: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task_ptr)
            },
            cursors,
            bounds,
            total,
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            #[cfg(feature = "check-race")]
            chk_job: crate::chk::job_submit(total, participants),
        });

        {
            let mut slot = lock(&self.shared.slot);
            slot.epoch += 1;
            slot.job = Some(job.clone());
        }
        self.shared.job_cv.notify_all();

        // The caller participates as region 0.
        IN_JOB.with(|f| f.set(true));
        let (ran, steals) = job.participate(0);
        IN_JOB.with(|f| f.set(false));
        job.wait();
        #[cfg(feature = "check-race")]
        crate::chk::job_join(job.chk_job);

        // Detach the job so parked workers don't re-inspect it.
        {
            let mut slot = lock(&self.shared.slot);
            if slot.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                slot.job = None;
            }
        }

        let c = &self.shared.counters;
        c.jobs.fetch_add(1, Ordering::Relaxed);
        c.chunks.fetch_add(total as u64, Ordering::Relaxed);
        c.worker_chunks
            .fetch_add(total as u64 - ran, Ordering::Relaxed);
        c.steals.fetch_add(steals, Ordering::Relaxed);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.job_cv.notify_all();
        #[cfg(feature = "check-race")]
        crate::chk::pool_shutdown();
    }
}

fn worker_loop(shared: &Shared, who: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = lock(&shared.slot);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if slot.epoch > seen_epoch {
                    seen_epoch = slot.epoch;
                    break slot.job.clone();
                }
                slot = match shared.job_cv.wait(slot) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        if let Some(job) = job {
            IN_JOB.with(|f| f.set(true));
            // Worker-run chunk share is derived by the caller as
            // `total - caller_ran`; workers only report steals.
            let (_ran, steals) = job.participate(who);
            IN_JOB.with(|f| f.set(false));
            shared.counters.steals.fetch_add(steals, Ordering::Relaxed);
        }
    }
}

thread_local! {
    /// True while this thread is executing a pool chunk; nested
    /// parallel calls run serially instead of deadlocking.
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Per-thread participant cap installed by
    /// [`with_parallelism_limit`]; `usize::MAX` = no cap.
    static THREAD_LIMIT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_limit() -> usize {
    THREAD_LIMIT.with(|l| l.get()).max(1)
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Arena size classes registered before the pool exists, stocked at
/// pool startup. `(len, count)` pairs; drained once by `global()`.
static PREWARM_QUEUE: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());

/// Set when the queue holds undrained requests; checked (one relaxed
/// load when clear) on every `global()` call so draining adds nothing
/// to the steady-state hot path.
static PREWARM_PENDING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Registers an arena size class for pre-warming: `count` zeroed
/// buffers of exactly `len` elements. If the global pool is already
/// up, the class is stocked immediately; otherwise the request is
/// queued and applied once at pool startup — so the first hot-path
/// iteration after spin-up already hits the warm class instead of the
/// heap.
pub fn request_prewarm(len: usize, count: usize) {
    use std::sync::atomic::Ordering;
    if POOL.get().is_some() {
        crate::arena::arena().prewarm(len, count);
        return;
    }
    {
        let mut queue = match PREWARM_QUEUE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        queue.push((len, count));
    }
    PREWARM_PENDING.store(true, Ordering::Release);
    // If the pool raced up while we queued, its startup drain may have
    // run before our push — drain ourselves (idempotent under the
    // queue lock) so the request is never stranded.
    if POOL.get().is_some() && PREWARM_PENDING.swap(false, Ordering::AcqRel) {
        drain_prewarm_queue(crate::arena::arena());
    }
}

/// Applies every queued pre-warm request to `arena`.
fn drain_prewarm_queue(arena: &crate::arena::Arena) {
    let requests: Vec<(usize, usize)> = {
        let mut queue = match PREWARM_QUEUE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        queue.drain(..).collect()
    };
    apply_prewarm(arena, &requests);
}

/// Stocks `arena` with each requested `(len, count)` size class.
fn apply_prewarm(arena: &crate::arena::Arena, requests: &[(usize, usize)]) {
    for &(len, count) in requests {
        arena.prewarm(len, count);
    }
}

/// Pool size from the environment: `TUTEL_THREADS` if it parses as a
/// positive integer, else the machine's available parallelism.
fn configured_threads() -> usize {
    match std::env::var("TUTEL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The lazily created global pool. Startup also stocks the arena with
/// every size class registered via [`request_prewarm`] before the
/// pool existed.
pub fn global() -> &'static Pool {
    use std::sync::atomic::Ordering;
    let pool = POOL.get_or_init(|| Pool::with_workers(configured_threads()));
    if PREWARM_PENDING.load(Ordering::Acquire) && PREWARM_PENDING.swap(false, Ordering::AcqRel) {
        drain_prewarm_queue(crate::arena::arena());
    }
    pool
}

/// Snapshot of the global pool's cumulative counters (pool size,
/// jobs, chunks, worker share, steals). Creates the pool on first
/// call.
pub fn pool_stats() -> PoolStats {
    global().stats()
}

/// Runs `body` with this thread's pool participation capped at
/// `limit` (1 = fully serial). The determinism suite uses this to
/// sweep effective thread counts inside one process; production code
/// never needs it.
pub fn with_parallelism_limit<R>(limit: usize, body: impl FnOnce() -> R) -> R {
    let prev = THREAD_LIMIT.with(|l| l.replace(limit.max(1)));
    let out = body();
    THREAD_LIMIT.with(|l| l.set(prev));
    out
}

/// Executes `f(start, end)` over the fixed chunk decomposition of
/// `0..n` with chunk length `grain`, in parallel.
///
/// Chunk `i` covers `[i·grain, min(n, (i+1)·grain))` — boundaries
/// depend only on `(n, grain)`, so results are bit-identical for any
/// worker count provided chunks touch disjoint state (the caller's
/// obligation; prefer [`parallel_chunks`] / [`parallel_ranges`],
/// which encode disjointness in the types).
pub fn parallel_for(n: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
    let grain = grain.max(1);
    let chunks = n.div_ceil(grain);
    global().run(chunks, usize::MAX, &|i| {
        let start = i * grain;
        let end = (start + grain).min(n);
        f(start, end);
    });
}

/// Splits `data` into fixed chunks of `chunk_len` elements (last one
/// shorter) and runs `f(chunk_index, chunk)` over them in parallel.
/// Each chunk is a disjoint `&mut` sub-slice, so the disjointness
/// half of the determinism contract holds by construction.
pub fn parallel_chunks<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    let chunk_len = chunk_len.max(1);
    let ranges: Vec<(usize, usize)> = (0..len.div_ceil(chunk_len))
        .map(|i| (i * chunk_len, ((i + 1) * chunk_len).min(len)))
        .collect();
    parallel_ranges(data, &ranges, f);
}

/// Runs `f(range_index, &mut data[start..end])` over caller-defined
/// ranges in parallel. Ranges must be sorted, in-bounds, and
/// non-overlapping; if they are not, the call degrades to a serial
/// loop over the valid prefix (never aliasing, never panicking).
pub fn parallel_ranges<T: Send>(
    data: &mut [T],
    ranges: &[(usize, usize)],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    let disjoint = ranges.windows(2).all(|w| w[0].1 <= w[1].0)
        && ranges.iter().all(|&(s, e)| s <= e && e <= len);
    if !disjoint {
        // Serial fallback: reborrow per range, skipping invalid ones.
        for (i, &(s, e)) in ranges.iter().enumerate() {
            if s <= e && e <= len {
                f(i, &mut data[s..e]);
            }
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    global().run(ranges.len(), usize::MAX, &|i| {
        let (s, e) = ranges[i];
        // SAFETY: ranges are validated sorted/non-overlapping/
        // in-bounds above, and each index `i` is executed exactly
        // once, so this `&mut` sub-slice aliases nothing.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(s), e - s) };
        f(i, chunk);
    });
}

/// Raw-pointer wrapper that may cross threads; disjointness is
/// guaranteed by the caller ([`parallel_ranges`]).
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` is only constructed by `parallel_ranges`, which
// hands each chunk a pointer into ranges proven disjoint before the
// job is submitted; no two threads ever touch the same elements, and
// the payload itself is `T: Send`.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Method (not field) access, so closures capture the whole
    /// wrapper and inherit its `Sync` instead of the raw `*mut T`.
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn prewarm_requests_stock_the_arena() {
        // The startup path on a private arena (the global arena's
        // counters are shared across concurrently running tests):
        // queued requests land as warm classes, and steady-state
        // take/put of a warm class never misses.
        let a = crate::arena::Arena::new();
        apply_prewarm(&a, &[(4096, 2), (128, 1)]);
        assert_eq!(a.stats().retained_elems, 2 * 4096 + 128);
        for _ in 0..10 {
            let buf = a.take_zeroed(4096);
            a.put(buf);
        }
        assert_eq!(a.stats().misses, 0, "warm class fell through to heap");
        assert_eq!(a.stats().hits, 10);
    }

    #[test]
    fn request_prewarm_is_safe_before_and_after_pool_startup() {
        // Before startup the request queues; after `global()` it
        // applies immediately. Distinctive lengths so no other test's
        // traffic shares the class.
        request_prewarm(999_983, 1);
        let _ = global();
        request_prewarm(999_979, 1);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 1000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        parallel_for(n, 7, |start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_chunks_partitions_exactly() {
        let mut data = vec![0u32; 103];
        parallel_chunks(&mut data, 10, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v != 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn results_identical_across_limits() {
        let n = 4096usize;
        let run = |limit: usize| {
            with_parallelism_limit(limit, || {
                let mut out = vec![0f32; n];
                parallel_chunks(&mut out, 64, |_, chunk| {
                    for v in chunk.iter_mut() {
                        *v = 1.5;
                    }
                });
                out
            })
        };
        let reference = run(1);
        for limit in [2, 4, 8] {
            assert_eq!(run(limit), reference, "limit {limit}");
        }
    }

    #[test]
    fn invalid_ranges_fall_back_to_serial() {
        let mut data = vec![0u8; 10];
        // Overlapping on purpose.
        parallel_ranges(&mut data, &[(0, 6), (4, 10)], |_, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        // Serial fallback executed both ranges; overlap region got 2.
        assert_eq!(data[5], 2);
        assert_eq!(data[0], 1);
        assert_eq!(data[9], 1);
    }

    #[test]
    fn nested_parallelism_runs_serially_without_deadlock() {
        let n = 64;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        parallel_for(n, 4, |s, e| {
            // Nested call must not deadlock on the single job slot.
            parallel_for(e - s, 2, |s2, e2| {
                for i in s2..e2 {
                    hits[s + i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stats_accumulate() {
        let before = pool_stats();
        let mut data = vec![0u8; 100_000];
        parallel_chunks(&mut data, 100, |_, c| c.fill(1));
        let after = pool_stats();
        assert!(after.chunks >= before.chunks);
        assert!(after.workers >= 1);
        let _ = after.utilization();
    }
}
