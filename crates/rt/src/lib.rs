//! `tutel-rt`: the persistent compute runtime under the tutel-rs
//! compute hot path.
//!
//! Two pieces, both process-global and lazily initialized:
//!
//! 1. A **persistent work-stealing thread pool** ([`pool`]): workers
//!    are spawned once (sized by `TUTEL_THREADS` or the machine's
//!    available parallelism) and parked between jobs, replacing the
//!    per-call `std::thread::scope` spawns the GEMM path used before.
//!    The primitives — [`parallel_for`], [`parallel_chunks`],
//!    [`parallel_ranges`] — share one **determinism contract**: chunk
//!    boundaries are fixed functions of the problem shape (never of
//!    the worker count), every chunk is executed exactly once by the
//!    same serial kernel, and no two chunks share output elements.
//!    Results are therefore bit-identical for every `TUTEL_THREADS`,
//!    which the repo's determinism suite asserts for
//!    `TUTEL_THREADS ∈ {1, 2, 4, 8}`.
//!
//! 2. A **thread-safe buffer arena** ([`arena`]): size-classed
//!    recycling of `Vec<f32>` scratch buffers across iterations. The
//!    MoE per-iteration path allocates the same shapes every step
//!    (dispatch buffers, activations, gradients); the arena turns
//!    that churn into O(1) re-use with a hit-rate counter telemetry
//!    can export.
//!
//! The crate depends on nothing (std only) and sits below
//! `tutel-tensor` in the workspace layering, next to `tutel-obs`.
//!
//! With the `check-race` feature, the [`chk`] module adds a typed
//! event recorder (pool job lifecycle, arena ownership transfers) and
//! a steal-order-controllable simulation of the pool's claim
//! algorithm. `tutel-check`'s happens-before analyzer consumes the
//! recorded events; without the feature every hook compiles out.

pub mod arena;
#[cfg(feature = "check-race")]
pub mod chk;
pub mod pool;

pub use arena::{arena, Arena, ArenaStats};
pub use pool::{
    parallel_chunks, parallel_for, parallel_ranges, pool_stats, request_prewarm,
    with_parallelism_limit, PoolStats,
};
