//! Thread-safe recycling arena for `Vec<f32>` scratch buffers.
//!
//! The per-iteration MoE path allocates the same buffer shapes every
//! step: dispatch tensors, expert activations, gradients. Instead of
//! hitting the allocator (and the kernel's zero-page machinery) each
//! time, hot paths check buffers out of the global [`Arena`] and
//! return them when the iteration is done.
//!
//! # Lifetime rules
//!
//! * A checked-out buffer is plain owned `Vec<f32>` — there is no
//!   guard type and no obligation; dropping it instead of `put`ting
//!   it back is always safe, it just forfeits the recycle.
//! * [`Arena::take_zeroed`] returns an all-zero buffer of exactly the
//!   requested length (recycled buffers are re-zeroed, so it is a
//!   drop-in for `vec![0.0; n]`).
//! * [`Arena::take_raw`] skips the zeroing; the caller must fully
//!   overwrite the contents before reading them. Use it only when the
//!   very next operation writes every element.
//! * Buffers are classed by **exact length**; `put` files a buffer
//!   under `buf.len()` (capacity beyond the length is kept but never
//!   observed). Zero-length buffers are dropped.
//! * Per-class and whole-arena caps bound retained memory; `put`
//!   beyond a cap silently drops the buffer.
//!
//! Recycling never affects numerics: a taken buffer's observable
//! contents are fully defined (`take_zeroed`) or fully overwritten by
//! contract (`take_raw`), so arena on/off cannot change results.

use std::collections::BTreeMap;
#[cfg(feature = "check-race")]
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Most buffers retained per size class.
const PER_CLASS_CAP: usize = 16;
/// Most `f32`s retained across the whole arena (256 MiB).
const TOTAL_CAP_ELEMS: usize = 64 << 20;

/// Cumulative arena counters, exported for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// `take_*` calls satisfied from a recycled buffer.
    pub hits: u64,
    /// `take_*` calls that had to allocate fresh.
    pub misses: u64,
    /// Buffers accepted back by `put`.
    pub returns: u64,
    /// Buffers `put` dropped because a cap was reached.
    pub evictions: u64,
    /// `f32` elements currently retained in free lists.
    pub retained_elems: usize,
}

impl ArenaStats {
    /// Fraction of takes served from the free lists.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Size-classed free lists behind a single mutex. Lock hold times are
/// a map lookup plus a `Vec` push/pop — nanoseconds against the
/// microseconds-to-milliseconds kernels the buffers feed.
pub struct Arena {
    classes: Mutex<Classes>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Default)]
struct Classes {
    by_len: BTreeMap<usize, Vec<Vec<f32>>>,
    retained_elems: usize,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    pub fn new() -> Arena {
        Arena {
            classes: Mutex::new(Classes::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn pop(&self, len: usize) -> Option<Vec<f32>> {
        let mut classes = match self.classes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let buf = classes.by_len.get_mut(&len).and_then(Vec::pop);
        if buf.is_some() {
            classes.retained_elems = classes.retained_elems.saturating_sub(len);
        }
        buf
    }

    /// Checks out an all-zero buffer of exactly `len` elements.
    #[cfg_attr(feature = "check-race", track_caller)]
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        match self.pop(len) {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.fill(0.0);
                #[cfg(feature = "check-race")]
                crate::chk::on_arena_take(buf.as_ptr() as usize, len, true, Location::caller());
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let buf = vec![0.0; len];
                #[cfg(feature = "check-race")]
                crate::chk::on_arena_take(buf.as_ptr() as usize, len, false, Location::caller());
                buf
            }
        }
    }

    /// Checks out a buffer of exactly `len` elements with
    /// **unspecified contents** (stale data from a previous user, or
    /// zeros if freshly allocated). The caller must overwrite every
    /// element before reading any.
    #[cfg_attr(feature = "check-race", track_caller)]
    pub fn take_raw(&self, len: usize) -> Vec<f32> {
        match self.pop(len) {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "check-race")]
                crate::chk::on_arena_take(buf.as_ptr() as usize, len, true, Location::caller());
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let buf = vec![0.0; len];
                #[cfg(feature = "check-race")]
                crate::chk::on_arena_take(buf.as_ptr() as usize, len, false, Location::caller());
                buf
            }
        }
    }

    /// Tops the `len` size class up to at least `count` retained
    /// buffers (zeroed), so the first steady-state `take_zeroed` of
    /// the class already hits. Idempotent: a class already holding
    /// `count` buffers is left untouched, making per-iteration
    /// registration free. Warm-up allocation is not steady-state
    /// traffic: it counts as neither hit, miss, nor return, and it
    /// respects the same per-class and whole-arena caps as `put`.
    pub fn prewarm(&self, len: usize, count: usize) {
        if len == 0 {
            return;
        }
        let mut classes = match self.classes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            let have = classes.by_len.get(&len).map_or(0, Vec::len);
            if have >= count.min(PER_CLASS_CAP) || classes.retained_elems + len > TOTAL_CAP_ELEMS {
                break;
            }
            let buf = vec![0.0; len];
            #[cfg(feature = "check-race")]
            crate::chk::on_arena_stock(buf.as_ptr() as usize, len);
            classes.by_len.entry(len).or_default().push(buf);
            classes.retained_elems += len;
        }
    }

    /// Returns a buffer to its size class for later reuse. Dropped
    /// silently if empty or if retaining it would exceed the
    /// per-class or whole-arena cap.
    #[cfg_attr(feature = "check-race", track_caller)]
    pub fn put(&self, buf: Vec<f32>) {
        let len = buf.len();
        if len == 0 {
            return;
        }
        // Ownership is relinquished whether the buffer is retained or
        // evicted below; the checker is told which, because an evicted
        // buffer's address returns to the allocator and must be
        // forgotten rather than shadow-tracked.
        #[cfg(feature = "check-race")]
        let (chk_buf, chk_site) = (buf.as_ptr() as usize, Location::caller());
        let mut classes = match self.classes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if classes.retained_elems + len > TOTAL_CAP_ELEMS {
            drop(classes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "check-race")]
            crate::chk::on_arena_put(chk_buf, len, false, chk_site);
            return;
        }
        let class = classes.by_len.entry(len).or_default();
        if class.len() >= PER_CLASS_CAP {
            drop(classes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "check-race")]
            crate::chk::on_arena_put(chk_buf, len, false, chk_site);
            return;
        }
        class.push(buf);
        classes.retained_elems += len;
        drop(classes);
        self.returns.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "check-race")]
        crate::chk::on_arena_put(chk_buf, len, true, chk_site);
    }

    /// Drops every retained buffer (counters are kept).
    pub fn clear(&self) {
        let mut classes = match self.classes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        classes.by_len.clear();
        classes.retained_elems = 0;
        #[cfg(feature = "check-race")]
        crate::chk::on_arena_clear();
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> ArenaStats {
        let retained_elems = match self.classes.lock() {
            Ok(g) => g.retained_elems,
            Err(poisoned) => poisoned.into_inner().retained_elems,
        };
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retained_elems,
        }
    }
}

static ARENA: OnceLock<Arena> = OnceLock::new();

/// The process-global arena used by the compute hot path.
pub fn arena() -> &'static Arena {
    ARENA.get_or_init(Arena::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_recycles_and_rezeros() {
        let a = Arena::new();
        let mut buf = a.take_zeroed(128);
        assert!(buf.iter().all(|&v| v == 0.0));
        buf.fill(3.0);
        a.put(buf);
        let buf2 = a.take_zeroed(128);
        assert!(buf2.iter().all(|&v| v == 0.0), "recycled buffer re-zeroed");
        let s = a.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.returns, 1);
    }

    #[test]
    fn prewarmed_class_takes_with_zero_heap_allocations() {
        // The regression the pool-startup pre-warm exists for: once a
        // class is warm, a steady-state take/put loop must never fall
        // through to the heap (misses stay at zero — a miss *is* a
        // heap allocation).
        let a = Arena::new();
        a.prewarm(2048, 1);
        let s = a.stats();
        assert_eq!(s.misses, 0, "prewarm is not steady-state traffic");
        assert_eq!(s.hits, 0);
        assert_eq!(s.retained_elems, 2048);
        for _ in 0..100 {
            let mut buf = a.take_zeroed(2048);
            assert!(buf.iter().all(|&v| v == 0.0));
            buf.fill(7.0);
            a.put(buf);
        }
        let s = a.stats();
        assert_eq!(s.misses, 0, "warm class must never allocate");
        assert_eq!(s.hits, 100);
    }

    #[test]
    fn prewarm_respects_class_cap() {
        let a = Arena::new();
        a.prewarm(16, PER_CLASS_CAP + 50);
        assert_eq!(a.stats().retained_elems, PER_CLASS_CAP * 16);
    }

    #[test]
    fn prewarm_is_an_idempotent_top_up() {
        let a = Arena::new();
        a.prewarm(64, 1);
        a.prewarm(64, 1);
        assert_eq!(a.stats().retained_elems, 64, "re-registration adds nothing");
        // A recycled buffer counts toward the target too.
        a.put(vec![1.0; 64]);
        a.prewarm(64, 2);
        assert_eq!(a.stats().retained_elems, 2 * 64);
    }

    #[test]
    fn classes_are_exact_length() {
        let a = Arena::new();
        a.put(vec![1.0; 64]);
        let buf = a.take_raw(65);
        assert_eq!(buf.len(), 65);
        assert_eq!(a.stats().misses, 1, "different length never matches");
        let hit = a.take_raw(64);
        assert_eq!(hit.len(), 64);
        assert_eq!(a.stats().hits, 1);
    }

    #[test]
    fn per_class_cap_evicts() {
        let a = Arena::new();
        for _ in 0..PER_CLASS_CAP + 3 {
            a.put(vec![0.0; 8]);
        }
        let s = a.stats();
        assert_eq!(s.returns, PER_CLASS_CAP as u64);
        assert_eq!(s.evictions, 3);
        assert_eq!(s.retained_elems, PER_CLASS_CAP * 8);
    }

    #[test]
    fn clear_drops_retained() {
        let a = Arena::new();
        a.put(vec![0.0; 32]);
        assert_eq!(a.stats().retained_elems, 32);
        a.clear();
        assert_eq!(a.stats().retained_elems, 0);
    }

    #[test]
    fn hit_rate_math() {
        let a = Arena::new();
        assert_eq!(a.stats().hit_rate(), 0.0);
        a.put(a.take_zeroed(4));
        let _ = a.take_zeroed(4);
        let s = a.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_put_is_dropped() {
        let a = Arena::new();
        a.put(Vec::new());
        assert_eq!(a.stats().returns, 0);
        assert_eq!(a.stats().retained_elems, 0);
    }
}
