//! # tutel — Adaptive Mixture-of-Experts at Scale, in Rust
//!
//! A full reproduction of the Tutel MoE system (Hwang et al.,
//! MLSys 2023) on a simulated multi-GPU cluster:
//!
//! * [`MoeLayer`] — the complete, differentiable MoE layer: gating
//!   (linear / cosine / hash routers, top-ANY, dynamic capacity
//!   factor, BPR), sparse fast encode/decode, expert FFNs, auxiliary
//!   load-balancing loss;
//! * [`FairseqMoeLayer`] — the dense-einsum GShard/Fairseq baseline,
//!   numerically equivalent (tested) but asymptotically slower;
//! * [`pipeline`] — adaptive pipelining: token partitioning for
//!   comm/compute overlap and the online strategy search of
//!   Algorithm 2;
//! * [`adaptive`] — the single-MoE-layer time simulator combining
//!   Tutel kernels, Flexible All-to-All, adaptive pipelining, and
//!   adaptive parallelism switching (the Figure 23 feature ladder);
//! * [`model`] / [`data`] / [`trainer`] — SwinLite-MoE, a compact
//!   MoE classifier trained end-to-end on synthetic clustered data,
//!   standing in for SwinV2-MoE on ImageNet (see DESIGN.md for the
//!   substitution argument).
//!
//! # Quickstart
//!
//! ```
//! use tutel::{MoeConfig, MoeLayer};
//! use tutel_tensor::Rng;
//!
//! let mut rng = Rng::seed(0);
//! let cfg = MoeConfig::new(16, 32, 4).with_top_k(2);
//! let mut layer = MoeLayer::new(&cfg, &mut rng)?;
//! let x = rng.normal_tensor(&[64, 16], 0.0, 1.0); // 64 tokens, 16 channels
//! let out = layer.forward(&x)?;
//! assert_eq!(out.output.dims(), &[64, 16]);
//! assert!(out.aux_loss >= 0.0);
//! # Ok::<(), tutel_tensor::TensorError>(())
//! ```

pub mod adaptive;
mod api;
mod baseline;
pub mod checkpoint;
mod config;
pub mod data;
mod layer;
pub mod model;
pub mod overlap;
pub mod pipeline;
pub mod trainer;

pub use api::{moe, net};
pub use baseline::FairseqMoeLayer;
pub use config::{MoeConfig, RouterKind};
pub use layer::{MoeLayer, MoeOutput};
