//! Configuration of an MoE layer.

use serde::{Deserialize, Serialize};
use tutel_gate::{CapacityPolicy, RouteConfig};

/// Which router scores tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RouterKind {
    /// Linear projection (GShard/Fairseq standard).
    #[default]
    Linear,
    /// Cosine router with learnable temperature (Equation 2).
    Cosine,
    /// Parameter-free hash router.
    Hash,
}

/// Configuration of a [`crate::MoeLayer`].
///
/// Mirrors the knobs of Tutel's Python `moe_layer` API: `top_k` can be
/// changed at every iteration (top-ANY), `capacity_factor` follows the
/// Figure 16 convention (positive / 0 / negative), and batch
/// prioritized routing is a flag.
///
/// # Example
///
/// ```
/// use tutel::{MoeConfig, RouterKind};
///
/// let cfg = MoeConfig::new(128, 512, 32)
///     .with_top_k(1)
///     .with_capacity_factor(1.25)
///     .with_router(RouterKind::Cosine)
///     .with_bpr(true);
/// assert_eq!(cfg.experts, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Model (channel) dimension `M`.
    pub model_dim: usize,
    /// Expert FFN hidden dimension `V`.
    pub hidden_dim: usize,
    /// Number of global experts `E`.
    pub experts: usize,
    /// Experts per token (top-k; any `1 ≤ k ≤ E`).
    pub top_k: usize,
    /// Capacity-factor argument in the Figure 16 convention.
    pub capacity_factor: f64,
    /// Batch prioritized routing.
    pub bpr: bool,
    /// Router choice.
    pub router: RouterKind,
    /// Projection dimension of the cosine router.
    pub cosine_proj_dim: usize,
    /// Weight of the auxiliary load-balancing loss in the gradient.
    pub aux_weight: f32,
}

impl MoeConfig {
    /// Creates a config with the paper's SwinV2-MoE defaults
    /// (top-1, `f = 1.0`, linear router, no BPR, aux weight 0.01).
    pub fn new(model_dim: usize, hidden_dim: usize, experts: usize) -> Self {
        MoeConfig {
            model_dim,
            hidden_dim,
            experts,
            top_k: 1,
            capacity_factor: 1.0,
            bpr: false,
            router: RouterKind::Linear,
            cosine_proj_dim: 256,
            aux_weight: 0.01,
        }
    }

    /// Sets `top_k`.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sets the capacity-factor argument (Figure 16 convention).
    pub fn with_capacity_factor(mut self, x: f64) -> Self {
        self.capacity_factor = x;
        self
    }

    /// Sets the router kind.
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Enables/disables batch prioritized routing.
    pub fn with_bpr(mut self, bpr: bool) -> Self {
        self.bpr = bpr;
        self
    }

    /// Sets the auxiliary-loss weight.
    pub fn with_aux_weight(mut self, w: f32) -> Self {
        self.aux_weight = w;
        self
    }

    /// The per-iteration routing configuration this config implies.
    pub fn route_config(&self) -> RouteConfig {
        RouteConfig {
            k: self.top_k,
            capacity: CapacityPolicy::from_arg(self.capacity_factor),
            bpr: self.bpr,
            normalize_gates: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = MoeConfig::new(8, 16, 4)
            .with_top_k(2)
            .with_capacity_factor(-4.0)
            .with_bpr(true);
        let rc = cfg.route_config();
        assert_eq!(rc.k, 2);
        assert!(rc.bpr);
        assert_eq!(rc.capacity, CapacityPolicy::AutoCapped(4.0));
    }

    #[test]
    fn defaults_match_swinv2_moe() {
        let cfg = MoeConfig::new(8, 16, 32);
        assert_eq!(cfg.top_k, 1);
        assert_eq!(cfg.capacity_factor, 1.0);
        assert_eq!(cfg.router, RouterKind::Linear);
        assert!(!cfg.bpr);
    }
}
