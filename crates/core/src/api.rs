//! Paper-faithful API façade: the names of Figure 8.
//!
//! The paper's custom-layer example is
//!
//! ```python
//! from tutel import moe
//! from tutel import net
//!
//! def custom_moe(x, top_k=2):
//!     scores = softmax(CustomGate(x), dim=1)
//!     crit, l_aux = moe.top_k_routing(scores, top_k)
//!     y = moe.fast_encode(x, crit)
//!     y = net.flex_all2all(y, 1, 0)
//!     y = CustomExpert(y)
//!     y = net.flex_all2all(y, 0, 1)
//!     output = moe.fast_decode(y, crit)
//!     return output, l_aux
//! ```
//!
//! and this module provides the same vocabulary in Rust:
//! [`moe::top_k_routing`], [`moe::fast_encode`], [`moe::fast_decode`],
//! [`net::flex_all2all`].

/// `from tutel import moe` — routing and encode/decode.
pub mod moe {
    use tutel_gate::{route, RouteConfig, Routing};
    use tutel_tensor::{Tensor, TensorError};

    pub use tutel_kernels::{fast_decode, fast_encode};

    /// Top-k routing from gating `scores (T, E)`: returns the routing
    /// criterion (`crit`) and the auxiliary load-balancing loss
    /// (`l_aux`) — the `moe.top_k_routing(scores, top_k)` of Figure 8.
    ///
    /// Uses the default capacity factor 1.0; build a
    /// [`RouteConfig`](tutel_gate::RouteConfig) and call
    /// [`route`](tutel_gate::route) directly for the full knob set.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `scores` is not rank-2 or `top_k`
    /// is out of range.
    pub fn top_k_routing(scores: &Tensor, top_k: usize) -> Result<(Routing, f32), TensorError> {
        let cfg = RouteConfig {
            k: top_k,
            ..RouteConfig::top1()
        };
        let crit = route(scores, &cfg)?;
        let l_aux = tutel_gate::aux_loss(scores, &crit)?;
        Ok((crit, l_aux))
    }
}

/// `from tutel import net` — the communication layer.
pub mod net {
    use tutel_comm::AllToAllAlgo;
    use tutel_simgpu::Topology;
    use tutel_tensor::{Tensor, TensorError};

    /// Flexible All-to-All over per-rank tensors — the
    /// `net.flex_all2all(y, concat_dim, split_dim)` of Figure 8 and
    /// Table 3. Dispatch: `(E, ΔC, M) → (ΔE, C, M)` with `(1, 0)`;
    /// combine: the inverse with `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] under the conditions of
    /// [`tutel_comm::flex::flex_all_to_all`].
    pub fn flex_all2all(
        inputs: &[Tensor],
        concat_dim: usize,
        split_dim: usize,
        topology: &Topology,
    ) -> Result<Vec<Tensor>, TensorError> {
        tutel_comm::flex::flex_all_to_all(
            inputs,
            concat_dim,
            split_dim,
            AllToAllAlgo::TwoDh,
            topology,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::{moe, net};
    use tutel_simgpu::Topology;
    use tutel_tensor::{Rng, Tensor};

    #[test]
    fn figure8_custom_layer_end_to_end() {
        // The full Figure 8 program, with a doubling "CustomExpert".
        let topo = Topology::single_node(2);
        let w = topo.world_size();
        let (tokens, experts, m) = (8usize, 2usize, 4usize);
        let mut rng = Rng::seed(1);
        let gate_w = rng.normal_tensor(&[m, experts], 0.0, 0.1);

        let mut encoded = Vec::new();
        let mut crits = Vec::new();
        for _ in 0..w {
            let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
            let scores = x.matmul(&gate_w).unwrap().softmax_last();
            let (crit, l_aux) = moe::top_k_routing(&scores, 2).unwrap();
            assert!(l_aux > 0.0);
            encoded.push(moe::fast_encode(&x, &crit).unwrap());
            crits.push(crit);
        }
        let dispatched = net::flex_all2all(&encoded, 1, 0, &topo).unwrap();
        let expert_out: Vec<Tensor> = dispatched.iter().map(|t| t.scale(2.0)).collect();
        let combined = net::flex_all2all(&expert_out, 0, 1, &topo).unwrap();
        for (buf, crit) in combined.iter().zip(&crits) {
            let out = moe::fast_decode(buf, crit, tokens).unwrap();
            assert_eq!(out.dims(), &[tokens, m]);
            assert!(out.max_abs().is_finite());
        }
    }

    #[test]
    fn top_k_routing_validates() {
        let scores = Tensor::zeros(&[4, 3]).softmax_last();
        assert!(moe::top_k_routing(&scores, 0).is_err());
        assert!(moe::top_k_routing(&scores, 4).is_err());
        assert!(moe::top_k_routing(&scores, 3).is_ok());
    }
}
