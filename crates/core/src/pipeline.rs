//! Adaptive pipelining (Section 3.3): token partitioning for
//! multi-stream comm/compute overlap, a timing model for any
//! (All-to-All algorithm × pipelining degree) strategy, and the online
//! strategy search of Algorithm 2.

use std::collections::HashMap;

use tutel_comm::{A2aImpl, AllToAllAlgo, CollectiveTiming};
use tutel_simgpu::{calib, Protocol, Seconds, StreamId, Timeline};

/// One pipelining strategy: which All-to-All algorithm to run and how
/// many capacity-dimension partitions to overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineStrategy {
    /// All-to-All algorithm for dispatch and combine.
    pub algo: AllToAllAlgo,
    /// Pipelining degree `d ∈ {1, 2, 4, 8}` (1 = no overlap).
    pub degree: usize,
}

impl PipelineStrategy {
    /// The paper's strategy space: {Linear, 2DH} × {1, 2, 4, 8}.
    pub fn all() -> Vec<PipelineStrategy> {
        let mut v = Vec::with_capacity(8);
        for algo in AllToAllAlgo::ALL {
            for degree in [1usize, 2, 4, 8] {
                v.push(PipelineStrategy { algo, degree });
            }
        }
        v
    }

    /// The static baseline every comparison in Table 7 is against:
    /// linear All-to-All, degree 1.
    pub fn baseline() -> PipelineStrategy {
        PipelineStrategy {
            algo: AllToAllAlgo::Linear,
            degree: 1,
        }
    }
}

impl std::fmt::Display for PipelineStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}×d{}", self.algo, self.degree)
    }
}

/// Per-iteration dimensions of a single MoE layer on one GPU, in the
/// paper's Table 2 notation (`tokens` is tokens/step *per GPU*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerDims {
    /// Tokens per step per GPU (`T`).
    pub tokens: usize,
    /// Model dimension (`M`).
    pub model_dim: usize,
    /// Expert hidden dimension (`V`).
    pub hidden_dim: usize,
    /// Local experts per GPU (`ΔE`); fractional values < 1 (expert
    /// sharded over GPUs) are expressed as 1 with a wider world.
    pub local_experts: usize,
    /// Top-k.
    pub k: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
}

impl LayerDims {
    /// The Figure 23 setting: tokens/step = 16,384, `f = 1`,
    /// `M = V = 2,048`, `ΔE = 2`, top-2.
    pub fn figure23() -> Self {
        LayerDims {
            tokens: 16384,
            model_dim: 2048,
            hidden_dim: 2048,
            local_experts: 2,
            k: 2,
            capacity_factor: 1.0,
        }
    }

    /// Per-GPU All-to-All payload bytes: `E·ΔC·M·4 = k·f·T·M·4`,
    /// independent of world size.
    pub fn a2a_bytes(&self) -> f64 {
        self.k as f64 * self.capacity_factor * self.tokens as f64 * self.model_dim as f64 * 4.0
    }

    /// Rows of expert work per GPU: `ΔE · C = k·f·T`.
    pub fn expert_rows(&self) -> usize {
        (self.k as f64 * self.capacity_factor * self.tokens as f64).ceil() as usize
    }
}

/// Prices one MoE layer iteration (forward) under a pipelining strategy.
///
/// Schedules, on a two-stream [`Timeline`], the dispatch All-to-All
/// chunks (communication stream), the expert GEMM chunks (computation
/// stream), and the combine All-to-All chunks, with the dependency
/// structure of Figure 14. Encode/decode and gating are not partitioned
/// (the paper partitions only the two All-to-Alls and the expert).
///
/// When `degree > 1`, overlapped kernels interfere: compute inflates by
/// [`calib::OVERLAP_COMPUTE_INFLATION`] and communication by a
/// per-algorithm factor — the asymmetry that makes the joint search
/// necessary (Section 2.3).
#[derive(Debug, Clone, Copy)]
pub struct PipelineTimeModel {
    timing: CollectiveTiming,
    /// Use Tutel's sparse encode/decode (vs the dense Fairseq einsum).
    pub sparse_kernels: bool,
    /// Use Flexible All-to-All output layout (vs the rigid
    /// `(W, ΔE, ΔC, M)` layout whose tiny GEMM rows kill throughput).
    pub flexible_layout: bool,
    /// Model comm/compute interference when streams overlap (Section
    /// 2.3). Disable for the ablation that shows how an
    /// interference-blind search over-pipelines.
    pub interference: bool,
    /// Multiplier on expert GEMM time (1.0 = calibration baseline).
    /// SIMD microkernels shrink compute without touching the wire, so
    /// a `< 1` scale shifts every comm/compute tradeoff the search
    /// prices — overlap degree and All-to-All algorithm included.
    pub compute_scale: f64,
    /// Weight storage precision in effect, carried into every audit
    /// record this model emits. Expert GEMMs accumulate in `f32`
    /// regardless, so this does not change modeled compute time; it
    /// documents which price book the decision belongs to.
    pub precision: tutel_tensor::Precision,
}

impl PipelineTimeModel {
    /// Creates a model with Tutel kernels and flexible layout enabled.
    pub fn new(timing: CollectiveTiming) -> Self {
        PipelineTimeModel {
            timing,
            sparse_kernels: true,
            flexible_layout: true,
            interference: true,
            compute_scale: 1.0,
            precision: tutel_tensor::Precision::F32,
        }
    }

    /// Sets the expert-compute scale (e.g. a measured SIMD speedup of
    /// 2× → `0.5`).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_compute_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "compute scale must be positive and finite"
        );
        self.compute_scale = scale;
        self
    }

    /// Tags the model (and its audit records) with a weight storage
    /// precision.
    pub fn with_precision(mut self, precision: tutel_tensor::Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The collective pricer in use.
    pub fn timing(&self) -> &CollectiveTiming {
        &self.timing
    }

    /// Per-iteration time of the full MoE layer under `strategy`.
    pub fn step_time(&self, dims: &LayerDims, strategy: PipelineStrategy) -> Seconds {
        let d = strategy.degree.max(1);
        let world = self.timing.world();
        let w = world.size();
        let gpu = world.gpu();
        let e_global = w * dims.local_experts;

        // Unpartitioned portions.
        let gate = gpu.gate_time(dims.tokens, e_global);
        let encode_decode = if self.sparse_kernels {
            2.0 * gpu.sparse_encode_time(dims.tokens, dims.k, dims.model_dim)
        } else {
            let dc = (dims.expert_rows() / e_global.max(1)).max(1);
            2.0 * gpu.dense_encode_time(dims.tokens, e_global, dc, dims.model_dim)
        };

        // Chunked portions.
        let chunk_bytes = dims.a2a_bytes() / d as f64;
        let a2a_once = self
            .timing
            .all_to_all_time(strategy.algo, chunk_bytes, Protocol::Simple);
        let rows = dims.expert_rows();
        let chunk_rows = (rows / d).max(1);
        let expert_once = self.expert_time(dims, w, chunk_rows);

        // Interference inflation only applies when streams overlap.
        let (comm_inflation, comp_inflation) = if d > 1 && self.interference {
            let comm = match strategy.algo {
                AllToAllAlgo::Linear => calib::OVERLAP_COMM_INFLATION_LINEAR,
                AllToAllAlgo::TwoDh => calib::OVERLAP_COMM_INFLATION_2DH,
            };
            (comm, calib::OVERLAP_COMPUTE_INFLATION)
        } else {
            (1.0, 1.0)
        };

        let comm = StreamId(0);
        let comp = StreamId(1);
        let mut tl = Timeline::new();
        let mut dispatch_events = Vec::with_capacity(d);
        for _ in 0..d {
            dispatch_events.push(tl.push(comm, a2a_once * comm_inflation, &[]));
        }
        let mut expert_events = Vec::with_capacity(d);
        for &dep in &dispatch_events {
            expert_events.push(tl.push(comp, expert_once * comp_inflation, &[dep]));
        }
        for &dep in &expert_events {
            tl.push(comm, a2a_once * comm_inflation, &[dep]);
        }
        let pipeline = tl.makespan() + if d > 1 { calib::BARRIER_OVERHEAD } else { 0.0 };

        gate + encode_decode + pipeline
    }

    /// Expert GEMM time for `chunk_rows` rows per GPU, honoring the
    /// layout. The rigid layout batches per *source GPU*, collapsing the
    /// per-matrix row count by a factor of `W` (Figure 7); the flexible
    /// layout keeps `ΔE` big matrices regardless of scale.
    fn expert_time(&self, dims: &LayerDims, world: usize, chunk_rows: usize) -> Seconds {
        let (m, v) = (dims.model_dim, dims.hidden_dim);
        let de = dims.local_experts;
        let (batch, rows) = if self.flexible_layout {
            (de, (chunk_rows / de).max(1))
        } else {
            (world * de, (chunk_rows / (world * de)).max(1))
        };
        let gpu = self.timing.world().gpu();
        (gpu.gemm_time(batch, rows, m, v) + gpu.gemm_time(batch, rows, v, m)) * self.compute_scale
    }

    /// The strategy with the lowest modeled time — the "oracle" the
    /// online search converges to.
    pub fn best_strategy(&self, dims: &LayerDims) -> (PipelineStrategy, Seconds) {
        PipelineStrategy::all()
            .into_iter()
            .map(|s| (s, self.step_time(dims, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("strategy space is non-empty")
    }

    /// [`PipelineTimeModel::best_strategy`] that also appends an
    /// adaptive-decision audit record to `tel`: all eight candidate
    /// strategies with their modeled costs, plus the winner.
    pub fn best_strategy_observed(
        &self,
        dims: &LayerDims,
        tel: &tutel_obs::Telemetry,
    ) -> (PipelineStrategy, Seconds) {
        if !tel.is_enabled() {
            return self.best_strategy(dims);
        }
        let costs: Vec<(PipelineStrategy, Seconds)> = PipelineStrategy::all()
            .into_iter()
            .map(|s| (s, self.step_time(dims, s)))
            .collect();
        let (best, best_t) = costs
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("strategy space is non-empty");
        tel.decision(tutel_obs::DecisionRecord {
            kind: "pipeline".to_string(),
            capacity_factor: dims.capacity_factor,
            candidates: costs.into_iter().map(|(s, t)| (s.to_string(), t)).collect(),
            chosen: best.to_string(),
            predicted_s: Some(best_t),
            measured_s: None,
            cause: None,
            precision: Some(self.precision.label().to_string()),
            dropless: dims.capacity_factor == 0.0,
            step: None,
        });
        (best, best_t)
    }

    /// Per-stage attribution of [`PipelineTimeModel::step_time`]:
    /// serial cost of each stage plus how much the pipelined schedule
    /// saved by overlapping. Satisfies
    /// `gate + encode + a2a_dispatch + expert + a2a_combine + decode
    /// - overlap_saving == step_time` up to rounding.
    pub fn stage_breakdown(&self, dims: &LayerDims, strategy: PipelineStrategy) -> StageBreakdown {
        let d = strategy.degree.max(1);
        let world = self.timing.world();
        let w = world.size();
        let gpu = world.gpu();
        let e_global = w * dims.local_experts;

        let gate = gpu.gate_time(dims.tokens, e_global);
        let encode_decode = if self.sparse_kernels {
            2.0 * gpu.sparse_encode_time(dims.tokens, dims.k, dims.model_dim)
        } else {
            let dc = (dims.expert_rows() / e_global.max(1)).max(1);
            2.0 * gpu.dense_encode_time(dims.tokens, e_global, dc, dims.model_dim)
        };

        let chunk_bytes = dims.a2a_bytes() / d as f64;
        let a2a_once = self
            .timing
            .all_to_all_time(strategy.algo, chunk_bytes, Protocol::Simple);
        let chunk_rows = (dims.expert_rows() / d).max(1);
        let expert_once = self.expert_time(dims, w, chunk_rows);
        let (comm_inflation, comp_inflation) = if d > 1 && self.interference {
            let comm = match strategy.algo {
                AllToAllAlgo::Linear => calib::OVERLAP_COMM_INFLATION_LINEAR,
                AllToAllAlgo::TwoDh => calib::OVERLAP_COMM_INFLATION_2DH,
            };
            (comm, calib::OVERLAP_COMPUTE_INFLATION)
        } else {
            (1.0, 1.0)
        };

        let a2a_leg = d as f64 * a2a_once * comm_inflation;
        let expert = d as f64 * expert_once * comp_inflation;
        let serial = gate + encode_decode + 2.0 * a2a_leg + expert;
        let overlap_saving = serial - self.step_time(dims, strategy);
        StageBreakdown {
            strategy,
            gate,
            encode: encode_decode / 2.0,
            a2a_dispatch: a2a_leg,
            expert,
            a2a_combine: a2a_leg,
            decode: encode_decode / 2.0,
            overlap_saving,
        }
    }

    /// Time of a 2DH step under the MSCCL fused implementation with the
    /// best protocol — used by the Figure 21 comparison.
    pub fn two_dh_msccl_time(
        &self,
        dims: &LayerDims,
        degree: usize,
        protocol: Protocol,
    ) -> Seconds {
        // Same schedule as step_time but with the MSCCL pricer.
        let d = degree.max(1);
        let chunk_bytes = dims.a2a_bytes() / d as f64;
        let a2a_once = self
            .timing
            .two_dh_time_impl(chunk_bytes, protocol, A2aImpl::Msccl);
        let rows = dims.expert_rows();
        let expert_once = self.expert_time(dims, self.timing.world().size(), (rows / d).max(1));
        let gpu = self.timing.world().gpu();
        let fixed = gpu.gate_time(dims.tokens, self.timing.world().size() * dims.local_experts)
            + 2.0 * gpu.sparse_encode_time(dims.tokens, dims.k, dims.model_dim);
        let comm = StreamId(0);
        let comp = StreamId(1);
        let mut tl = Timeline::new();
        let infl = if d > 1 {
            calib::OVERLAP_COMM_INFLATION_2DH
        } else {
            1.0
        };
        let cinfl = if d > 1 {
            calib::OVERLAP_COMPUTE_INFLATION
        } else {
            1.0
        };
        let mut deps = Vec::new();
        for _ in 0..d {
            deps.push(tl.push(comm, a2a_once * infl, &[]));
        }
        let mut edeps = Vec::new();
        for &dep in &deps {
            edeps.push(tl.push(comp, expert_once * cinfl, &[dep]));
        }
        for &dep in &edeps {
            tl.push(comm, a2a_once * infl, &[dep]);
        }
        fixed + tl.makespan()
    }
}

/// Serial per-stage costs of one modeled MoE iteration, plus the time
/// the two-stream schedule recovered by overlapping. Produced by
/// [`PipelineTimeModel::stage_breakdown`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBreakdown {
    /// The strategy the breakdown was computed for.
    pub strategy: PipelineStrategy,
    /// Gating (softmax + top-k + cumsum) time.
    pub gate: Seconds,
    /// Sparse (or dense) dispatch encode.
    pub encode: Seconds,
    /// All chunks of the dispatch All-to-All, serialized.
    pub a2a_dispatch: Seconds,
    /// All expert GEMM chunks, serialized.
    pub expert: Seconds,
    /// All chunks of the combine All-to-All, serialized.
    pub a2a_combine: Seconds,
    /// Sparse (or dense) combine decode.
    pub decode: Seconds,
    /// Serial sum minus the pipelined makespan (0 at degree 1).
    pub overlap_saving: Seconds,
}

impl StageBreakdown {
    /// Sum of the serial stages without any overlap credit.
    pub fn serial_total(&self) -> Seconds {
        self.gate + self.encode + self.a2a_dispatch + self.expert + self.a2a_combine + self.decode
    }

    /// The modeled step time this breakdown attributes.
    pub fn total(&self) -> Seconds {
        self.serial_total() - self.overlap_saving
    }

    /// The stages as `(name, seconds)` pairs, in execution order —
    /// ready for [`tutel_obs::Telemetry::add_stage`].
    pub fn stages(&self) -> [(&'static str, Seconds); 6] {
        [
            ("gate", self.gate),
            ("encode", self.encode),
            ("a2a_dispatch", self.a2a_dispatch),
            ("expert", self.expert),
            ("a2a_combine", self.a2a_combine),
            ("decode", self.decode),
        ]
    }
}

/// Key for memoizing capacity factors (f64 quantized to 1e-6).
fn fkey(f: f64) -> u64 {
    (f * 1e6).round() as u64
}

#[derive(Debug, Clone, Default)]
struct Memo {
    /// Measured (or normalized) time per tried strategy.
    tried: HashMap<PipelineStrategy, Seconds>,
}

impl Memo {
    fn best(&self) -> Option<PipelineStrategy> {
        self.tried
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(s, _)| *s)
    }

    fn untried(&self) -> Option<PipelineStrategy> {
        PipelineStrategy::all()
            .into_iter()
            .find(|s| !self.tried.contains_key(s))
    }

    fn all_tried(&self) -> bool {
        self.tried.len() >= PipelineStrategy::all().len()
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    /// Lowest f in the bucket (bucket spans `[lo, lo + len]`).
    lo: f64,
    memo: Memo,
}

/// Algorithm 2: the online pipelining strategy search.
///
/// Capacity factors observed at runtime are grouped into buckets of
/// length `L`; factors in the same bucket share strategy measurements
/// (normalized by the bucket's lowest factor), so each bucket explores
/// every strategy at most once and the whole search amortizes to O(1)
/// per iteration.
///
/// # Example
///
/// ```
/// use tutel::pipeline::{OnlineStrategySearch, PipelineStrategy};
///
/// let mut search = OnlineStrategySearch::new(1.0);
/// // Feed it a synthetic workload where the oracle is (2DH, d=4).
/// let oracle = |s: PipelineStrategy| if s.degree == 4 { 1.0 } else { 2.0 };
/// for _ in 0..20 {
///     let s = search.next_strategy(1.3);
///     search.record(1.3, s, oracle(s));
/// }
/// assert_eq!(search.next_strategy(1.3).degree, 4);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineStrategySearch {
    bucket_len: f64,
    known_fs: Vec<f64>,
    per_f: HashMap<u64, Memo>,
    buckets: Vec<Bucket>,
}

impl OnlineStrategySearch {
    /// Creates a search with bucket length `L`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_len` is not positive.
    pub fn new(bucket_len: f64) -> Self {
        assert!(bucket_len > 0.0, "bucket length must be positive");
        OnlineStrategySearch {
            bucket_len,
            known_fs: Vec::new(),
            per_f: HashMap::new(),
            buckets: Vec::new(),
        }
    }

    /// GETSTRATEGY: the strategy to run for capacity factor `f` this
    /// iteration.
    pub fn next_strategy(&mut self, f: f64) -> PipelineStrategy {
        if !self.known_fs.iter().any(|&k| fkey(k) == fkey(f)) {
            self.recompute_buckets(f);
        }
        let fm = self.per_f.entry(fkey(f)).or_default();
        if fm.all_tried() {
            return fm.best().expect("all strategies tried implies non-empty");
        }
        let bucket = self.bucket_index(f).expect("f was just bucketed");
        let bm = &self.buckets[bucket].memo;
        if bm.all_tried() {
            bm.best().expect("non-empty")
        } else {
            bm.untried().expect("not all tried")
        }
    }

    /// [`OnlineStrategySearch::next_strategy`] that also appends an
    /// adaptive-decision audit record to `tel`: every strategy the
    /// relevant memo has measured so far (normalized seconds), the
    /// choice made this iteration, and — once the bucket has finished
    /// exploring — the predicted cost of that choice. While still
    /// exploring, `predicted_s` is `None` (the pick is a probe, not a
    /// prediction).
    pub fn next_strategy_observed(
        &mut self,
        f: f64,
        tel: &tutel_obs::Telemetry,
    ) -> PipelineStrategy {
        let choice = self.next_strategy(f);
        if tel.is_enabled() {
            // Prefer the exact-f memo (what `next_strategy` consults
            // first), falling back to the shared bucket memo.
            let exact = self.per_f.get(&fkey(f));
            let memo = match exact {
                Some(m) if m.all_tried() => Some(m),
                _ => self.bucket_index(f).map(|b| &self.buckets[b].memo),
            };
            let mut candidates: Vec<(String, Seconds)> = memo
                .map(|m| m.tried.iter().map(|(s, &t)| (s.to_string(), t)).collect())
                .unwrap_or_default();
            candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
            let converged = memo.is_some_and(Memo::all_tried);
            let predicted_s = if converged {
                candidates.first().map(|(_, t)| *t)
            } else {
                None
            };
            tel.decision(tutel_obs::DecisionRecord {
                kind: "pipeline.online".to_string(),
                capacity_factor: f,
                candidates,
                chosen: choice.to_string(),
                predicted_s,
                measured_s: None,
                cause: None,
                precision: None,
                dropless: f == 0.0,
                step: None,
            });
        }
        choice
    }

    /// OPTIMIZESTRATEGY: records a measured iteration time for
    /// (`f`, `strategy`).
    pub fn record(&mut self, f: f64, strategy: PipelineStrategy, time: Seconds) {
        self.per_f
            .entry(fkey(f))
            .or_default()
            .tried
            .insert(strategy, time);
        if let Some(b) = self.bucket_index(f) {
            let lo = self.buckets[b].lo.max(f64::EPSILON);
            // Normalize by the bucket's lowest f so measurements from
            // different factors are comparable.
            let normalized = time * lo / f.max(f64::EPSILON);
            let entry = self.buckets[b]
                .memo
                .tried
                .entry(strategy)
                .or_insert(normalized);
            *entry = entry.min(normalized);
        }
    }

    /// Number of distinct capacity factors observed.
    pub fn known_factors(&self) -> usize {
        self.known_fs.len()
    }

    /// Number of buckets currently maintained.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// RECOMPUTEBUCKETS: adds `f` to the known list and greedily
    /// re-partitions all known factors into buckets of span ≤ L,
    /// rebuilding each new bucket's memo from its members' per-f memos
    /// (times normalized by the new bucket's lowest factor).
    fn recompute_buckets(&mut self, f: f64) {
        self.known_fs.push(f);
        self.known_fs.sort_by(|a, b| a.total_cmp(b));
        self.known_fs.dedup_by(|a, b| fkey(*a) == fkey(*b));
        self.buckets.clear();
        let mut current: Option<Bucket> = None;
        let fs = self.known_fs.clone();
        for &kf in &fs {
            let start_new = match &current {
                None => true,
                Some(b) => kf - b.lo > self.bucket_len,
            };
            if start_new {
                if let Some(b) = current.take() {
                    self.buckets.push(b);
                }
                current = Some(Bucket {
                    lo: kf,
                    memo: Memo::default(),
                });
            }
            let b = current.as_mut().expect("bucket exists after start check");
            if let Some(fm) = self.per_f.get(&fkey(kf)) {
                let lo = b.lo.max(f64::EPSILON);
                for (&s, &t) in &fm.tried {
                    let normalized = t * lo / kf.max(f64::EPSILON);
                    let entry = b.memo.tried.entry(s).or_insert(normalized);
                    *entry = entry.min(normalized);
                }
            }
        }
        if let Some(b) = current {
            self.buckets.push(b);
        }
    }

    fn bucket_index(&self, f: f64) -> Option<usize> {
        self.buckets
            .iter()
            .position(|b| f >= b.lo - 1e-12 && f - b.lo <= self.bucket_len + 1e-12)
    }
}

/// Default EWMA weight for new measurements in
/// [`MeasuredStrategySearch`]: heavy enough to track drift, light
/// enough that one noisy chunk cannot flip a converged ranking.
const MEASURED_EWMA_ALPHA: f64 = 0.4;

/// Per-bucket state of the measured search: an EWMA of normalized
/// wall-clock per strategy.
#[derive(Debug, Clone)]
struct MeasuredBucket {
    /// Lowest capacity factor of the fixed-grid cell
    /// (`⌊f/L⌋·L`) — the normalization anchor.
    lo: f64,
    ewma: HashMap<PipelineStrategy, Seconds>,
}

impl MeasuredBucket {
    fn best(&self) -> Option<(PipelineStrategy, Seconds)> {
        self.ewma
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&s, &t)| (s, t))
    }
}

/// Algorithm 2 ranked by **execution**, not by model: strategies are
/// ordered by the measured wall-clock of the overlapped schedule
/// ([`crate::overlap::run_overlapped`]), with the simgpu
/// [`PipelineTimeModel`] kept only as the cold-start prior that
/// decides exploration order.
///
/// Capacity factors land in fixed-grid buckets of length `L`
/// (`lo = ⌊f/L⌋·L`); measurements within a bucket are normalized by
/// `lo / f` so factors sharing a bucket share evidence, exactly like
/// [`OnlineStrategySearch`]. Each (bucket, strategy) keeps an EWMA of
/// its normalized measurements, so the ranking tracks machine drift
/// instead of freezing the first sample forever.
///
/// The decision loop: [`MeasuredStrategySearch::next_strategy`] picks
/// the cheapest *unmeasured* strategy under the model prior until all
/// eight have at least one measurement, then the measured argmin;
/// [`MeasuredStrategySearch::record`] folds each executed iteration's
/// wall-clock back in.
#[derive(Debug, Clone)]
pub struct MeasuredStrategySearch {
    bucket_len: f64,
    alpha: f64,
    model: PipelineTimeModel,
    buckets: HashMap<u64, MeasuredBucket>,
    /// Attributed cause (from the trace analyzer) carried into the
    /// *next* emitted decision record — see
    /// [`MeasuredStrategySearch::attribute`].
    pending_cause: Option<String>,
}

impl MeasuredStrategySearch {
    /// Creates a measured search over buckets of length `L`, with
    /// `model` as the exploration prior.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_len` is not positive.
    pub fn new(bucket_len: f64, model: PipelineTimeModel) -> Self {
        assert!(bucket_len > 0.0, "bucket length must be positive");
        MeasuredStrategySearch {
            bucket_len,
            alpha: MEASURED_EWMA_ALPHA,
            model,
            buckets: HashMap::new(),
            pending_cause: None,
        }
    }

    /// Attaches an attributed cause (e.g. a straggler or imbalance
    /// anomaly found by [`tutel_obs::analyze`]) to the next decision
    /// record emitted by
    /// [`MeasuredStrategySearch::next_strategy_observed`] — so when a
    /// measured regression changes (or fails to change) the chosen
    /// strategy, the audit log says *why* the measurement moved.
    pub fn attribute(&mut self, cause: impl Into<String>) {
        self.pending_cause = Some(cause.into());
    }

    /// Overrides the EWMA weight given to each new measurement
    /// (`1.0` = keep only the latest sample).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA weight must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// The exploration prior.
    pub fn model(&self) -> &PipelineTimeModel {
        &self.model
    }

    fn bucket_lo(&self, f: f64) -> f64 {
        (f.max(0.0) / self.bucket_len).floor() * self.bucket_len
    }

    fn bucket(&mut self, f: f64) -> &mut MeasuredBucket {
        let lo = self.bucket_lo(f);
        self.buckets.entry(fkey(lo)).or_insert(MeasuredBucket {
            lo,
            ewma: HashMap::new(),
        })
    }

    /// GETSTRATEGY, measured flavor: the strategy to execute for
    /// `dims` this iteration. While the bucket still has unmeasured
    /// strategies, returns the one the model prices cheapest (probe
    /// the most promising first, so early iterations are near-optimal
    /// even mid-exploration); once every strategy has a measurement,
    /// returns the measured argmin.
    pub fn next_strategy(&mut self, dims: &LayerDims) -> PipelineStrategy {
        let prior_dims = *dims;
        let model = self.model;
        let bucket = self.bucket(dims.capacity_factor);
        let mut unmeasured: Vec<PipelineStrategy> = PipelineStrategy::all()
            .into_iter()
            .filter(|s| !bucket.ewma.contains_key(s))
            .collect();
        if unmeasured.is_empty() {
            return bucket
                .best()
                .map(|(s, _)| s)
                // check:allow(no_panic, all eight strategies measured implies the map is non-empty)
                .expect("all measured implies non-empty");
        }
        unmeasured.sort_by(|&a, &b| {
            model
                .step_time(&prior_dims, a)
                .total_cmp(&model.step_time(&prior_dims, b))
        });
        unmeasured[0]
    }

    /// [`MeasuredStrategySearch::next_strategy`] that also appends an
    /// audit record (`kind = "pipeline.measured"`): the measured
    /// candidates so far, the choice, the model's predicted cost of
    /// the choice, and — when the choice already has evidence — its
    /// measured EWMA, so the log carries the measured-vs-predicted
    /// delta for every iteration.
    pub fn next_strategy_observed(
        &mut self,
        dims: &LayerDims,
        tel: &tutel_obs::Telemetry,
    ) -> PipelineStrategy {
        let choice = self.next_strategy(dims);
        if tel.is_enabled() {
            let predicted = self.model.step_time(dims, choice);
            let bucket = self.bucket(dims.capacity_factor);
            let mut candidates: Vec<(String, Seconds)> = bucket
                .ewma
                .iter()
                .map(|(s, &t)| (s.to_string(), t))
                .collect();
            candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
            let measured_s = bucket.ewma.get(&choice).copied();
            tel.decision(tutel_obs::DecisionRecord {
                kind: "pipeline.measured".to_string(),
                capacity_factor: dims.capacity_factor,
                candidates,
                chosen: choice.to_string(),
                predicted_s: Some(predicted),
                measured_s,
                cause: self.pending_cause.take(),
                precision: Some(self.model.precision.label().to_string()),
                dropless: dims.capacity_factor == 0.0,
                step: None,
            });
        }
        choice
    }

    /// OPTIMIZESTRATEGY, measured flavor: folds one executed
    /// iteration's wall-clock seconds into the (bucket, strategy)
    /// EWMA, normalized by `lo / f` so factors sharing the bucket
    /// stay comparable.
    pub fn record(&mut self, f: f64, strategy: PipelineStrategy, wall_s: Seconds) {
        let alpha = self.alpha;
        let bucket = self.bucket(f);
        let lo = bucket.lo.max(f64::EPSILON);
        let normalized = wall_s * lo / f.max(f64::EPSILON);
        bucket
            .ewma
            .entry(strategy)
            .and_modify(|e| *e = alpha * normalized + (1.0 - alpha) * *e)
            .or_insert(normalized);
    }

    /// [`MeasuredStrategySearch::record`] that also backfills the most
    /// recent `pipeline.measured` decision record for `strategy` with
    /// the updated EWMA — so the audit log's `measured_s` reflects the
    /// evidence the decision actually produced, not `null` until the
    /// strategy happens to be re-chosen.
    pub fn record_observed(
        &mut self,
        f: f64,
        strategy: PipelineStrategy,
        wall_s: Seconds,
        tel: &tutel_obs::Telemetry,
    ) {
        self.record(f, strategy, wall_s);
        if tel.is_enabled() {
            let lo = self.bucket_lo(f);
            let ewma = self
                .buckets
                .get(&fkey(lo))
                .and_then(|b| b.ewma.get(&strategy))
                .copied();
            if let Some(ewma) = ewma {
                tel.backfill_decision("pipeline.measured", &strategy.to_string(), ewma);
            }
        }
    }

    /// Whether the bucket containing `f` has measured every strategy
    /// (i.e. [`MeasuredStrategySearch::next_strategy`] now returns
    /// the measured argmin rather than a probe).
    pub fn converged(&self, f: f64) -> bool {
        let lo = self.bucket_lo(f);
        self.buckets
            .get(&fkey(lo))
            .is_some_and(|b| b.ewma.len() >= PipelineStrategy::all().len())
    }

    /// The measured argmin for `f`'s bucket, with its normalized EWMA
    /// seconds — `None` until the first measurement lands.
    pub fn measured_best(&self, f: f64) -> Option<(PipelineStrategy, Seconds)> {
        let lo = self.bucket_lo(f);
        self.buckets.get(&fkey(lo)).and_then(MeasuredBucket::best)
    }

    /// Number of buckets currently maintained.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_comm::World;

    fn model(world_size: usize) -> PipelineTimeModel {
        PipelineTimeModel::new(CollectiveTiming::new(World::azure(world_size)))
    }

    #[test]
    fn strategy_space_is_eight() {
        assert_eq!(PipelineStrategy::all().len(), 8);
    }

    /// The Figure 22 setting, where expert compute and All-to-All cost
    /// are comparable (V = 4,096 doubles compute per byte moved vs the
    /// Figure 23 dims) — the regime where overlap pays.
    fn figure22_dims() -> LayerDims {
        LayerDims {
            tokens: 4096,
            model_dim: 4096,
            hidden_dim: 4096,
            local_experts: 2,
            k: 2,
            capacity_factor: 1.0,
        }
    }

    #[test]
    fn pipelining_helps_when_comm_and_compute_are_comparable() {
        let m = model(64);
        let dims = figure22_dims();
        let d1 = m.step_time(
            &dims,
            PipelineStrategy {
                algo: AllToAllAlgo::Linear,
                degree: 1,
            },
        );
        let best = PipelineStrategy::all()
            .into_iter()
            .map(|s| m.step_time(&dims, s))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < d1,
            "some overlap strategy must beat no-overlap: {best} vs {d1}"
        );
        // And a genuinely overlapped (degree > 1) strategy must beat
        // its own degree-1 variant for at least one algorithm.
        let overlapped_wins = AllToAllAlgo::ALL.iter().any(|&algo| {
            let base = m.step_time(&dims, PipelineStrategy { algo, degree: 1 });
            [2usize, 4, 8]
                .iter()
                .any(|&d| m.step_time(&dims, PipelineStrategy { algo, degree: d }) < base)
        });
        assert!(
            overlapped_wins,
            "overlap must pay somewhere in the Figure 22 regime"
        );
    }

    #[test]
    fn optimal_strategy_depends_on_scale() {
        // Figure 5: the optimum shifts across scales. At small scale
        // with large messages, linear is competitive; at 2,048 GPUs the
        // payload chunks are tiny and 2DH must win.
        let dims = LayerDims::figure23();
        let (best_big, _) = model(2048).best_strategy(&dims);
        assert_eq!(
            best_big.algo,
            AllToAllAlgo::TwoDh,
            "2DH must win at 2,048 GPUs"
        );
        let mut small = dims;
        small.tokens = 65536; // huge per-GPU payload at 16 GPUs
        let (best_small, _) = model(16).best_strategy(&small);
        assert_eq!(
            best_small.algo,
            AllToAllAlgo::Linear,
            "linear must win for fat messages at 16 GPUs"
        );
    }

    #[test]
    fn degree_is_a_real_tradeoff() {
        // Very small payloads: chunking costs α per chunk and message
        // efficiency; degree 1 or 2 should beat degree 8.
        let m = model(64);
        let mut dims = LayerDims::figure23();
        dims.tokens = 256;
        let t1 = m.step_time(
            &dims,
            PipelineStrategy {
                algo: AllToAllAlgo::Linear,
                degree: 1,
            },
        );
        let t8 = m.step_time(
            &dims,
            PipelineStrategy {
                algo: AllToAllAlgo::Linear,
                degree: 8,
            },
        );
        assert!(t1 < t8, "tiny payload: d1 {t1} must beat d8 {t8}");
    }

    #[test]
    fn flexible_layout_pays_off_at_scale() {
        let dims = LayerDims::figure23();
        let mut flex = model(2048);
        flex.flexible_layout = true;
        let mut rigid = model(2048);
        rigid.flexible_layout = false;
        let s = PipelineStrategy::baseline();
        let tf = flex.step_time(&dims, s);
        let tr = rigid.step_time(&dims, s);
        assert!(
            tr > tf,
            "rigid {tr} must be slower than flexible {tf} at 2,048 GPUs"
        );
        // And the gap shrinks at small scale.
        let mut flex16 = model(16);
        flex16.flexible_layout = true;
        let mut rigid16 = model(16);
        rigid16.flexible_layout = false;
        let gap_small = rigid16.step_time(&dims, s) / flex16.step_time(&dims, s);
        let gap_big = tr / tf;
        assert!(gap_big > gap_small, "layout gap must grow with scale");
    }

    #[test]
    fn msccl_with_protocol_choice_beats_ncclapi_2dh() {
        let m = model(256);
        let dims = LayerDims::figure23();
        let nccl = m.step_time(
            &dims,
            PipelineStrategy {
                algo: AllToAllAlgo::TwoDh,
                degree: 2,
            },
        );
        let msccl = m
            .two_dh_msccl_time(&dims, 2, Protocol::Simple)
            .min(m.two_dh_msccl_time(&dims, 2, Protocol::Ll128));
        assert!(msccl < nccl);
    }

    #[test]
    fn compute_scale_reprices_the_strategy_search() {
        // SIMD-accelerated experts shrink compute relative to comm;
        // the modeled optimum must move for some workload in the
        // Figure 22/23 family (typically to a lower overlap degree —
        // there is less compute left to hide the All-to-All behind).
        let base = model(64);
        let fast = model(64).with_compute_scale(0.25);
        let mut flipped = None;
        'outer: for tokens in [256usize, 1024, 4096, 16384, 65536] {
            for hidden in [1024usize, 2048, 4096, 8192] {
                let dims = LayerDims {
                    tokens,
                    model_dim: 2048,
                    hidden_dim: hidden,
                    local_experts: 2,
                    k: 2,
                    capacity_factor: 1.0,
                };
                let (b, _) = base.best_strategy(&dims);
                let (f, _) = fast.best_strategy(&dims);
                if b != f {
                    flipped = Some((dims, b, f));
                    break 'outer;
                }
            }
        }
        let (dims, slow_best, fast_best) =
            flipped.expect("4x faster compute must re-rank some strategy");
        assert_ne!(slow_best, fast_best);
        // Sanity: the scaled model still prices the scaled winner best.
        let (again, _) = fast.best_strategy(&dims);
        assert_eq!(again, fast_best);
    }

    #[test]
    fn pipeline_decision_records_carry_precision() {
        let m = model(64).with_precision(tutel_tensor::Precision::Bf16);
        let tel = tutel_obs::Telemetry::enabled();
        let _ = m.best_strategy_observed(&figure22_dims(), &tel);
        let decisions = tel.decisions();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].precision.as_deref(), Some("bf16"));
    }

    // --- Algorithm 2 ---

    #[test]
    fn search_explores_each_strategy_once_per_bucket() {
        let mut search = OnlineStrategySearch::new(1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..PipelineStrategy::all().len() {
            let s = search.next_strategy(2.0);
            assert!(seen.insert(s), "strategy {s} repeated during exploration");
            search.record(2.0, s, 1.0);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn search_converges_to_oracle_within_a_bucket() {
        let mut search = OnlineStrategySearch::new(1.0);
        let oracle = |s: PipelineStrategy| {
            if s.algo == AllToAllAlgo::TwoDh && s.degree == 2 {
                1.0
            } else {
                2.0 + s.degree as f64
            }
        };
        for _ in 0..16 {
            let s = search.next_strategy(3.1);
            search.record(3.1, s, oracle(s));
        }
        let s = search.next_strategy(3.1);
        assert_eq!(
            s,
            PipelineStrategy {
                algo: AllToAllAlgo::TwoDh,
                degree: 2
            }
        );
    }

    #[test]
    fn close_factors_share_a_bucket_far_ones_do_not() {
        let mut search = OnlineStrategySearch::new(1.0);
        let s = search.next_strategy(1.0);
        search.record(1.0, s, 1.0);
        search.next_strategy(1.5);
        assert_eq!(
            search.num_buckets(),
            1,
            "1.0 and 1.5 share a bucket of length 1"
        );
        search.next_strategy(4.0);
        assert_eq!(search.num_buckets(), 2, "4.0 starts a new bucket");
        assert_eq!(search.known_factors(), 3);
    }

    #[test]
    fn bucket_sharing_transfers_measurements() {
        // Measure all strategies at f = 1.0; then f = 1.4 (same bucket)
        // should immediately return the bucket best instead of
        // exploring from scratch.
        let mut search = OnlineStrategySearch::new(1.0);
        let oracle = |s: PipelineStrategy| if s.degree == 4 { 0.5 } else { 1.5 };
        for _ in 0..8 {
            let s = search.next_strategy(1.0);
            search.record(1.0, s, oracle(s));
        }
        let s = search.next_strategy(1.4);
        assert_eq!(
            s.degree, 4,
            "bucket must transfer the f=1.0 optimum to f=1.4"
        );
    }

    #[test]
    fn distant_buckets_explore_independently() {
        let mut search = OnlineStrategySearch::new(2.0);
        // Bucket [1.0, 3.0] converges on degree 8...
        for _ in 0..8 {
            let s = search.next_strategy(1.0);
            search.record(1.0, s, if s.degree == 8 { 0.1 } else { 1.0 });
        }
        assert_eq!(search.next_strategy(1.0).degree, 8);
        // ...while f = 5.0 opens a fresh bucket, explores on its own,
        // and converges to its own optimum.
        for _ in 0..8 {
            let s = search.next_strategy(5.0);
            search.record(5.0, s, if s.degree == 1 { 0.05 } else { 0.9 });
        }
        assert_eq!(search.num_buckets(), 2);
        assert_eq!(search.next_strategy(5.0).degree, 1);
        // The first bucket's knowledge is unaffected.
        assert_eq!(search.next_strategy(1.0).degree, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_bucket_length() {
        OnlineStrategySearch::new(0.0);
    }

    // --- Measured search ---

    #[test]
    fn measured_search_explores_prior_cheapest_first() {
        let m = model(64);
        let dims = figure22_dims();
        let mut search = MeasuredStrategySearch::new(0.5, m);
        let first = search.next_strategy(&dims);
        let (model_best, _) = m.best_strategy(&dims);
        assert_eq!(
            first, model_best,
            "the first probe must be the model's favorite"
        );
    }

    #[test]
    fn measured_search_ranks_by_measurement_not_model() {
        // Feed measurements that *disagree* with the model: the
        // model's worst strategy measures fastest. The converged
        // choice must follow the measurements.
        let m = model(64);
        let dims = figure22_dims();
        let f = dims.capacity_factor;
        let mut search = MeasuredStrategySearch::new(0.5, m);
        let measured_oracle = |s: PipelineStrategy| {
            if s.algo == AllToAllAlgo::Linear && s.degree == 8 {
                0.001
            } else {
                0.010 + s.degree as f64 * 1e-4
            }
        };
        for _ in 0..PipelineStrategy::all().len() {
            let s = search.next_strategy(&dims);
            assert!(!search.converged(f));
            search.record(f, s, measured_oracle(s));
        }
        assert!(search.converged(f));
        let chosen = search.next_strategy(&dims);
        assert_eq!(
            chosen,
            PipelineStrategy {
                algo: AllToAllAlgo::Linear,
                degree: 8
            },
            "measured argmin must win even against the model"
        );
        let (best, t) = search.measured_best(f).expect("converged");
        assert_eq!(best, chosen);
        assert!(t > 0.0);
    }

    #[test]
    fn measured_search_ewma_tracks_drift() {
        let m = model(64);
        let dims = figure22_dims();
        let f = dims.capacity_factor;
        let mut search = MeasuredStrategySearch::new(0.5, m).with_alpha(0.5);
        let a = PipelineStrategy::baseline();
        search.record(f, a, 1.0);
        search.record(f, a, 2.0);
        let (_, t) = search.measured_best(f).expect("one strategy measured");
        assert!(
            (t - 1.5).abs() < 1e-12,
            "EWMA(α=0.5) of [1, 2] is 1.5, got {t}"
        );
    }

    #[test]
    fn measured_search_buckets_share_fixed_grid_cells() {
        let m = model(64);
        let mut dims = figure22_dims();
        let mut search = MeasuredStrategySearch::new(1.0, m);
        // 1.1 and 1.9 share cell [1, 2); 2.1 opens a new one.
        dims.capacity_factor = 1.1;
        let probe = search.next_strategy(&dims);
        search.record(1.1, probe, 1.0);
        dims.capacity_factor = 1.9;
        let _ = search.next_strategy(&dims);
        assert_eq!(search.num_buckets(), 1);
        dims.capacity_factor = 2.1;
        let _ = search.next_strategy(&dims);
        assert_eq!(search.num_buckets(), 2);
    }

    #[test]
    fn measured_decision_carries_measured_vs_predicted() {
        let m = model(64);
        let dims = figure22_dims();
        let f = dims.capacity_factor;
        let mut search = MeasuredStrategySearch::new(0.5, m);
        for _ in 0..PipelineStrategy::all().len() {
            let s = search.next_strategy(&dims);
            search.record(f, s, 0.003);
        }
        let tel = tutel_obs::Telemetry::enabled();
        let chosen = search.next_strategy_observed(&dims, &tel);
        let decisions = tel.decisions();
        let rec = decisions
            .iter()
            .find(|d| d.kind == "pipeline.measured")
            .expect("audit record emitted");
        assert_eq!(rec.chosen, chosen.to_string());
        assert_eq!(rec.candidates.len(), 8, "every measured strategy listed");
        assert!(rec.predicted_s.is_some(), "model prediction attached");
        assert!(rec.measured_s.is_some(), "measured EWMA attached");
        // The audit log's own invariant: chosen == measured argmin.
        assert_eq!(rec.candidates[0].0, rec.chosen);
    }

    #[test]
    fn measured_decision_backfills_and_attributes_cause() {
        let m = model(64);
        let dims = figure22_dims();
        let f = dims.capacity_factor;
        let mut search = MeasuredStrategySearch::new(0.5, m);
        let tel = tutel_obs::Telemetry::enabled();

        // First probe: no EWMA exists yet, so the record is emitted
        // with measured_s = None...
        let s0 = search.next_strategy_observed(&dims, &tel);
        assert!(tel.decisions()[0].measured_s.is_none());
        // ...until the executed iteration reports back and backfills.
        search.record_observed(f, s0, 0.004, &tel);
        let backfilled = tel.decisions()[0]
            .measured_s
            .expect("record_observed backfills measured_s");
        assert!(backfilled > 0.0);

        // An attributed cause rides the next decision record, once.
        search.attribute("straggler: rank 2");
        let _ = search.next_strategy_observed(&dims, &tel);
        let decisions = tel.decisions();
        assert_eq!(
            decisions[1].cause.as_deref(),
            Some("straggler: rank 2"),
            "attributed cause lands on the next record"
        );
        let _ = search.next_strategy_observed(&dims, &tel);
        assert!(
            tel.decisions()[2].cause.is_none(),
            "cause is consumed, not sticky"
        );
    }
}
