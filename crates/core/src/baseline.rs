//! The Fairseq/GShard-style baseline MoE layer: identical computation
//! logic (Tutel keeps GShard's algorithm, Section 6), implemented with
//! the *dense* einsum encode/decode of Figure 18a.
//!
//! Used for (a) numerical-parity tests against [`crate::MoeLayer`] and
//! (b) the baseline rows of every speed benchmark.

use tutel_experts::ExpertsBlock;
use tutel_gate::{aux_loss, route, LinearRouter, Router};
use tutel_kernels::DenseCombine;
use tutel_tensor::{Rng, Tensor, TensorError};

use crate::{MoeConfig, MoeOutput};

/// The dense-path baseline layer (inference only — it exists to compare
/// outputs and costs, not to be trained).
pub struct FairseqMoeLayer {
    cfg: MoeConfig,
    router: LinearRouter,
    experts: ExpertsBlock,
}

impl FairseqMoeLayer {
    /// Creates a baseline layer with its own random initialization.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] for inconsistent configs.
    pub fn new(cfg: &MoeConfig, rng: &mut Rng) -> Result<Self, TensorError> {
        if cfg.top_k == 0 || cfg.top_k > cfg.experts {
            return Err(TensorError::InvalidArgument(format!(
                "top_k {} out of range for {} experts",
                cfg.top_k, cfg.experts
            )));
        }
        Ok(FairseqMoeLayer {
            cfg: *cfg,
            router: LinearRouter::new(cfg.model_dim, cfg.experts, rng),
            experts: ExpertsBlock::new(cfg.experts, cfg.model_dim, cfg.hidden_dim, rng),
        })
    }

    /// Builds a baseline that shares parameters with a Tutel layer
    /// created from the *same seed* — both constructors draw the router
    /// first, then the experts, so seeding an `Rng` identically yields
    /// bit-identical parameters. (Used by parity tests.)
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] for inconsistent configs.
    pub fn new_seeded(cfg: &MoeConfig, seed: u64) -> Result<Self, TensorError> {
        let mut rng = Rng::seed(seed);
        FairseqMoeLayer::new(cfg, &mut rng)
    }

    /// Inference forward pass via the dense einsum path.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn infer(&self, x: &Tensor) -> Result<MoeOutput, TensorError> {
        let logits = self.router.logits(x)?;
        let probs = logits.softmax_last();
        let routing = route(&probs, &self.cfg.route_config())?;
        let combine = DenseCombine::new(&routing);
        let dispatched = combine.encode(x)?;
        let expert_out = self.experts.infer(&dispatched)?;
        let output = combine.decode(&expert_out)?;
        let aux = aux_loss(&probs, &routing)?;
        Ok(MoeOutput {
            output,
            aux_loss: aux,
            capacity_factor: routing.capacity_factor,
            needed_factor: routing.needed_factor,
            survival_rate: routing.survival_rate(),
            expert_load: routing.counts.clone(),
            dropped: routing.dropped(),
        })
    }
}

impl std::fmt::Debug for FairseqMoeLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairseqMoeLayer")
            .field("experts", &self.cfg.experts)
            .field("top_k", &self.cfg.top_k)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoeLayer;

    #[test]
    fn fairseq_and_tutel_layers_are_numerically_equivalent() {
        // Same seed → same parameters → outputs must match to fp noise:
        // Tutel keeps GShard's computation logic exactly (Section 6).
        for (k, seed) in [(1usize, 11u64), (2, 12), (3, 13)] {
            let cfg = MoeConfig::new(8, 16, 4).with_top_k(k);
            let baseline = FairseqMoeLayer::new_seeded(&cfg, seed).unwrap();
            let mut rng = Rng::seed(seed);
            let tutel = MoeLayer::new(&cfg, &mut rng).unwrap();
            let x = rng.normal_tensor(&[32, 8], 0.0, 1.0);
            let a = baseline.infer(&x).unwrap();
            let b = tutel.infer(&x).unwrap();
            let diff = a.output.sub(&b.output).unwrap().max_abs();
            assert!(diff < 1e-4, "k={k}: max diff {diff}");
            assert!((a.aux_loss - b.aux_loss).abs() < 1e-4);
            assert_eq!(a.needed_factor, b.needed_factor);
        }
    }

    #[test]
    fn equivalence_holds_under_capacity_pressure() {
        let cfg = MoeConfig::new(8, 16, 4).with_capacity_factor(0.5);
        let baseline = FairseqMoeLayer::new_seeded(&cfg, 21).unwrap();
        let mut rng = Rng::seed(21);
        let tutel = MoeLayer::new(&cfg, &mut rng).unwrap();
        let x = rng.normal_tensor(&[64, 8], 0.0, 1.0);
        let a = baseline.infer(&x).unwrap();
        let b = tutel.infer(&x).unwrap();
        assert!(a.survival_rate < 1.0, "fixture must actually drop tokens");
        let diff = a.output.sub(&b.output).unwrap().max_abs();
        assert!(diff < 1e-4, "max diff {diff}");
    }
}
