//! The single-MoE-layer time simulator: Tutel's feature ladder
//! (Figure 23) over the calibrated cluster model.
//!
//! Each [`FeatureSet`] enables a subset of Tutel's optimizations on top
//! of the Fairseq baseline, mirroring the curves of Figure 23:
//!
//! 1. baseline (dense kernels, linear All-to-All, rigid layout, no
//!    overlap);
//! 2. `+` Tutel kernels;
//! 3. `+` adaptive pipelining (joint algorithm × degree search);
//! 4. `+` Flexible All-to-All;
//! 5. `+` adaptive parallelism switching.

use tutel_comm::{A2aPhase, CollectiveTiming};
use tutel_experts::{ExpertPlacement, InlineParallelismRouter, MoeDims, Parallelism};
use tutel_simgpu::{Protocol, Seconds};

use crate::pipeline::{LayerDims, PipelineStrategy, PipelineTimeModel};

/// Which Tutel optimizations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureSet {
    /// Sparse fast encode/decode instead of the dense einsum.
    pub tutel_kernels: bool,
    /// Online (algorithm × degree) pipelining search instead of static
    /// (Linear, degree 1).
    pub adaptive_pipelining: bool,
    /// Flexible All-to-All layout instead of the rigid one.
    pub flexible_a2a: bool,
    /// Inline parallelism router (P1/P2 switching).
    pub adaptive_parallelism: bool,
}

impl FeatureSet {
    /// Curve (1): the Fairseq baseline.
    pub fn fairseq_baseline() -> Self {
        FeatureSet::default()
    }

    /// Curve (2): Tutel kernels + linear All-to-All.
    pub fn kernels() -> Self {
        FeatureSet {
            tutel_kernels: true,
            ..FeatureSet::default()
        }
    }

    /// Curve (3): kernels + adaptive pipelining.
    pub fn kernels_pipelining() -> Self {
        FeatureSet {
            adaptive_pipelining: true,
            ..FeatureSet::kernels()
        }
    }

    /// Curve (4): kernels + adaptive pipelining + Flexible All-to-All.
    pub fn kernels_pipelining_flex() -> Self {
        FeatureSet {
            flexible_a2a: true,
            ..FeatureSet::kernels_pipelining()
        }
    }

    /// Curve (5): everything.
    pub fn full() -> Self {
        FeatureSet {
            adaptive_parallelism: true,
            ..FeatureSet::kernels_pipelining_flex()
        }
    }

    /// The Figure 23 ladder, in order.
    pub fn ladder() -> [(&'static str, FeatureSet); 5] {
        [
            ("Fairseq baseline", FeatureSet::fairseq_baseline()),
            ("+ Tutel kernels", FeatureSet::kernels()),
            ("+ adaptive pipelining", FeatureSet::kernels_pipelining()),
            (
                "+ flexible All-to-All",
                FeatureSet::kernels_pipelining_flex(),
            ),
            ("+ adaptive parallelism", FeatureSet::full()),
        ]
    }
}

/// Simulates the per-iteration time of one MoE layer under a feature
/// set, on a given (simulated) cluster.
///
/// # Example
///
/// ```
/// use tutel::adaptive::{FeatureSet, MoeLayerSimulator};
/// use tutel::pipeline::LayerDims;
///
/// let sim = MoeLayerSimulator::azure(16);
/// let dims = LayerDims::figure23();
/// let base = sim.step_time(&dims, FeatureSet::fairseq_baseline());
/// let full = sim.step_time(&dims, FeatureSet::full());
/// assert!(base / full > 2.0, "Tutel must clearly beat Fairseq at 16 GPUs");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MoeLayerSimulator {
    timing: CollectiveTiming,
}

impl MoeLayerSimulator {
    /// Creates a simulator for an Azure NDv4-shaped cluster of
    /// `world_size` GPUs.
    ///
    /// # Panics
    ///
    /// Panics for invalid world sizes (see
    /// [`tutel_simgpu::Topology::azure_ndv4`]).
    pub fn azure(world_size: usize) -> Self {
        MoeLayerSimulator {
            timing: CollectiveTiming::new(tutel_comm::World::azure(world_size)),
        }
    }

    /// Creates a simulator over an explicit pricer.
    pub fn new(timing: CollectiveTiming) -> Self {
        MoeLayerSimulator { timing }
    }

    /// The collective pricer.
    pub fn timing(&self) -> &CollectiveTiming {
        &self.timing
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.timing.world().size()
    }

    /// Per-iteration time of the MoE layer under `features`.
    pub fn step_time(&self, dims: &LayerDims, features: FeatureSet) -> Seconds {
        let mut model = PipelineTimeModel::new(self.timing);
        model.sparse_kernels = features.tutel_kernels;
        model.flexible_layout = features.flexible_a2a;
        let (strategy, _) = if features.adaptive_pipelining {
            model.best_strategy(dims)
        } else {
            (PipelineStrategy::baseline(), 0.0)
        };
        let base = model.step_time(dims, strategy);
        if features.adaptive_parallelism {
            base - self.parallelism_saving(dims)
        } else {
            base
        }
    }

    /// [`MoeLayerSimulator::step_time`] that also threads a telemetry
    /// handle through the strategy search, so every simulated iteration
    /// with `adaptive_pipelining` leaves an audit record (all eight
    /// candidate strategies, modeled costs, and the winner) in `tel`.
    pub fn step_time_observed(
        &self,
        dims: &LayerDims,
        features: FeatureSet,
        tel: &tutel_obs::Telemetry,
    ) -> Seconds {
        let mut model = PipelineTimeModel::new(self.timing);
        model.sparse_kernels = features.tutel_kernels;
        model.flexible_layout = features.flexible_a2a;
        let (strategy, _) = if features.adaptive_pipelining {
            model.best_strategy_observed(dims, tel)
        } else {
            (PipelineStrategy::baseline(), 0.0)
        };
        let base = model.step_time(dims, strategy);
        if tel.is_enabled() {
            // Record each priced All-to-All chunk under its phase —
            // dispatch and combine are separate collectives in the
            // executed schedule and must not share a telemetry bucket.
            let d = strategy.degree.max(1);
            let chunk_bytes = dims.a2a_bytes() / d as f64;
            for phase in [A2aPhase::Dispatch, A2aPhase::Combine] {
                for _ in 0..d {
                    self.timing.all_to_all_time_observed(
                        phase,
                        strategy.algo,
                        chunk_bytes,
                        Protocol::Simple,
                        tel,
                    );
                }
            }
        }
        if features.adaptive_parallelism {
            base - self.parallelism_saving(dims)
        } else {
            base
        }
    }

    /// Per-iteration time under an explicit pipelining strategy
    /// (for the Table 7 static-strategy comparisons).
    pub fn step_time_with_strategy(
        &self,
        dims: &LayerDims,
        features: FeatureSet,
        strategy: PipelineStrategy,
    ) -> Seconds {
        let mut model = PipelineTimeModel::new(self.timing);
        model.sparse_kernels = features.tutel_kernels;
        model.flexible_layout = features.flexible_a2a;
        model.step_time(dims, strategy)
    }

    /// Computation-only overhead (curve (6) of Figure 23): gating,
    /// encode/decode, and expert GEMM — no communication.
    pub fn computation_only_time(&self, dims: &LayerDims) -> Seconds {
        let w = self.world_size();
        let gpu = self.timing.world().gpu();
        let e_global = w * dims.local_experts;
        let rows = dims.expert_rows() / dims.local_experts.max(1);
        gpu.gate_time(dims.tokens, e_global)
            + 2.0 * gpu.sparse_encode_time(dims.tokens, dims.k, dims.model_dim)
            + gpu.gemm_time(dims.local_experts, rows, dims.model_dim, dims.hidden_dim)
            + gpu.gemm_time(dims.local_experts, rows, dims.hidden_dim, dims.model_dim)
    }

    /// Per-iteration time under an explicit expert placement
    /// (`count_per_node`, Figure 17). When the placement replicates or
    /// shards experts (`E < W`), the parallelism choice carries a real
    /// cost: without `adaptive_parallelism` the layer statically runs
    /// P1 (Expert+Data, the frameworks' default) and pays its parameter
    /// collectives; with it, the inline router picks the cheaper of
    /// P1/P2 each iteration.
    ///
    /// # Panics
    ///
    /// Panics if the placement's world size differs from the
    /// simulator's.
    pub fn step_time_with_placement(
        &self,
        dims: &LayerDims,
        features: FeatureSet,
        placement: &ExpertPlacement,
    ) -> Seconds {
        let w = self.world_size();
        assert_eq!(placement.world(), w, "placement world mismatch");
        let mut model = PipelineTimeModel::new(self.timing);
        model.sparse_kernels = features.tutel_kernels;
        model.flexible_layout = features.flexible_a2a;
        let (strategy, _) = if features.adaptive_pipelining {
            model.best_strategy(dims)
        } else {
            (PipelineStrategy::baseline(), 0.0)
        };
        let base = model.step_time(dims, strategy);
        let moe_dims = MoeDims {
            world: w,
            global_experts: placement.global_experts(),
            tokens: dims.tokens,
            k: dims.k,
            capacity_factor: dims.capacity_factor,
            model_dim: dims.model_dim,
            hidden_dim: dims.hidden_dim,
            weight_precision: tutel_tensor::Precision::F32,
        };
        if moe_dims.shards() <= 1 {
            return base;
        }
        let router = InlineParallelismRouter::new(self.timing);
        // The pipeline model already prices the unreplicated token
        // path; the placement adds each strategy's *surcharge* over it
        // (P1: parameter collectives; P2: token replication + local
        // repeat/reduce).
        let token_baseline = 4.0
            * self
                .timing
                .linear_time(moe_dims.token_a2a_bytes_p1(), Protocol::Simple);
        let surcharge = |p: Parallelism| (router.cost_of(p, &moe_dims) - token_baseline).max(0.0);
        let extra = if features.adaptive_parallelism {
            surcharge(Parallelism::P1).min(surcharge(Parallelism::P2))
        } else {
            surcharge(Parallelism::P1)
        };
        base + extra
    }

    /// Communication saving from the inline parallelism router, when
    /// experts are replicated/sharded (`E < W`). Zero when every GPU
    /// owns whole, unreplicated experts (the Figure 23 setting).
    fn parallelism_saving(&self, dims: &LayerDims) -> Seconds {
        let w = self.world_size();
        let e_global = w * dims.local_experts;
        if e_global >= w {
            return 0.0;
        }
        let moe_dims = MoeDims {
            world: w,
            global_experts: e_global,
            tokens: dims.tokens,
            k: dims.k,
            capacity_factor: dims.capacity_factor,
            model_dim: dims.model_dim,
            hidden_dim: dims.hidden_dim,
            weight_precision: tutel_tensor::Precision::F32,
        };
        let router = InlineParallelismRouter::new(self.timing);
        let worst = router
            .cost_of(Parallelism::P1, &moe_dims)
            .max(router.cost_of(Parallelism::P2, &moe_dims));
        let best = router
            .cost_of(Parallelism::P1, &moe_dims)
            .min(router.cost_of(Parallelism::P2, &moe_dims));
        worst - best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotonically_non_worse() {
        for world in [16, 128, 2048] {
            let sim = MoeLayerSimulator::azure(world);
            let dims = LayerDims::figure23();
            let mut last = f64::INFINITY;
            for (name, fs) in FeatureSet::ladder() {
                let t = sim.step_time(&dims, fs);
                assert!(
                    t <= last * 1.0001,
                    "{name} at {world} GPUs regressed: {t} after {last}"
                );
                last = t;
            }
        }
    }

    #[test]
    fn figure23_anchor_speedups() {
        // Paper: 4.96× on 16 GPUs, 5.75× on 2,048 GPUs (full vs
        // Fairseq). Require the right ballpark and ordering.
        let dims = LayerDims::figure23();
        let speedup = |w: usize| {
            let sim = MoeLayerSimulator::azure(w);
            sim.step_time(&dims, FeatureSet::fairseq_baseline())
                / sim.step_time(&dims, FeatureSet::full())
        };
        let s16 = speedup(16);
        let s2048 = speedup(2048);
        assert!(s16 > 2.0 && s16 < 12.0, "16-GPU speedup {s16}");
        assert!(s2048 > 2.0 && s2048 < 15.0, "2,048-GPU speedup {s2048}");
    }

    #[test]
    fn kernel_gain_fades_with_scale() {
        // Figure 23 curve (2): 3.52× at 16 GPUs, 1.04× at 2,048 (the
        // layer becomes All-to-All-bound).
        let dims = LayerDims::figure23();
        let gain = |w: usize| {
            let sim = MoeLayerSimulator::azure(w);
            sim.step_time(&dims, FeatureSet::fairseq_baseline())
                / sim.step_time(&dims, FeatureSet::kernels())
        };
        let g16 = gain(16);
        let g2048 = gain(2048);
        assert!(g16 > 2.0, "kernel gain at 16 GPUs {g16}");
        assert!(g2048 < 1.5, "kernel gain at 2,048 GPUs {g2048}");
        assert!(g16 > g2048);
    }

    #[test]
    fn pipelining_gain_grows_with_scale() {
        // Figure 23 curve (3): adaptive pipelining (2DH at scale)
        // delivers its big win at 2,048 GPUs (4.25× over curve 2).
        let dims = LayerDims::figure23();
        let gain = |w: usize| {
            let sim = MoeLayerSimulator::azure(w);
            sim.step_time(&dims, FeatureSet::kernels())
                / sim.step_time(&dims, FeatureSet::kernels_pipelining())
        };
        assert!(
            gain(2048) > gain(16),
            "pipelining gain must grow with scale"
        );
        assert!(gain(2048) > 1.5, "2,048-GPU pipelining gain {}", gain(2048));
    }

    #[test]
    fn computation_overhead_grows_slowly_with_scale() {
        // Figure 23 curve (6): compute overhead grows slightly with W
        // because gating scales with the number of global experts.
        let dims = LayerDims::figure23();
        let c16 = MoeLayerSimulator::azure(16).computation_only_time(&dims);
        let c2048 = MoeLayerSimulator::azure(2048).computation_only_time(&dims);
        assert!(c2048 > c16, "gate cost grows with E");
        assert!(c2048 < 3.0 * c16, "but only mildly: {c16} → {c2048}");
    }

    #[test]
    fn placement_aware_simulation_rewards_adaptivity_under_replication() {
        // count_per_node = -4: each expert sharded over 4 GPUs
        // (E = W/4) — the regime where curve (4) and curve (5) of
        // Figure 23 genuinely diverge.
        let w = 64;
        let sim = MoeLayerSimulator::azure(w);
        let placement = ExpertPlacement::from_count_per_node(-4, w).unwrap();
        let mut dims = LayerDims::figure23();
        dims.local_experts = 1;
        let static_p1 =
            sim.step_time_with_placement(&dims, FeatureSet::kernels_pipelining_flex(), &placement);
        let adaptive = sim.step_time_with_placement(&dims, FeatureSet::full(), &placement);
        assert!(
            adaptive <= static_p1,
            "adaptive {adaptive} vs static {static_p1}"
        );
        // And both exceed the unreplicated base (the surcharge is real).
        let unreplicated = sim.step_time(&dims, FeatureSet::kernels_pipelining_flex());
        assert!(static_p1 > unreplicated);
        // Small f with a fat expert (V = 16K: expensive parameters,
        // cheap tokens) favors P2 strongly → the adaptive gap must
        // open (the Figure 3 regime).
        dims.capacity_factor = 0.25;
        dims.hidden_dim = 16384;
        let s =
            sim.step_time_with_placement(&dims, FeatureSet::kernels_pipelining_flex(), &placement);
        let a = sim.step_time_with_placement(&dims, FeatureSet::full(), &placement);
        assert!(a < s, "adaptive must win at small f: {a} vs {s}");
    }

    #[test]
    fn observed_step_prices_dispatch_and_combine_separately() {
        let sim = MoeLayerSimulator::azure(64);
        let dims = LayerDims::figure23();
        let tel = tutel_obs::Telemetry::enabled();
        let t = sim.step_time_observed(&dims, FeatureSet::full(), &tel);
        assert_eq!(t, sim.step_time(&dims, FeatureSet::full()));
        let ops: Vec<String> = tel
            .events()
            .into_iter()
            .filter_map(|e| match e {
                tutel_obs::Event::Collective(c) => Some(c.op),
                _ => None,
            })
            .collect();
        let dispatches = ops.iter().filter(|o| *o == "a2a_dispatch").count();
        let combines = ops.iter().filter(|o| *o == "a2a_combine").count();
        assert!(dispatches > 0, "dispatch leg must be recorded: {ops:?}");
        assert_eq!(dispatches, combines, "one combine chunk per dispatch chunk");
        assert!(
            !ops.iter().any(|o| o == "all_to_all"),
            "no leg may fall into the old summed bucket: {ops:?}"
        );
    }

    #[test]
    fn parallelism_saving_only_when_replicated() {
        let sim = MoeLayerSimulator::azure(16);
        // ΔE = 2: E = 32 > W → no replication → curves 4 and 5 match.
        let dims = LayerDims::figure23();
        assert_eq!(
            sim.step_time(&dims, FeatureSet::kernels_pipelining_flex()),
            sim.step_time(&dims, FeatureSet::full())
        );
    }
}
