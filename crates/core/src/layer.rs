//! The Tutel MoE layer: gating → fast encode → experts → fast decode,
//! fully differentiable.
//!
//! This is the *functional* layer used for end-to-end training and for
//! parity tests against the Fairseq baseline. Distribution across
//! simulated GPUs changes only the layer's (simulated) execution time —
//! priced by [`crate::adaptive`] — never its math, which is the whole
//! point of Tutel's "optimizations are transparent to model
//! developers".

use tutel_experts::ExpertsBlock;
use tutel_gate::{
    aux_loss, aux_loss_grad, observe_routing, route, CapacityPolicy, CosineRouter, HashRouter,
    LinearRouter, RaggedRouting, Router, Routing,
};
use tutel_kernels::{
    fast_decode_backward, fast_decode_observed, fast_encode_backward, fast_encode_observed,
    ragged_decode_backward, ragged_decode_observed, ragged_encode_backward, ragged_encode_observed,
};
use tutel_obs::Telemetry;
use tutel_tensor::{scratch, Rng, Tensor, TensorError};

use crate::checkpoint::{RestoreError, StateDict};
use crate::{MoeConfig, RouterKind};

/// Output of one MoE layer forward pass.
#[derive(Debug, Clone)]
pub struct MoeOutput {
    /// Layer output `(T, M)`.
    pub output: Tensor,
    /// Auxiliary load-balancing loss (scalar).
    pub aux_loss: f32,
    /// The capacity factor the layer actually used this iteration.
    pub capacity_factor: f64,
    /// The minimum factor that would have dropped no token — the
    /// Figure 1 telemetry.
    pub needed_factor: f64,
    /// Fraction of (token, expert) assignments that survived the
    /// capacity clamp.
    pub survival_rate: f64,
    /// Post-capacity token count per expert.
    pub expert_load: Vec<usize>,
    /// Token-expert assignments dropped by the capacity clamp.
    pub dropped: usize,
}

enum AnyRouter {
    Linear(LinearRouter),
    Cosine(CosineRouter),
    Hash(HashRouter),
}

impl AnyRouter {
    fn as_dyn(&self) -> &dyn Router {
        match self {
            AnyRouter::Linear(r) => r,
            AnyRouter::Cosine(r) => r,
            AnyRouter::Hash(r) => r,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn Router {
        match self {
            AnyRouter::Linear(r) => r,
            AnyRouter::Cosine(r) => r,
            AnyRouter::Hash(r) => r,
        }
    }
}

struct SavedForward {
    x: Tensor,
    probs: Tensor,
    routing: Routing,
    /// Padded `(E, C, M)` expert outputs, or packed `(R, M)` rows when
    /// `ragged` is set.
    expert_out: Tensor,
    /// Present iff the forward took the dropless grouped path; backward
    /// must then retrace it through the ragged kernels.
    ragged: Option<RaggedRouting>,
}

/// The Tutel MoE layer.
///
/// See the [crate-level docs](crate) for a quickstart. Supports
/// per-iteration `top_k` and capacity-factor overrides (top-ANY /
/// dynamic capacity), freezing (for the Table 10 fine-tuning strategy),
/// and both training (`forward`/`backward`/`step`) and inference
/// (`infer`) paths.
pub struct MoeLayer {
    cfg: MoeConfig,
    router: AnyRouter,
    experts: ExpertsBlock,
    saved: Option<SavedForward>,
    frozen: bool,
    obs: Telemetry,
}

impl MoeLayer {
    /// Creates a layer with randomly initialized router and experts.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the config is internally
    /// inconsistent (e.g. `top_k > experts`).
    pub fn new(cfg: &MoeConfig, rng: &mut Rng) -> Result<Self, TensorError> {
        if cfg.top_k == 0 || cfg.top_k > cfg.experts {
            return Err(TensorError::InvalidArgument(format!(
                "top_k {} out of range for {} experts",
                cfg.top_k, cfg.experts
            )));
        }
        let router = match cfg.router {
            RouterKind::Linear => {
                AnyRouter::Linear(LinearRouter::new(cfg.model_dim, cfg.experts, rng))
            }
            RouterKind::Cosine => AnyRouter::Cosine(CosineRouter::new(
                cfg.model_dim,
                cfg.cosine_proj_dim.min(cfg.model_dim),
                cfg.experts,
                rng,
            )),
            RouterKind::Hash => AnyRouter::Hash(HashRouter::new(cfg.experts)),
        };
        let experts = ExpertsBlock::new(cfg.experts, cfg.model_dim, cfg.hidden_dim, rng);
        Ok(MoeLayer {
            cfg: *cfg,
            router,
            experts,
            saved: None,
            frozen: false,
            obs: Telemetry::disabled(),
        })
    }

    /// Routes the layer's stage spans and gate statistics into `tel`
    /// (and through to its experts). Pass [`Telemetry::disabled`] to
    /// turn instrumentation back off.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.experts.set_telemetry(tel.clone());
        self.obs = tel;
    }

    /// The layer's configuration.
    pub fn config(&self) -> &MoeConfig {
        &self.cfg
    }

    /// Changes `top_k` for subsequent iterations (dynamic top-ANY).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `k` is out of range.
    pub fn set_top_k(&mut self, k: usize) -> Result<(), TensorError> {
        if k == 0 || k > self.cfg.experts {
            return Err(TensorError::InvalidArgument(format!(
                "top_k {k} out of range for {} experts",
                self.cfg.experts
            )));
        }
        self.cfg.top_k = k;
        Ok(())
    }

    /// Changes the capacity-factor argument (Figure 16 convention) for
    /// subsequent iterations.
    pub fn set_capacity_factor(&mut self, x: f64) {
        self.cfg.capacity_factor = x;
    }

    /// Freezes or unfreezes the layer's parameters (Table 10's "fixed"
    /// MoE fine-tuning: gradients still flow *through* the layer, but
    /// its own parameters stop updating).
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// Whether the layer is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Number of parameters (router excluded for hash).
    pub fn num_params(&self) -> usize {
        let router = match &self.router {
            AnyRouter::Linear(_) => self.cfg.model_dim * self.cfg.experts,
            AnyRouter::Cosine(_) => {
                self.cfg.model_dim * self.cfg.cosine_proj_dim.min(self.cfg.model_dim)
                    + self.cfg.experts * self.cfg.cosine_proj_dim.min(self.cfg.model_dim)
                    + 1
            }
            AnyRouter::Hash(_) => 0,
        };
        router + self.experts.num_params()
    }

    /// Training forward pass over `x (T, M)`, caching for backward.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Result<MoeOutput, TensorError> {
        let (out, saved) = self.forward_inner(x)?;
        self.saved = Some(saved);
        Ok(out)
    }

    /// Inference forward pass (no caching), with optional capacity
    /// override (the Table 12 "infer-f" knob).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn infer(&self, x: &Tensor) -> Result<MoeOutput, TensorError> {
        self.infer_with(x, self.cfg.capacity_factor)
    }

    /// Batch-invariant inference: routes **dropless**
    /// (`CapacityPolicy::AutoMin`), so a token's output is a function
    /// of its own row and the parameters alone — no special-case
    /// row handling anywhere, and in particular a batch of one token
    /// takes exactly the same kernel path (blocked GEMM, softmax,
    /// top-k, encode/FFN/decode) as a large batch and produces
    /// bitwise-identical rows. This is the path the serving engine
    /// builds its per-request differential oracle on.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn infer_dropless(&self, x: &Tensor) -> Result<MoeOutput, TensorError> {
        self.infer_with(x, 0.0)
    }

    /// Inference with an explicit capacity-factor argument.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn infer_with(&self, x: &Tensor, capacity_factor: f64) -> Result<MoeOutput, TensorError> {
        let _span = self.obs.span("moe.infer");
        let mut cfg = self.cfg;
        cfg.capacity_factor = capacity_factor;
        let (probs, routing) = {
            let _gate = self.obs.span("gate");
            let logits = self.router.as_dyn().logits(x)?;
            let probs = logits.softmax_last();
            let routing = route(&probs, &cfg.route_config())?;
            (probs, routing)
        };
        observe_routing(&routing, &self.obs);
        let output = if matches!(cfg.route_config().capacity, CapacityPolicy::AutoMin) {
            // Dropless: packed ragged bins + grouped GEMM, no padding.
            let ragged = RaggedRouting::from_routing(&routing);
            let packed = ragged_encode_observed(x, &routing, &ragged, &self.obs)?;
            let expert_out = self.experts.infer_grouped(&packed, &ragged.offsets)?;
            scratch::recycle(packed);
            let output =
                ragged_decode_observed(&expert_out, &routing, &ragged, x.dims()[0], &self.obs)?;
            scratch::recycle(expert_out);
            output
        } else {
            let dispatched = fast_encode_observed(x, &routing, &self.obs)?;
            let expert_out = self.experts.infer(&dispatched)?;
            scratch::recycle(dispatched);
            let output = fast_decode_observed(&expert_out, &routing, x.dims()[0], &self.obs)?;
            scratch::recycle(expert_out);
            output
        };
        let aux = aux_loss(&probs, &routing)?;
        self.obs.set_gauge("gate.aux_loss", aux as f64);
        Ok(MoeOutput {
            output,
            aux_loss: aux,
            capacity_factor: routing.capacity_factor,
            needed_factor: routing.needed_factor,
            survival_rate: routing.survival_rate(),
            expert_load: routing.counts.clone(),
            dropped: routing.dropped(),
        })
    }

    fn forward_inner(&mut self, x: &Tensor) -> Result<(MoeOutput, SavedForward), TensorError> {
        let _span = self.obs.span("moe.forward");
        let (probs, routing) = {
            let _gate = self.obs.span("gate");
            let logits = self.router.as_dyn().logits(x)?;
            let probs = logits.softmax_last();
            let routing = route(&probs, &self.cfg.route_config())?;
            (probs, routing)
        };
        observe_routing(&routing, &self.obs);
        let ragged = if matches!(self.cfg.route_config().capacity, CapacityPolicy::AutoMin) {
            Some(RaggedRouting::from_routing(&routing))
        } else {
            None
        };
        let (expert_out, output) = if let Some(rag) = &ragged {
            let packed = ragged_encode_observed(x, &routing, rag, &self.obs)?;
            let expert_out = self.experts.forward_grouped(&packed, &rag.offsets)?;
            scratch::recycle(packed);
            let output =
                ragged_decode_observed(&expert_out, &routing, rag, x.dims()[0], &self.obs)?;
            (expert_out, output)
        } else {
            let dispatched = fast_encode_observed(x, &routing, &self.obs)?;
            let expert_out = self.experts.forward(&dispatched)?;
            scratch::recycle(dispatched);
            let output = fast_decode_observed(&expert_out, &routing, x.dims()[0], &self.obs)?;
            (expert_out, output)
        };
        let aux = aux_loss(&probs, &routing)?;
        self.obs.set_gauge("gate.aux_loss", aux as f64);
        let out = MoeOutput {
            output,
            aux_loss: aux,
            capacity_factor: routing.capacity_factor,
            needed_factor: routing.needed_factor,
            survival_rate: routing.survival_rate(),
            expert_load: routing.counts.clone(),
            dropped: routing.dropped(),
        };
        let saved = SavedForward {
            x: x.clone(),
            probs,
            routing,
            expert_out,
            ragged,
        };
        Ok((out, saved))
    }

    /// Backward pass: consumes the cached forward, accumulates router
    /// and expert gradients (including the auxiliary-loss term), and
    /// returns `d_x (T, M)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if no forward is cached or shapes
    /// mismatch.
    // check:hot
    pub fn backward(&mut self, d_out: &Tensor) -> Result<Tensor, TensorError> {
        let _span = self.obs.span("moe.backward");
        let SavedForward {
            x,
            probs,
            routing,
            expert_out,
            ragged,
        } = self
            .saved
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("backward without forward".into()))?;
        let tokens = x.dims()[0];

        // Decode → experts → encode, retracing whichever path the
        // forward took. Gate-value gradients come out in the same
        // token/selection order either way.
        let (mut d_x, d_gates) = if let Some(rag) = &ragged {
            let (d_packed_out, d_gates) =
                ragged_decode_backward(d_out, &expert_out, &routing, rag)?;
            scratch::recycle(expert_out);
            let d_packed_in = self.experts.backward_grouped(&d_packed_out)?;
            scratch::recycle(d_packed_out);
            let d_x = ragged_encode_backward(&d_packed_in, &routing, rag, tokens)?;
            scratch::recycle(d_packed_in);
            (d_x, d_gates)
        } else {
            let (d_expert_out, d_gates) = fast_decode_backward(d_out, &expert_out, &routing)?;
            scratch::recycle(expert_out);
            let d_dispatched = self.experts.backward(&d_expert_out)?;
            scratch::recycle(d_expert_out);
            let d_x = fast_encode_backward(&d_dispatched, &routing, tokens)?;
            scratch::recycle(d_dispatched);
            (d_x, d_gates)
        };

        // Gate-value gradients → probability gradients. For k > 1 the
        // selected gates were normalized (g_i = v_i / Σv); chain
        // through that. For k = 1 the raw probability was the gate.
        let mut d_probs = scratch::zeroed(probs.dims());
        for (t, (experts, dg)) in routing.expert_of.iter().zip(&d_gates).enumerate() {
            if self.cfg.top_k > 1 {
                let vals: Vec<f32> = experts.iter().map(|&e| probs.at(&[t, e])).collect();
                let s: f32 = vals.iter().sum::<f32>().max(1e-9);
                let gates: Vec<f32> = vals.iter().map(|v| v / s).collect();
                let dot: f32 = dg.iter().zip(&gates).map(|(d, g)| d * g).sum();
                for (i, &e) in experts.iter().enumerate() {
                    d_probs.set(&[t, e], (dg[i] - dot) / s);
                }
            } else if let (Some(&e), Some(&d)) = (experts.first(), dg.first()) {
                d_probs.set(&[t, e], d);
            }
        }

        // Auxiliary loss gradient (straight-through on the fractions).
        let d_aux = aux_loss_grad(&probs, &routing)?;
        d_probs.axpy(self.cfg.aux_weight, &d_aux)?;
        scratch::recycle(d_aux);

        // Through softmax and the router.
        let d_logits = probs.softmax_last_backward(&d_probs)?;
        scratch::recycle(d_probs);
        scratch::recycle(probs);
        let d_x_router = self.router.as_dyn_mut().backward(&x, &d_logits)?;
        scratch::recycle(d_logits);
        scratch::recycle(x);
        d_x.axpy(1.0, &d_x_router)?;
        scratch::recycle(d_x_router);
        Ok(d_x)
    }

    /// Exports the layer's parameters under `prefix` into `sd`.
    pub fn export_state(&self, prefix: &str, sd: &mut StateDict) {
        match &self.router {
            AnyRouter::Linear(r) => {
                sd.insert(&format!("{prefix}.router.weight"), r.weights().clone())
            }
            AnyRouter::Cosine(r) => {
                let (w, m) = r.weights();
                sd.insert(&format!("{prefix}.router.proj"), w.clone());
                sd.insert(&format!("{prefix}.router.embed"), m.clone());
                sd.insert(
                    &format!("{prefix}.router.tau"),
                    Tensor::from_vec(vec![r.tau()], &[1]).expect("scalar tensor"),
                );
            }
            AnyRouter::Hash(_) => {}
        }
        let (w1, b1, w2, b2) = self.experts.weights();
        sd.insert(&format!("{prefix}.experts.w1"), w1.clone());
        sd.insert(&format!("{prefix}.experts.b1"), b1.clone());
        sd.insert(&format!("{prefix}.experts.w2"), w2.clone());
        sd.insert(&format!("{prefix}.experts.b2"), b2.clone());
    }

    /// Restores parameters exported by [`MoeLayer::export_state`] into
    /// a layer of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] for missing or misshapen tensors.
    pub fn import_state(&mut self, prefix: &str, sd: &StateDict) -> Result<(), RestoreError> {
        let need = |name: String| sd.get(&name).cloned().ok_or(RestoreError::Missing(name));
        match &mut self.router {
            AnyRouter::Linear(r) => {
                let name = format!("{prefix}.router.weight");
                r.set_weights(need(name.clone())?)
                    .map_err(|_| RestoreError::ShapeMismatch(name))?;
            }
            AnyRouter::Cosine(r) => {
                let wn = format!("{prefix}.router.proj");
                let mn = format!("{prefix}.router.embed");
                let tn = format!("{prefix}.router.tau");
                let tau = need(tn.clone())?
                    .as_slice()
                    .first()
                    .copied()
                    .unwrap_or(0.07);
                r.set_weights(need(wn.clone())?, need(mn)?, tau)
                    .map_err(|_| RestoreError::ShapeMismatch(wn))?;
            }
            AnyRouter::Hash(_) => {}
        }
        let w1 = need(format!("{prefix}.experts.w1"))?;
        let b1 = need(format!("{prefix}.experts.b1"))?;
        let w2 = need(format!("{prefix}.experts.w2"))?;
        let b2 = need(format!("{prefix}.experts.b2"))?;
        self.experts
            .set_weights(w1, b1, w2, b2)
            .map_err(|_| RestoreError::ShapeMismatch(format!("{prefix}.experts")))?;
        Ok(())
    }

    /// Applies accumulated gradients (no-op while frozen) and clears
    /// them.
    pub fn step(&mut self, lr: f32) {
        if self.frozen {
            self.experts.zero_grad();
            self.router.as_dyn_mut().step(0.0);
        } else {
            self.experts.step(lr);
            self.router.as_dyn_mut().step(lr);
        }
    }
}

impl std::fmt::Debug for MoeLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MoeLayer")
            .field("experts", &self.cfg.experts)
            .field("top_k", &self.cfg.top_k)
            .field("model_dim", &self.cfg.model_dim)
            .field("hidden_dim", &self.cfg.hidden_dim)
            .field("frozen", &self.frozen)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cfg: &MoeConfig, seed: u64) -> (MoeLayer, Rng) {
        let mut rng = Rng::seed(seed);
        let l = MoeLayer::new(cfg, &mut rng).unwrap();
        (l, rng)
    }

    #[test]
    fn forward_shapes_and_telemetry() {
        let cfg = MoeConfig::new(8, 16, 4).with_top_k(2);
        let (mut l, mut rng) = layer(&cfg, 1);
        let x = rng.normal_tensor(&[32, 8], 0.0, 1.0);
        let out = l.forward(&x).unwrap();
        assert_eq!(out.output.dims(), &[32, 8]);
        assert!(out.aux_loss > 0.0);
        assert!(out.needed_factor >= 0.9);
        assert!(out.survival_rate > 0.0 && out.survival_rate <= 1.0);
    }

    #[test]
    fn train_and_infer_agree_at_same_capacity() {
        let cfg = MoeConfig::new(8, 16, 4);
        let (mut l, mut rng) = layer(&cfg, 2);
        let x = rng.normal_tensor(&[16, 8], 0.0, 1.0);
        let a = l.forward(&x).unwrap();
        let b = l.infer(&x).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn infer_capacity_override_changes_drops() {
        let cfg = MoeConfig::new(8, 16, 4);
        let (mut l, mut rng) = layer(&cfg, 3);
        let x = rng.normal_tensor(&[64, 8], 0.0, 1.0);
        let tight = l.infer_with(&x, 0.5).unwrap();
        let loose = l.infer_with(&x, 4.0).unwrap();
        assert!(tight.survival_rate <= loose.survival_rate);
        let _ = l.forward(&x).unwrap();
    }

    #[test]
    fn backward_gradcheck_through_everything() {
        // End-to-end finite difference through router + softmax +
        // encode + experts + decode (top-2 to exercise normalization).
        let cfg = MoeConfig::new(4, 6, 3)
            .with_top_k(2)
            .with_aux_weight(0.0)
            .with_capacity_factor(8.0);
        let (mut l, mut rng) = layer(&cfg, 4);
        let x = rng.normal_tensor(&[5, 4], 0.0, 1.0);
        let up = rng.normal_tensor(&[5, 4], 0.0, 1.0);
        l.forward(&x).unwrap();
        let dx = l.backward(&up).unwrap();
        let eps = 1e-2;
        let mut max_err = 0.0f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = l.infer(&xp).unwrap().output.mul(&up).unwrap().sum();
            let lm = l.infer(&xm).unwrap().output.mul(&up).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((fd - dx.as_slice()[i]).abs());
        }
        // Routing is discontinuous at decision boundaries; with a large
        // capacity factor and smooth weights, most coordinates match.
        assert!(max_err < 0.15, "max grad error {max_err}");
    }

    #[test]
    fn batch_of_one_takes_the_batched_kernel_path_bitwise() {
        // The serving contract: under dropless routing, every row of
        // a batched inference is bitwise identical to inferring that
        // row alone — batch size 1 is not a special case anywhere in
        // the gate, encode, FFN, or decode path.
        let cfg = MoeConfig::new(8, 16, 4).with_top_k(2);
        let (l, mut rng) = layer(&cfg, 12);
        let x = rng.normal_tensor(&[16, 8], 0.0, 1.0);
        let batched = l.infer_dropless(&x).unwrap();
        for t in 0..16 {
            let row = Tensor::from_vec(x.as_slice()[t * 8..(t + 1) * 8].to_vec(), &[1, 8]).unwrap();
            let solo = l.infer_dropless(&row).unwrap();
            assert_eq!(
                solo.output.as_slice(),
                &batched.output.as_slice()[t * 8..(t + 1) * 8],
                "row {t} diverged between batch-1 and batch-16"
            );
            assert_eq!(solo.dropped, 0);
        }
        assert_eq!(batched.dropped, 0);
    }

    #[test]
    fn dropless_grouped_path_matches_padded_rows_bitwise() {
        // The dropless path runs ragged encode → grouped GEMM →
        // ragged decode; the padded path at a capacity large enough to
        // drop nothing computes the same rows through the (E, C, M)
        // twin. Per-row accumulation order is identical, so the outputs
        // must agree bit for bit — training forward, dropless
        // inference, and padded inference alike.
        let cfg = MoeConfig::new(8, 16, 4)
            .with_top_k(2)
            .with_capacity_factor(0.0);
        let (mut l, mut rng) = layer(&cfg, 21);
        let x = rng.normal_tensor(&[32, 8], 0.0, 1.0);
        let grouped = l.forward(&x).unwrap();
        let infer = l.infer_dropless(&x).unwrap();
        let padded = l.infer_with(&x, cfg.experts as f64).unwrap();
        assert_eq!(padded.dropped, 0, "padded twin must not drop");
        assert_eq!(grouped.output, infer.output);
        assert_eq!(grouped.output, padded.output);
        assert_eq!(grouped.expert_load, padded.expert_load);
    }

    #[test]
    fn dynamic_top_any_switches_per_iteration() {
        let cfg = MoeConfig::new(8, 16, 8).with_capacity_factor(0.0);
        let (mut l, mut rng) = layer(&cfg, 5);
        let x = rng.normal_tensor(&[32, 8], 0.0, 1.0);
        for k in [1, 3, 8, 2] {
            l.set_top_k(k).unwrap();
            let out = l.forward(&x).unwrap();
            assert_eq!(out.output.dims(), &[32, 8], "k = {k}");
        }
        assert!(l.set_top_k(9).is_err());
        assert!(l.set_top_k(0).is_err());
    }

    #[test]
    fn frozen_layer_does_not_update() {
        let cfg = MoeConfig::new(8, 16, 4);
        let (mut l, mut rng) = layer(&cfg, 6);
        let x = rng.normal_tensor(&[16, 8], 0.0, 1.0);
        let before = l.infer(&x).unwrap().output;
        l.set_frozen(true);
        for _ in 0..3 {
            l.forward(&x).unwrap();
            let g = Tensor::ones(&[16, 8]);
            l.backward(&g).unwrap();
            l.step(0.1);
        }
        let after = l.infer(&x).unwrap().output;
        assert_eq!(before, after, "frozen layer changed");
        l.set_frozen(false);
        l.forward(&x).unwrap();
        l.backward(&Tensor::ones(&[16, 8])).unwrap();
        l.step(0.1);
        let trained = l.infer(&x).unwrap().output;
        assert_ne!(after, trained, "unfrozen layer must change");
    }

    #[test]
    fn training_reduces_regression_loss() {
        let cfg = MoeConfig::new(6, 12, 4)
            .with_top_k(2)
            .with_capacity_factor(0.0);
        let (mut l, mut rng) = layer(&cfg, 7);
        let x = rng.normal_tensor(&[24, 6], 0.0, 1.0);
        let target = rng.normal_tensor(&[24, 6], 0.0, 1.0);
        let loss_at = |l: &MoeLayer| {
            let y = l.infer(&x).unwrap().output;
            0.5 * y.sub(&target).unwrap().sq_norm()
        };
        let initial = loss_at(&l);
        for _ in 0..60 {
            let out = l.forward(&x).unwrap();
            let diff = out.output.sub(&target).unwrap();
            l.backward(&diff).unwrap();
            l.step(0.02);
        }
        let fin = loss_at(&l);
        assert!(fin < 0.7 * initial, "loss {initial} → {fin}");
    }

    #[test]
    fn cosine_and_hash_router_layers_run() {
        for kind in [RouterKind::Cosine, RouterKind::Hash] {
            let cfg = MoeConfig::new(8, 16, 4).with_router(kind);
            let (mut l, mut rng) = layer(&cfg, 8);
            let x = rng.normal_tensor(&[16, 8], 0.0, 1.0);
            let out = l.forward(&x).unwrap();
            assert_eq!(out.output.dims(), &[16, 8]);
            l.backward(&Tensor::ones(&[16, 8])).unwrap();
            l.step(0.01);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let mut rng = Rng::seed(9);
        assert!(MoeLayer::new(&MoeConfig::new(8, 16, 4).with_top_k(5), &mut rng).is_err());
        assert!(MoeLayer::new(&MoeConfig::new(8, 16, 4).with_top_k(0), &mut rng).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let cfg = MoeConfig::new(8, 16, 4);
        let (mut l, _) = layer(&cfg, 10);
        assert!(l.backward(&Tensor::zeros(&[4, 8])).is_err());
    }
}
