//! Checkpointing: a self-contained binary state-dict format.
//!
//! Models and layers export their parameters into a [`StateDict`]
//! (named tensors), which serializes to a simple little-endian binary
//! format — no external serialization crates required. Restoring into
//! a freshly constructed model of the same configuration reproduces
//! bit-identical outputs (tested).
//!
//! # Example
//!
//! ```
//! use tutel::checkpoint::StateDict;
//! use tutel_tensor::Tensor;
//!
//! let mut sd = StateDict::new();
//! sd.insert("layer.weight", Tensor::ones(&[2, 3]));
//! let bytes = sd.to_bytes();
//! let back = StateDict::from_bytes(&bytes)?;
//! assert_eq!(back.get("layer.weight"), Some(&Tensor::ones(&[2, 3])));
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use tutel_tensor::Tensor;

const MAGIC: &[u8; 8] = b"TUTELSD1";

/// An ordered map of named parameter tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Creates an empty state dict.
    pub fn new() -> Self {
        StateDict::default()
    }

    /// Inserts (or replaces) a named tensor.
    pub fn insert(&mut self, name: &str, tensor: Tensor) {
        self.entries.insert(name.to_string(), tensor);
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Removes and returns a tensor by name.
    pub fn take(&mut self, name: &str) -> Option<Tensor> {
        self.entries.remove(name)
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Total parameter count across all tensors.
    pub fn num_params(&self) -> usize {
        self.entries.values().map(Tensor::len).sum()
    }

    /// Serializes to the `TUTELSD1` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Writes the binary format to `w` (pass `&mut file` for files).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, tensor) in &self.entries {
            let name_bytes = name.as_bytes();
            w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
            w.write_all(name_bytes)?;
            let dims = tensor.dims();
            w.write_all(&(dims.len() as u32).to_le_bytes())?;
            for &d in dims {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for v in tensor.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes from the binary format.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic/truncated stream.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        StateDict::read_from(bytes)
    }

    /// Reads the binary format from `r` (pass `&mut file` for files).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic/truncated stream.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a TUTELSD1 state dict",
            ));
        }
        let count = read_u32(&mut r)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = read_u32(&mut r)? as usize;
            if name_len > 1 << 20 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unreasonable name length",
                ));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 tensor name"))?;
            let rank = read_u32(&mut r)? as usize;
            if rank > 16 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unreasonable tensor rank",
                ));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                dims.push(u64::from_le_bytes(b) as usize);
            }
            let len: usize = dims.iter().product();
            if len > 1 << 30 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unreasonable tensor size",
                ));
            }
            let mut data = Vec::with_capacity(len);
            let mut b = [0u8; 4];
            for _ in 0..len {
                r.read_exact(&mut b)?;
                data.push(f32::from_le_bytes(b));
            }
            let tensor = Tensor::from_vec(data, &dims)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            entries.insert(name, tensor);
        }
        Ok(StateDict { entries })
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Error restoring a state dict into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// A required tensor was absent.
    Missing(String),
    /// A tensor had the wrong shape for the target module.
    ShapeMismatch(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Missing(n) => write!(f, "state dict is missing tensor {n:?}"),
            RestoreError::ShapeMismatch(n) => write!(f, "tensor {n:?} has the wrong shape"),
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_tensor::Rng;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = Rng::seed(1);
        let mut sd = StateDict::new();
        sd.insert("a.weight", rng.normal_tensor(&[3, 4], 0.0, 1.0));
        sd.insert("a.bias", rng.normal_tensor(&[4], 0.0, 1.0));
        sd.insert("scalarish", Tensor::from_vec(vec![7.5], &[1]).unwrap());
        let back = StateDict::from_bytes(&sd.to_bytes()).unwrap();
        assert_eq!(back, sd);
        assert_eq!(back.num_params(), 12 + 4 + 1);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(StateDict::from_bytes(b"NOTMAGIC").is_err());
        let mut sd = StateDict::new();
        sd.insert("x", Tensor::ones(&[8]));
        let bytes = sd.to_bytes();
        assert!(StateDict::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn empty_dict_roundtrips() {
        let sd = StateDict::new();
        let back = StateDict::from_bytes(&sd.to_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
