//! SwinLite-MoE: a compact transformer-style classifier whose
//! every-other FFN is an MoE layer, standing in for SwinV2-MoE
//! (Section 5.3). Built entirely from the stack's own differentiable
//! pieces — no autograd framework.
//!
//! Architecture (per sample of `T` tokens of `C_in` features):
//!
//! ```text
//! embed: Linear(C_in → C)
//! repeat L blocks:
//!     mixer: x += Linear(C → C)                (linear attention stand-in;
//!                                               like attention, it mixes
//!                                               features but provides no
//!                                               per-token nonlinear
//!                                               capacity — that lives in
//!                                               the FFNs, as in SwinV2)
//!     ffn:   x += FFN(C → V → C)               (dense, or MoE on every
//!                                               other block, as in
//!                                               SwinV2-MoE)
//! head: mean-pool tokens → Linear(C → K) → softmax CE
//! ```

use tutel_experts::ExpertsBlock;
use tutel_tensor::{Rng, Tensor, TensorError};

use crate::checkpoint::{RestoreError, StateDict};
use crate::{MoeConfig, MoeLayer};

/// A trainable affine layer `y = x·W + b` with gradient accumulation.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    saved_x: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized layer.
    pub fn new(inputs: usize, outputs: usize, rng: &mut Rng) -> Self {
        Linear {
            w: rng.kaiming(inputs, outputs),
            b: Tensor::zeros(&[outputs]),
            dw: Tensor::zeros(&[inputs, outputs]),
            db: Tensor::zeros(&[outputs]),
            saved_x: None,
        }
    }

    /// Forward with caching.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.saved_x = Some(x.clone());
        self.infer(x)
    }

    /// Forward without caching.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let mut y = x.matmul(&self.w)?;
        let cols = self.b.len();
        for row in y.as_mut_slice().chunks_mut(cols) {
            for (v, b) in row.iter_mut().zip(self.b.as_slice()) {
                *v += b;
            }
        }
        Ok(y)
    }

    /// Backward: accumulates `dW`, `db`, returns `dX`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if no forward is cached.
    pub fn backward(&mut self, d_y: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .saved_x
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("backward without forward".into()))?;
        self.dw.axpy(1.0, &x.matmul_tn(d_y)?)?;
        let cols = self.b.len();
        for row in d_y.as_slice().chunks(cols) {
            for (g, v) in self.db.as_mut_slice().iter_mut().zip(row) {
                *g += v;
            }
        }
        d_y.matmul_nt(&self.w)
    }

    /// SGD update with per-tensor gradient-norm clipping; clears
    /// gradients.
    pub fn step(&mut self, lr: f32) {
        self.dw.clip_norm(1.0);
        self.db.clip_norm(1.0);
        self.w.axpy(-lr, &self.dw).expect("shape");
        self.b.axpy(-lr, &self.db).expect("shape");
        self.dw = Tensor::zeros(self.dw.dims());
        self.db = Tensor::zeros(self.db.dims());
    }

    /// Parameter count.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn export_state(&self, prefix: &str, sd: &mut StateDict) {
        sd.insert(&format!("{prefix}.weight"), self.w.clone());
        sd.insert(&format!("{prefix}.bias"), self.b.clone());
    }

    fn import_state(&mut self, prefix: &str, sd: &StateDict) -> Result<(), RestoreError> {
        let w = sd
            .get(&format!("{prefix}.weight"))
            .ok_or_else(|| RestoreError::Missing(format!("{prefix}.weight")))?;
        let b = sd
            .get(&format!("{prefix}.bias"))
            .ok_or_else(|| RestoreError::Missing(format!("{prefix}.bias")))?;
        if w.dims() != self.w.dims() || b.dims() != self.b.dims() {
            return Err(RestoreError::ShapeMismatch(prefix.to_string()));
        }
        self.w = w.clone();
        self.b = b.clone();
        Ok(())
    }
}

/// Either a dense FFN or an MoE layer in a block's FFN slot.
#[allow(clippy::large_enum_variant)]
enum FfnSlot {
    Dense { block: ExpertsBlock },
    Moe(Box<MoeLayer>),
}

struct Block {
    mixer: Linear,
    ffn: FfnSlot,
}

/// Configuration of [`SwinLiteMoe`].
#[derive(Debug, Clone, Copy)]
pub struct SwinLiteConfig {
    /// Input feature channels.
    pub in_channels: usize,
    /// Model width `C`.
    pub channels: usize,
    /// FFN hidden width `V`.
    pub hidden: usize,
    /// Number of blocks.
    pub blocks: usize,
    /// Number of classes.
    pub classes: usize,
    /// Tokens per sample.
    pub tokens_per_sample: usize,
    /// MoE settings for the sparse blocks; `None` = fully dense model.
    pub moe: Option<MoeConfig>,
}

impl SwinLiteConfig {
    /// The compact default used by the experiments: every other block's
    /// FFN is an MoE layer (as in SwinV2-MoE), starting from block 1.
    pub fn new(in_channels: usize, tokens_per_sample: usize, classes: usize) -> Self {
        SwinLiteConfig {
            in_channels,
            channels: 24,
            hidden: 32,
            blocks: 4,
            classes,
            tokens_per_sample,
            moe: None,
        }
    }

    /// Makes every other FFN an MoE layer with the given config (its
    /// `model_dim`/`hidden_dim` are overwritten to match the model).
    pub fn with_moe(mut self, moe: MoeConfig) -> Self {
        self.moe = Some(MoeConfig {
            model_dim: self.channels,
            hidden_dim: self.hidden,
            ..moe
        });
        self
    }
}

/// Per-forward telemetry of one MoE block.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeTelemetry {
    /// Which block the MoE layer sits in.
    pub block: usize,
    /// Minimum capacity factor that would drop no token (Figure 1).
    pub needed_factor: f64,
    /// The capacity factor the layer actually ran with.
    pub capacity_factor: f64,
    /// Survival rate under the layer's actual capacity.
    pub survival_rate: f64,
    /// Auxiliary loss.
    pub aux_loss: f32,
    /// Tokens routed to each expert this forward.
    pub expert_load: Vec<usize>,
    /// Tokens dropped by capacity limits this forward.
    pub dropped: usize,
}

/// The SwinLite-MoE model.
pub struct SwinLiteMoe {
    cfg: SwinLiteConfig,
    embed: Linear,
    blocks: Vec<Block>,
    head: Linear,
    /// Per-sample token count cached at forward for pooling backward.
    saved_pool: Option<(usize, usize)>,
}

impl SwinLiteMoe {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] for inconsistent MoE configs.
    pub fn new(cfg: &SwinLiteConfig, rng: &mut Rng) -> Result<Self, TensorError> {
        let embed = Linear::new(cfg.in_channels, cfg.channels, rng);
        let mut blocks = Vec::with_capacity(cfg.blocks);
        for b in 0..cfg.blocks {
            let mixer = Linear::new(cfg.channels, cfg.channels, rng);
            let ffn = match (&cfg.moe, b % 2) {
                (Some(moe_cfg), 1) => FfnSlot::Moe(Box::new(MoeLayer::new(moe_cfg, rng)?)),
                _ => FfnSlot::Dense {
                    block: ExpertsBlock::new(1, cfg.channels, cfg.hidden, rng),
                },
            };
            blocks.push(Block { mixer, ffn });
        }
        let head = Linear::new(cfg.channels, cfg.classes, rng);
        Ok(SwinLiteMoe {
            cfg: *cfg,
            embed,
            blocks,
            head,
            saved_pool: None,
        })
    }

    /// The model's configuration.
    pub fn config(&self) -> &SwinLiteConfig {
        &self.cfg
    }

    /// Total parameters.
    pub fn num_params(&self) -> usize {
        let mut n = self.embed.num_params() + self.head.num_params();
        for b in &self.blocks {
            n += b.mixer.num_params();
            n += match &b.ffn {
                FfnSlot::Dense { block } => block.num_params(),
                FfnSlot::Moe(m) => m.num_params(),
            };
        }
        n
    }

    /// Parameters touched per token (dense params + `k/E` of expert
    /// params): the paper's `#param_act`.
    pub fn active_params(&self) -> usize {
        let mut n = self.embed.num_params() + self.head.num_params();
        for b in &self.blocks {
            n += b.mixer.num_params();
            n += match &b.ffn {
                FfnSlot::Dense { block } => block.num_params(),
                FfnSlot::Moe(m) => {
                    let cfg = m.config();
                    let per_expert =
                        2 * cfg.model_dim * cfg.hidden_dim + cfg.model_dim + cfg.hidden_dim;
                    per_expert * cfg.top_k + cfg.model_dim * cfg.experts
                }
            };
        }
        n
    }

    /// Freezes/unfreezes all MoE layers (Table 10's fine-tuning knob).
    pub fn set_moe_frozen(&mut self, frozen: bool) {
        for b in &mut self.blocks {
            if let FfnSlot::Moe(m) = &mut b.ffn {
                m.set_frozen(frozen);
            }
        }
    }

    /// Overrides the capacity-factor argument of every MoE layer.
    pub fn set_capacity_factor(&mut self, x: f64) {
        for b in &mut self.blocks {
            if let FfnSlot::Moe(m) = &mut b.ffn {
                m.set_capacity_factor(x);
            }
        }
    }

    /// Attaches a telemetry handle to every MoE layer (spans, kernel
    /// counters, routing metrics). Dense FFN blocks stay silent so the
    /// recorded stages attribute MoE work only.
    pub fn set_telemetry(&mut self, tel: tutel_obs::Telemetry) {
        for b in &mut self.blocks {
            if let FfnSlot::Moe(m) = &mut b.ffn {
                m.set_telemetry(tel.clone());
            }
        }
    }

    /// Exports every parameter into a [`StateDict`].
    pub fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        self.embed.export_state("embed", &mut sd);
        for (i, block) in self.blocks.iter().enumerate() {
            block
                .mixer
                .export_state(&format!("blocks.{i}.mixer"), &mut sd);
            match &block.ffn {
                FfnSlot::Dense { block: ffn } => {
                    let (w1, b1, w2, b2) = ffn.weights();
                    sd.insert(&format!("blocks.{i}.ffn.w1"), w1.clone());
                    sd.insert(&format!("blocks.{i}.ffn.b1"), b1.clone());
                    sd.insert(&format!("blocks.{i}.ffn.w2"), w2.clone());
                    sd.insert(&format!("blocks.{i}.ffn.b2"), b2.clone());
                }
                FfnSlot::Moe(m) => m.export_state(&format!("blocks.{i}.moe"), &mut sd),
            }
        }
        self.head.export_state("head", &mut sd);
        sd
    }

    /// Restores a [`StateDict`] produced by [`SwinLiteMoe::state_dict`]
    /// into a model of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] for missing or misshapen tensors.
    pub fn load_state_dict(&mut self, sd: &StateDict) -> Result<(), RestoreError> {
        self.embed.import_state("embed", sd)?;
        for (i, block) in self.blocks.iter_mut().enumerate() {
            block.mixer.import_state(&format!("blocks.{i}.mixer"), sd)?;
            match &mut block.ffn {
                FfnSlot::Dense { block: ffn } => {
                    let need =
                        |name: String| sd.get(&name).cloned().ok_or(RestoreError::Missing(name));
                    let w1 = need(format!("blocks.{i}.ffn.w1"))?;
                    let b1 = need(format!("blocks.{i}.ffn.b1"))?;
                    let w2 = need(format!("blocks.{i}.ffn.w2"))?;
                    let b2 = need(format!("blocks.{i}.ffn.b2"))?;
                    ffn.set_weights(w1, b1, w2, b2)
                        .map_err(|_| RestoreError::ShapeMismatch(format!("blocks.{i}.ffn")))?;
                }
                FfnSlot::Moe(m) => m.import_state(&format!("blocks.{i}.moe"), sd)?,
            }
        }
        self.head.import_state("head", sd)
    }

    /// Training forward: returns `(logits (B, K), aux_loss_total,
    /// per-MoE-layer telemetry)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` is not
    /// `(B·tokens_per_sample, in_channels)`.
    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
    ) -> Result<(Tensor, f32, Vec<MoeTelemetry>), TensorError> {
        let t = self.cfg.tokens_per_sample;
        if x.dims() != [batch * t, self.cfg.in_channels] {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![batch * t, self.cfg.in_channels],
                op: "swinlite_forward",
            });
        }
        let mut h = self.embed.forward(x)?;
        let mut aux_total = 0.0f32;
        let mut telemetry = Vec::new();
        for (bi, block) in self.blocks.iter_mut().enumerate() {
            // Linear mixer with residual.
            let pre = block.mixer.forward(&h)?;
            h = h.add(&pre)?;
            // FFN with residual.
            match &mut block.ffn {
                FfnSlot::Dense { block: ffn } => {
                    let rows = h.dims()[0];
                    let x3 = h.reshape(&[1, rows, self.cfg.channels])?;
                    let y3 = ffn.forward(&x3)?;
                    let y = y3.reshape(&[rows, self.cfg.channels])?;
                    h = h.add(&y)?;
                }
                FfnSlot::Moe(m) => {
                    let out = m.forward(&h)?;
                    aux_total += out.aux_loss;
                    telemetry.push(MoeTelemetry {
                        block: bi,
                        needed_factor: out.needed_factor,
                        capacity_factor: out.capacity_factor,
                        survival_rate: out.survival_rate,
                        aux_loss: out.aux_loss,
                        expert_load: out.expert_load,
                        dropped: out.dropped,
                    });
                    h = h.add(&out.output)?;
                }
            }
        }
        // Mean-pool tokens per sample.
        let pooled = mean_pool(&h, batch, t, self.cfg.channels)?;
        self.saved_pool = Some((batch, t));
        let logits = self.head.forward(&pooled)?;
        Ok((logits, aux_total, telemetry))
    }

    /// Inference forward: logits only, optional capacity override.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn infer(&self, x: &Tensor, batch: usize) -> Result<Tensor, TensorError> {
        let t = self.cfg.tokens_per_sample;
        let mut h = self.embed.infer(x)?;
        for block in &self.blocks {
            let pre = block.mixer.infer(&h)?;
            h = h.add(&pre)?;
            match &block.ffn {
                FfnSlot::Dense { block: ffn } => {
                    let rows = h.dims()[0];
                    let x3 = h.reshape(&[1, rows, self.cfg.channels])?;
                    let y3 = ffn.infer(&x3)?;
                    h = h.add(&y3.reshape(&[rows, self.cfg.channels])?)?;
                }
                FfnSlot::Moe(m) => {
                    h = h.add(&m.infer(&h)?.output)?;
                }
            }
        }
        let pooled = mean_pool(&h, batch, t, self.cfg.channels)?;
        self.head.infer(&pooled)
    }

    /// Pooled features before the head (for the few-shot linear eval).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    pub fn features(&self, x: &Tensor, batch: usize) -> Result<Tensor, TensorError> {
        let t = self.cfg.tokens_per_sample;
        let mut h = self.embed.infer(x)?;
        for block in &self.blocks {
            let pre = block.mixer.infer(&h)?;
            h = h.add(&pre)?;
            match &block.ffn {
                FfnSlot::Dense { block: ffn } => {
                    let rows = h.dims()[0];
                    let x3 = h.reshape(&[1, rows, self.cfg.channels])?;
                    let y3 = ffn.infer(&x3)?;
                    h = h.add(&y3.reshape(&[rows, self.cfg.channels])?)?;
                }
                FfnSlot::Moe(m) => {
                    h = h.add(&m.infer(&h)?.output)?;
                }
            }
        }
        mean_pool(&h, batch, t, self.cfg.channels)
    }

    /// Backward from `d_logits (B, K)`; returns nothing (input grads
    /// are not needed by any experiment).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if no forward is cached.
    pub fn backward(&mut self, d_logits: &Tensor) -> Result<(), TensorError> {
        let (batch, t) = self
            .saved_pool
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("backward without forward".into()))?;
        let d_pooled = self.head.backward(d_logits)?;
        // Un-pool: each token receives d_pooled / T.
        let c = self.cfg.channels;
        let mut d_h = Tensor::zeros(&[batch * t, c]);
        for b in 0..batch {
            let src = &d_pooled.as_slice()[b * c..(b + 1) * c];
            for ti in 0..t {
                let dst = &mut d_h.as_mut_slice()[(b * t + ti) * c..(b * t + ti + 1) * c];
                for (o, v) in dst.iter_mut().zip(src) {
                    *o += v / t as f32;
                }
            }
        }
        for block in self.blocks.iter_mut().rev() {
            // FFN residual.
            let d_ffn_out = d_h.clone();
            let d_from_ffn = match &mut block.ffn {
                FfnSlot::Dense { block: ffn } => {
                    let rows = d_ffn_out.dims()[0];
                    let d3 = d_ffn_out.reshape(&[1, rows, c])?;
                    let dx3 = ffn.backward(&d3)?;
                    dx3.reshape(&[rows, c])?
                }
                FfnSlot::Moe(m) => m.backward(&d_ffn_out)?,
            };
            d_h.axpy(1.0, &d_from_ffn)?;
            // Linear mixer residual.
            let d_from_mixer = block.mixer.backward(&d_h)?;
            d_h.axpy(1.0, &d_from_mixer)?;
        }
        self.embed.backward(&d_h)?;
        Ok(())
    }

    /// SGD step on every submodule.
    pub fn step(&mut self, lr: f32) {
        self.embed.step(lr);
        for block in &mut self.blocks {
            block.mixer.step(lr);
            match &mut block.ffn {
                FfnSlot::Dense { block: ffn } => ffn.step(lr),
                FfnSlot::Moe(m) => m.step(lr),
            }
        }
        self.head.step(lr);
    }
}

/// Mean-pools `(B·T, C)` tokens into `(B, C)` sample features.
fn mean_pool(h: &Tensor, batch: usize, t: usize, c: usize) -> Result<Tensor, TensorError> {
    if h.dims() != [batch * t, c] {
        return Err(TensorError::ShapeMismatch {
            left: h.dims().to_vec(),
            right: vec![batch * t, c],
            op: "mean_pool",
        });
    }
    let mut out = Tensor::zeros(&[batch, c]);
    for b in 0..batch {
        for ti in 0..t {
            let row = &h.as_slice()[(b * t + ti) * c..(b * t + ti + 1) * c];
            let dst = &mut out.as_mut_slice()[b * c..(b + 1) * c];
            for (o, v) in dst.iter_mut().zip(row) {
                *o += v / t as f32;
            }
        }
    }
    Ok(out)
}

/// Softmax cross-entropy: returns `(loss, d_logits)`.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the logits' row count.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (b, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), b, "label count mismatch");
    let probs = logits.softmax_last();
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range");
        loss -= probs.at(&[i, y]).max(1e-12).ln();
        let g = grad.at(&[i, y]) - 1.0;
        grad.set(&[i, y], g);
    }
    (loss / b as f32, grad.scale(1.0 / b as f32))
}

/// Argmax accuracy.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the logits' row count.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (b, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), b, "label count mismatch");
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == y {
            correct += 1;
        }
    }
    correct as f64 / b.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;

    fn tiny_cfg(moe: bool) -> SwinLiteConfig {
        let mut cfg = SwinLiteConfig::new(8, 4, 3);
        cfg.channels = 12;
        cfg.hidden = 16;
        cfg.blocks = 2;
        if moe {
            cfg = cfg.with_moe(MoeConfig::new(0, 0, 4).with_capacity_factor(0.0));
        }
        cfg
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed(1);
        let mut model = SwinLiteMoe::new(&tiny_cfg(true), &mut rng).unwrap();
        let ds = SyntheticVision::new(8, 4, 3, 4, 2);
        let (x, _) = ds.batch(6, &mut rng);
        let (logits, aux, tel) = model.forward(&x, 6).unwrap();
        assert_eq!(logits.dims(), &[6, 3]);
        assert!(aux > 0.0);
        assert_eq!(tel.len(), 1); // one MoE block out of two
    }

    #[test]
    fn moe_model_has_more_params_same_active() {
        let mut rng = Rng::seed(2);
        let dense = SwinLiteMoe::new(&tiny_cfg(false), &mut rng).unwrap();
        let moe = SwinLiteMoe::new(&tiny_cfg(true), &mut rng).unwrap();
        assert!(moe.num_params() > 2 * dense.num_params());
        // Active params: k=1 expert ≈ one dense FFN (+ router).
        let slack = (moe.active_params() as f64) / (dense.num_params() as f64);
        assert!(slack < 1.2, "active/dense = {slack}");
    }

    #[test]
    fn cross_entropy_matches_uniform_baseline() {
        let logits = Tensor::zeros(&[4, 3]);
        let (loss, grad) = cross_entropy(&logits, &[0, 1, 2, 0]);
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for row in grad.as_slice().chunks(3) {
            assert!(row.iter().sum::<f32>().abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.6], &[3, 2]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn training_improves_accuracy_over_chance() {
        let mut rng = Rng::seed(3);
        let cfg = tiny_cfg(true);
        let mut model = SwinLiteMoe::new(&cfg, &mut rng).unwrap();
        let ds = SyntheticVision::new(8, 4, 3, 4, 4);
        let mut data_rng = Rng::seed(5);
        for _ in 0..150 {
            let (x, y) = ds.batch(16, &mut data_rng);
            let (logits, _aux, _) = model.forward(&x, 16).unwrap();
            let (_loss, dl) = cross_entropy(&logits, &y);
            model.backward(&dl).unwrap();
            model.step(0.05);
        }
        let (x, y) = ds.batch(64, &mut data_rng);
        let logits = model.infer(&x, 64).unwrap();
        let acc = accuracy(&logits, &y);
        assert!(
            acc > 0.55,
            "trained accuracy {acc} barely above chance (1/3)"
        );
    }

    #[test]
    fn dense_model_trains_too() {
        let mut rng = Rng::seed(6);
        let mut model = SwinLiteMoe::new(&tiny_cfg(false), &mut rng).unwrap();
        let ds = SyntheticVision::new(8, 4, 3, 4, 4);
        let mut data_rng = Rng::seed(7);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..80 {
            let (x, y) = ds.batch(16, &mut data_rng);
            let (logits, _, _) = model.forward(&x, 16).unwrap();
            let (loss, dl) = cross_entropy(&logits, &y);
            first.get_or_insert(loss);
            last = loss;
            model.backward(&dl).unwrap();
            model.step(0.05);
        }
        assert!(
            last < first.unwrap(),
            "loss must decrease: {first:?} → {last}"
        );
    }

    #[test]
    fn telemetry_tracks_capacity_needs() {
        let mut rng = Rng::seed(8);
        let mut model = SwinLiteMoe::new(&tiny_cfg(true), &mut rng).unwrap();
        let ds = SyntheticVision::new(8, 4, 3, 4, 9);
        let (x, _) = ds.batch(8, &mut rng);
        let (_, _, tel) = model.forward(&x, 8).unwrap();
        for t in &tel {
            assert!(t.needed_factor > 0.0);
            assert!((0.0..=1.0).contains(&t.survival_rate));
        }
    }
}
