//! The executed adaptive-pipelining fast path: a software two-stream
//! schedule overlapping non-blocking All-to-All with chunked expert
//! compute (Section 3.3 of the paper, executed rather than modeled).
//!
//! # Stream model
//!
//! Real Tutel runs the All-to-All on one CUDA stream and the expert
//! FFN on another; here the "communication stream" is the set of peer
//! rank threads draining their channels, and the "compute stream" is
//! this rank's thread (plus the `rt` pool it fans kernels onto). The
//! schedule for degree `d` is:
//!
//! ```text
//! issue disp[0]
//! for i in 0..d:
//!     if i+1 < d: issue disp[i+1]        // next chunk's dispatch in flight
//!     flex = drain(disp[i])              // the only blocking comm point
//!     y    = compute(i, flex)            // expert FFN on the rt pool
//!     issue comb[i]                      // combine departs immediately
//!     poll unfinished comb handles       // non-blocking progress
//! drain comb[0..d] in order              // final drain
//! ```
//!
//! Every issue and every drain happens in identical program order on
//! every rank, so the communicator's tag counters — and, under the
//! reliability layer, the ack epochs — stay in lockstep without any
//! extra synchronization.
//!
//! # Determinism contract
//!
//! The chunk grid is a fixed function of the problem shape (`degree`
//! chunks supplied by the caller), each chunk's arithmetic is the
//! caller's `compute` applied to exactly the bytes the serial path
//! would see, and chunk results are never reduced across chunks by
//! this module — so the combined output is **bitwise identical** to
//! the chunk-serial schedule at every degree and every
//! `TUTEL_THREADS`. Overlap changes *when* work happens, never *what*
//! is computed.
//!
//! # Measured feedback
//!
//! Each chunk's compute time and the whole schedule's wall-clock are
//! reported in [`OverlapRun`]; the caller feeds the wall-clock into
//! [`crate::pipeline::MeasuredStrategySearch`] so Algorithm 2 ranks
//! strategies by what execution actually cost, not only by the simgpu
//! prior. The `Instant`s taken here never influence any computed
//! value — timing is observed, not consumed.

use std::time::Instant;

use tutel_comm::runtime::{CommHandle, Communicator};
use tutel_comm::{AllToAllAlgo, CommError};
use tutel_obs::trace::{TRACK_RT, TRACK_STREAM_COMM, TRACK_STREAM_COMPUTE};
use tutel_rt::arena;

/// What one overlapped dispatch → compute → combine schedule produced.
pub struct OverlapRun {
    /// Per-chunk combine results, in chunk order — concatenating them
    /// reproduces the serial path's combined buffer bitwise.
    pub combined: Vec<Vec<f32>>,
    /// Wall-clock seconds each chunk's `compute` took.
    pub chunk_compute_s: Vec<f64>,
    /// When each chunk's dispatch All-to-All was issued.
    pub dispatch_issued: Vec<Instant>,
    /// When each chunk's combine All-to-All was issued.
    pub combine_issued: Vec<Instant>,
    /// Wall-clock seconds for the whole schedule (first issue to last
    /// drain).
    pub wall_s: f64,
}

/// Issues the non-blocking All-to-All for `algo`.
fn issue(
    comm: &mut Communicator,
    algo: AllToAllAlgo,
    buf: &[f32],
) -> Result<CommHandle, CommError> {
    match algo {
        AllToAllAlgo::Linear => comm.ialltoall(buf),
        AllToAllAlgo::TwoDh => comm.ialltoall_2dh(buf),
    }
}

/// Blocks for a handle's completion. The *only* place in this module
/// allowed to wait: the steady-state loop must stay non-blocking on
/// the combine side (`check`'s `no_block_in_overlap` rule enforces
/// this).
// check:overlap-drain
fn drain(handle: CommHandle, comm: &mut Communicator) -> Result<Vec<f32>, CommError> {
    handle.wait(comm)
}

/// Runs the two-stream overlapped schedule over `dispatch_chunks`.
///
/// For each chunk `i`, `compute(i, flex)` receives the dispatched
/// (received) wire buffer and returns the expert output to combine.
/// Chunks are computed strictly in index order; `compute` may carry
/// per-chunk state. Degree 1 degenerates to the serial
/// dispatch → compute → combine schedule.
///
/// Received buffers are handed to `compute` owned (recycle them via
/// `tutel_rt::arena` if profitable); combine payloads are recycled
/// into the arena by this function once their sends have departed.
///
/// Under the reliability layer, the retry/ack budget must cover one
/// chunk's compute time: a peer still computing chunk `i` cannot
/// acknowledge chunk `i+1`'s dispatch epilogue until it reaches that
/// wait itself.
///
/// # Errors
///
/// Propagates the first [`CommError`] from any issue, poll, or drain.
/// On error, every still-open handle is drained best-effort first so
/// no mailbox messages are stranded behind the failure.
// check:hot
pub fn run_overlapped<C>(
    comm: &mut Communicator,
    algo: AllToAllAlgo,
    dispatch_chunks: &[Vec<f32>],
    mut compute: C,
) -> Result<OverlapRun, CommError>
where
    C: FnMut(usize, Vec<f32>) -> Vec<f32>,
{
    let d = dispatch_chunks.len();
    let mut combined: Vec<Vec<f32>> = Vec::with_capacity(d);
    let mut chunk_compute_s: Vec<f64> = Vec::with_capacity(d);
    let mut dispatch_issued: Vec<Instant> = Vec::with_capacity(d);
    let mut combine_issued: Vec<Instant> = Vec::with_capacity(d);
    let started = Instant::now();
    if d == 0 {
        return Ok(OverlapRun {
            combined,
            chunk_compute_s,
            dispatch_issued,
            combine_issued,
            wall_s: 0.0,
        });
    }
    if let Some(first) = dispatch_chunks.first() {
        // Warm the arena class for the wire buffers recycled below.
        tutel_rt::request_prewarm(first.len(), 2);
    }

    // The two overlap streams record onto the rank's causal tracer
    // (disabled → every call is one branch): blocking drain windows
    // become spans, issues become instants, and the rt pool's chunk /
    // steal deltas around each compute become an rt-track span — so a
    // merged timeline shows what each stream was doing while the
    // other progressed.
    let tracer = comm.tracer().clone();
    let traced = tracer.is_enabled();
    let mut disp: Vec<Option<CommHandle>> = Vec::with_capacity(d);
    let mut comb: Vec<Option<CommHandle>> = Vec::with_capacity(d);
    let run = (|| -> Result<(), CommError> {
        dispatch_issued.push(started);
        tracer.instant(TRACK_STREAM_COMM, "dispatch.issue");
        disp.push(Some(issue(comm, algo, &dispatch_chunks[0])?));
        // Structural order markers for the race sweep: the issue /
        // drain order of both streams is part of the determinism
        // contract, so the checker folds it into the per-seed
        // structure signature.
        #[cfg(feature = "check-race")]
        tutel_rt::chk::order_mark("overlap.dispatch", 0);
        for i in 0..d {
            if i + 1 < d {
                dispatch_issued.push(Instant::now());
                tracer.instant(TRACK_STREAM_COMM, "dispatch.issue");
                disp.push(Some(issue(comm, algo, &dispatch_chunks[i + 1])?));
                #[cfg(feature = "check-race")]
                tutel_rt::chk::order_mark("overlap.dispatch", (i + 1) as u64);
            }
            // disp[i] is issued above before ever being drained, so
            // the take always yields; the fallback only quiets the
            // Option without a panic path.
            let Some(handle) = disp[i].take() else {
                continue;
            };
            let drain_t0 = tracer.now_us();
            let flex = drain(handle, comm)?;
            tracer.span_at_args(
                TRACK_STREAM_COMM,
                "dispatch.drain",
                drain_t0,
                tracer.now_us(),
                &[("chunk", i as f64)],
            );
            let rt0 = if traced {
                tutel_rt::pool_stats()
            } else {
                tutel_rt::PoolStats::default()
            };
            let compute_t0 = tracer.now_us();
            let t0 = Instant::now();
            let y = compute(i, flex);
            chunk_compute_s.push(t0.elapsed().as_secs_f64());
            let compute_t1 = tracer.now_us();
            tracer.span_at_args(
                TRACK_STREAM_COMPUTE,
                "compute",
                compute_t0,
                compute_t1,
                &[("chunk", i as f64)],
            );
            if traced {
                // Process-global pool counters: the deltas bound this
                // chunk's share (concurrent ranks also contribute).
                let rt1 = tutel_rt::pool_stats();
                tracer.span_at_args(
                    TRACK_RT,
                    "rt",
                    compute_t0,
                    compute_t1,
                    &[
                        ("chunks", rt1.chunks.saturating_sub(rt0.chunks) as f64),
                        (
                            "worker_chunks",
                            rt1.worker_chunks.saturating_sub(rt0.worker_chunks) as f64,
                        ),
                        ("steals", rt1.steals.saturating_sub(rt0.steals) as f64),
                    ],
                );
            }
            combine_issued.push(Instant::now());
            tracer.instant(TRACK_STREAM_COMM, "combine.issue");
            comb.push(Some(issue(comm, algo, &y)?));
            #[cfg(feature = "check-race")]
            tutel_rt::chk::order_mark("overlap.combine", i as u64);
            arena().put(y);
            // Opportunistic progress on earlier combines while the
            // next chunk's dispatch is still in flight.
            for handle in comb.iter_mut().flatten() {
                if !handle.is_complete() {
                    handle.poll(comm)?;
                }
            }
        }
        for (idx, slot) in comb.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                let drain_t0 = tracer.now_us();
                combined.push(drain(handle, comm)?);
                #[cfg(feature = "check-race")]
                tutel_rt::chk::order_mark("overlap.combine_drain", idx as u64);
                tracer.span_at_args(
                    TRACK_STREAM_COMM,
                    "combine.drain",
                    drain_t0,
                    tracer.now_us(),
                    &[("chunk", idx as f64)],
                );
            }
        }
        Ok(())
    })();
    if let Err(err) = run {
        // A failed schedule must not strand peers' messages: drain
        // every open handle (their errors are secondary to `err`).
        for slot in disp.iter_mut().chain(comb.iter_mut()) {
            if let Some(handle) = slot.take() {
                let _ = drain(handle, comm);
            }
        }
        return Err(err);
    }
    Ok(OverlapRun {
        combined,
        chunk_compute_s,
        dispatch_issued,
        combine_issued,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_comm::runtime::run_threaded;
    use tutel_simgpu::Topology;

    /// A per-rank input: `world * per` elements per chunk, labeled so
    /// misrouted chunks change the output.
    fn chunks(rank: usize, world: usize, degree: usize, per: usize) -> Vec<Vec<f32>> {
        (0..degree)
            .map(|c| {
                (0..world * per)
                    .map(|i| (rank * 1000 + c * 100 + i) as f32 * 0.25)
                    .collect()
            })
            .collect()
    }

    /// The serial reference: blocking dispatch → compute → combine,
    /// chunk by chunk.
    fn serial(
        comm: &mut Communicator,
        algo: AllToAllAlgo,
        input: &[Vec<f32>],
        f: impl Fn(usize, &[f32]) -> Vec<f32>,
    ) -> Vec<Vec<f32>> {
        input
            .iter()
            .enumerate()
            .map(|(i, chunk)| {
                let flex = match algo {
                    AllToAllAlgo::Linear => comm.all_to_all(chunk).unwrap(),
                    AllToAllAlgo::TwoDh => comm.all_to_all_2dh(chunk).unwrap(),
                };
                let y = f(i, &flex);
                match algo {
                    AllToAllAlgo::Linear => comm.all_to_all(&y).unwrap(),
                    AllToAllAlgo::TwoDh => comm.all_to_all_2dh(&y).unwrap(),
                }
            })
            .collect()
    }

    fn toy_compute(i: usize, flex: &[f32]) -> Vec<f32> {
        flex.iter().map(|v| v * 1.5 + i as f32).collect()
    }

    #[test]
    fn overlapped_matches_serial_bitwise_for_both_algos() {
        let topo = Topology::new(2, 2);
        let world = topo.world_size();
        for algo in [AllToAllAlgo::Linear, AllToAllAlgo::TwoDh] {
            for degree in [1usize, 2, 4] {
                let expect = run_threaded(topo, |mut comm| {
                    let input = chunks(comm.rank(), world, degree, 3);
                    serial(&mut comm, algo, &input, toy_compute)
                });
                let got = run_threaded(topo, |mut comm| {
                    let input = chunks(comm.rank(), world, degree, 3);
                    let run =
                        run_overlapped(&mut comm, algo, &input, |i, flex| toy_compute(i, &flex))
                            .unwrap();
                    assert_eq!(comm.parked_messages(), 0);
                    assert_eq!(run.chunk_compute_s.len(), degree);
                    run.combined
                });
                assert_eq!(expect, got, "{algo:?} at degree {degree}");
            }
        }
    }

    #[test]
    fn degrees_agree_with_each_other_bitwise() {
        // The determinism contract: the concatenated combine output is
        // the same at every degree (chunks carry disjoint data and the
        // per-chunk compute here is degree-independent).
        let topo = Topology::new(2, 1);
        let world = topo.world_size();
        let flat_at = |degree: usize| {
            run_threaded(topo, move |mut comm| {
                let whole = chunks(comm.rank(), world, 1, 8).remove(0);
                let per = whole.len() / degree / world;
                // Same bytes re-chunked: chunk c takes rows c·per..(c+1)·per
                // of each destination block.
                let input: Vec<Vec<f32>> = (0..degree)
                    .map(|c| {
                        (0..world)
                            .flat_map(|w| {
                                let block = &whole[w * (whole.len() / world)..];
                                block[c * per..(c + 1) * per].to_vec()
                            })
                            .collect()
                    })
                    .collect();
                let run = run_overlapped(&mut comm, AllToAllAlgo::Linear, &input, |_, flex| {
                    flex.iter().map(|v| v * 2.0).collect()
                })
                .unwrap();
                run.combined.concat()
            })
        };
        let d1 = flat_at(1);
        for d in [2usize, 4] {
            let dn = flat_at(d);
            for (rank, (a, b)) in d1.iter().zip(&dn).enumerate() {
                let a_sorted = {
                    let mut v: Vec<u32> = a.iter().map(|f| f.to_bits()).collect();
                    v.sort_unstable();
                    v
                };
                let b_sorted = {
                    let mut v: Vec<u32> = b.iter().map(|f| f.to_bits()).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(a_sorted, b_sorted, "rank {rank} degree {d}");
            }
        }
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let topo = Topology::single_node(2);
        let runs = run_threaded(topo, |mut comm| {
            run_overlapped(&mut comm, AllToAllAlgo::Linear, &[], |_, flex| flex)
                .unwrap()
                .combined
        });
        assert!(runs.iter().all(Vec::is_empty));
    }

    #[test]
    fn issue_timestamps_cover_every_chunk() {
        let topo = Topology::single_node(2);
        let world = topo.world_size();
        let degree = 4;
        run_threaded(topo, |mut comm| {
            let input = chunks(comm.rank(), world, degree, 2);
            let run = run_overlapped(&mut comm, AllToAllAlgo::Linear, &input, |i, flex| {
                toy_compute(i, &flex)
            })
            .unwrap();
            assert_eq!(run.dispatch_issued.len(), degree);
            assert_eq!(run.combine_issued.len(), degree);
            assert!(run.wall_s >= 0.0);
            // Chunk i+1's dispatch departs before chunk i's combine:
            // that is the overlap.
            assert!(run.dispatch_issued[1] <= run.combine_issued[0]);
        });
    }
}
