//! Synthetic clustered-token datasets standing in for ImageNet/COCO.
//!
//! The paper's accuracy experiments (Tables 9–13, Figure 25) require
//! ImageNet-22K pre-training and COCO fine-tuning; neither the data nor
//! the GPU-months are available here. This module builds the closest
//! synthetic equivalent that exercises the same mechanisms:
//!
//! * tokens are drawn from `G` latent **clusters** — the structure MoE
//!   experts specialize on;
//! * the class label is an XOR-style *correlation* signal: each token
//!   carries `u·dir1_g + u·s_{c,g}·dir2_g` with a random per-token sign
//!   `u`, so the class is invisible to any linear function of the
//!   pooled tokens (the `u` averages out) and decodable only by a
//!   *token-level nonlinear, cluster-specific* transform — exactly the
//!   computation expert FFNs provide. A FLOP-matched dense FFN must
//!   cram all `G` cluster transforms into one hidden layer; a sparse
//!   MoE with enough experts learns one per expert. This is the regime
//!   where the paper's sparse-beats-dense results (Tables 9/11) and
//!   capacity sensitivity (Figure 25) reproduce;
//! * [`SyntheticVision::shifted`] produces a distribution-shifted
//!   variant (rotated features, remapped classes) playing the role of
//!   the COCO transfer task in the Table 10 freeze-vs-tune experiment;
//! * [`SyntheticVision::few_shot`] draws the 5-shot linear-eval subset.

use tutel_tensor::{Rng, Tensor};

/// A synthetic clustered-token classification dataset.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    channels: usize,
    tokens_per_sample: usize,
    classes: usize,
    clusters: usize,
    /// `(G, C)` cluster centers.
    centers: Tensor,
    /// `(G, C)` per-cluster carrier directions (unit norm).
    dirs1: Tensor,
    /// `(G, C)` per-cluster signal directions (unit norm).
    dirs2: Tensor,
    /// `(K, G)` class signal signs (±1).
    signs: Vec<Vec<f32>>,
    noise: f32,
    /// Fixed rotation applied to features (identity for the base task).
    rotation: Option<Tensor>,
}

impl SyntheticVision {
    /// Creates the base ("ImageNet-like") task.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        channels: usize,
        tokens_per_sample: usize,
        classes: usize,
        clusters: usize,
        seed: u64,
    ) -> Self {
        assert!(
            channels > 0 && tokens_per_sample > 0 && classes > 0 && clusters > 0,
            "dataset dimensions must be positive"
        );
        let mut rng = Rng::seed(seed);
        let centers = rng.normal_tensor(&[clusters, channels], 0.0, 1.0);
        let dirs1 = unit_rows(rng.normal_tensor(&[clusters, channels], 0.0, 1.0));
        let dirs2 = unit_rows(rng.normal_tensor(&[clusters, channels], 0.0, 1.0));
        let signs = balanced_signs(classes, clusters, &mut rng);
        SyntheticVision {
            channels,
            tokens_per_sample,
            classes,
            clusters,
            centers,
            dirs1,
            dirs2,
            signs,
            noise: 0.15,
            rotation: None,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of latent clusters (the "ideal" expert count).
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Feature channels per token.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Tokens per sample.
    pub fn tokens_per_sample(&self) -> usize {
        self.tokens_per_sample
    }

    /// A distribution-shifted variant of this task (fixed random
    /// feature rotation + freshly drawn class signs): the "COCO"
    /// stand-in for transfer experiments. Cluster structure is
    /// preserved — which is exactly why frozen pre-trained experts
    /// transfer (Table 10).
    pub fn shifted(&self, seed: u64) -> Self {
        let mut rng = Rng::seed(seed ^ 0xC0C0);
        let mut out = self.clone();
        // A mild random rotation blended with identity keeps the task
        // learnable while shifting the input distribution. Kept gentle:
        // the paper's transfer target (COCO) shares the pre-training
        // visual domain — the task changes, the features barely do.
        let mut rot = rng.normal_tensor(&[self.channels, self.channels], 0.0, 1.0);
        let scale = 0.15 / (self.channels as f32).sqrt();
        for v in rot.as_mut_slice() {
            *v *= scale;
        }
        for i in 0..self.channels {
            let idx = i * self.channels + i;
            rot.as_mut_slice()[idx] += 1.0;
        }
        out.rotation = Some(rot);
        out.signs = balanced_signs(self.classes, self.clusters, &mut rng);
        out
    }

    /// Writes one token of `class` from cluster `g` into `row`.
    fn write_token(&self, row: &mut [f32], class: usize, g: usize, rng: &mut Rng) {
        let c = self.channels;
        let center = &self.centers.as_slice()[g * c..(g + 1) * c];
        let d1 = &self.dirs1.as_slice()[g * c..(g + 1) * c];
        let d2 = &self.dirs2.as_slice()[g * c..(g + 1) * c];
        let s = self.signs[class][g];
        // Per-token random carrier sign: the class lives only in the
        // *correlation* u·(u·s) between the two directions.
        let u = if rng.uniform() < 0.5 { -1.0 } else { 1.0 };
        let norm = (c as f32).sqrt();
        for j in 0..c {
            row[j] =
                (1.5 * center[j] + u * d1[j] + u * s * 0.9 * d2[j] + self.noise * rng.normal())
                    / norm;
        }
    }

    /// Samples a batch: returns `(tokens (B·T, C), labels (B))`.
    pub fn batch(&self, batch: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
        let t = self.tokens_per_sample;
        let c = self.channels;
        let mut x = Tensor::zeros(&[batch * t, c]);
        let mut labels = Vec::with_capacity(batch);
        for b in 0..batch {
            let class = rng.below(self.classes);
            labels.push(class);
            for ti in 0..t {
                let g = rng.below(self.clusters);
                let row = &mut x.as_mut_slice()[(b * t + ti) * c..(b * t + ti + 1) * c];
                self.write_token(row, class, g, rng);
            }
        }
        (self.rotate(x), labels)
    }

    /// Draws a few-shot episode: `shots` samples per class, returned as
    /// one batch in class order (the 5-shot linear evaluation protocol
    /// of the paper uses 5 training images per class).
    pub fn few_shot(&self, shots: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
        let t = self.tokens_per_sample;
        let c = self.channels;
        let n = self.classes * shots;
        let mut x = Tensor::zeros(&[n * t, c]);
        let mut labels = Vec::with_capacity(n);
        for class in 0..self.classes {
            for _ in 0..shots {
                let b = labels.len();
                labels.push(class);
                for ti in 0..t {
                    let g = rng.below(self.clusters);
                    let row = &mut x.as_mut_slice()[(b * t + ti) * c..(b * t + ti + 1) * c];
                    self.write_token(row, class, g, rng);
                }
            }
        }
        (self.rotate(x), labels)
    }

    fn rotate(&self, x: Tensor) -> Tensor {
        match &self.rotation {
            Some(rot) => x.matmul(rot).expect("rotation is (C, C)"),
            None => x,
        }
    }
}

/// Draws one ±1 pattern per class with a (near-)zero sum, so the class
/// is invisible to any computation that pools a *shared* per-token
/// statistic across clusters: only cluster-specific units decode it.
fn balanced_signs(classes: usize, clusters: usize, rng: &mut Rng) -> Vec<Vec<f32>> {
    (0..classes)
        .map(|_| {
            let half = clusters / 2;
            let mut pattern: Vec<f32> = (0..clusters)
                .map(|i| if i < half { 1.0 } else { -1.0 })
                .collect();
            rng.shuffle(&mut pattern);
            pattern
        })
        .collect()
}

fn unit_rows(mut t: Tensor) -> Tensor {
    let cols = t.dims()[1];
    for row in t.as_mut_slice().chunks_mut(cols) {
        let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        for v in row {
            *v /= n;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shapes_and_label_range() {
        let ds = SyntheticVision::new(8, 4, 5, 6, 1);
        let mut rng = Rng::seed(2);
        let (x, y) = ds.batch(10, &mut rng);
        assert_eq!(x.dims(), &[40, 8]);
        assert_eq!(y.len(), 10);
        assert!(y.iter().all(|&l| l < 5));
    }

    #[test]
    fn dataset_is_seed_deterministic() {
        let ds = SyntheticVision::new(8, 4, 5, 6, 1);
        let (x1, y1) = ds.batch(4, &mut Rng::seed(7));
        let (x2, y2) = ds.batch(4, &mut Rng::seed(7));
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn class_signal_is_invisible_to_linear_pooling() {
        // The pooled mean of many tokens must be (nearly) identical
        // across classes: the carrier sign u averages out.
        let ds = SyntheticVision::new(16, 512, 2, 1, 3);
        let mut rng = Rng::seed(4);
        let (x, y) = ds.batch(12, &mut rng);
        let c = ds.channels();
        let t = ds.tokens_per_sample();
        let mut mean = vec![vec![0.0f32; c]; 2];
        let mut count = [0usize; 2];
        for (b, &label) in y.iter().enumerate() {
            for ti in 0..t {
                let row = &x.as_slice()[(b * t + ti) * c..][..c];
                for j in 0..c {
                    mean[label][j] += row[j];
                }
            }
            count[label] += t;
        }
        if count[0] > 0 && count[1] > 0 {
            let gap: f32 = (0..c)
                .map(|j| (mean[0][j] / count[0] as f32 - mean[1][j] / count[1] as f32).abs())
                .fold(0.0, f32::max);
            assert!(
                gap < 0.2,
                "linear pooling must not separate classes, gap {gap}"
            );
        }
    }

    #[test]
    fn class_signal_is_visible_to_quadratic_correlation() {
        // The product of the two direction projections recovers s.
        let ds = SyntheticVision::new(16, 256, 2, 1, 3);
        // Ensure the fixture classes actually differ on cluster 0.
        if ds.signs[0][0] == ds.signs[1][0] {
            return;
        }
        let mut rng = Rng::seed(4);
        let (x, y) = ds.batch(12, &mut rng);
        let c = ds.channels();
        let t = ds.tokens_per_sample();
        let d1 = &ds.dirs1.as_slice()[..c];
        let d2 = &ds.dirs2.as_slice()[..c];
        let mut corr = [0.0f32; 2];
        let mut count = [0usize; 2];
        for (b, &label) in y.iter().enumerate() {
            for ti in 0..t {
                let row = &x.as_slice()[(b * t + ti) * c..][..c];
                let p1: f32 = row.iter().zip(d1).map(|(a, d)| a * d).sum();
                let p2: f32 = row.iter().zip(d2).map(|(a, d)| a * d).sum();
                corr[label] += p1 * p2;
                count[label] += 1;
            }
        }
        let m0 = corr[0] / count[0].max(1) as f32;
        let m1 = corr[1] / count[1].max(1) as f32;
        assert!(
            (m0 - m1).abs() > 0.02,
            "quadratic correlation must separate classes: {m0} vs {m1}"
        );
    }

    #[test]
    fn shifted_task_changes_distribution_but_not_shape() {
        let ds = SyntheticVision::new(8, 4, 5, 6, 1);
        let shifted = ds.shifted(99);
        let (x1, _) = ds.batch(4, &mut Rng::seed(5));
        let (x2, _) = shifted.batch(4, &mut Rng::seed(5));
        assert_eq!(x1.dims(), x2.dims());
        assert_ne!(x1, x2);
    }

    #[test]
    fn few_shot_is_balanced() {
        let ds = SyntheticVision::new(8, 4, 5, 6, 1);
        let mut rng = Rng::seed(6);
        let (x, y) = ds.few_shot(5, &mut rng);
        assert_eq!(y.len(), 25);
        assert_eq!(x.dims(), &[25 * 4, 8]);
        for class in 0..5 {
            assert_eq!(y.iter().filter(|&&l| l == class).count(), 5);
        }
    }
}
