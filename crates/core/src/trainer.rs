//! Training loops and evaluation protocols for the accuracy
//! experiments (Tables 9–13, Figures 1 and 25).

use tutel_tensor::{Rng, Tensor};

use crate::data::SyntheticVision;
use crate::model::{accuracy, cross_entropy, SwinLiteMoe};

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Linear warmup for `warmup` steps, then cosine decay to
    /// `floor_fraction · lr` at the final step (the schedule SwinV2-MoE
    /// trains with).
    CosineWithWarmup {
        /// Warmup steps.
        warmup: usize,
        /// Final LR as a fraction of the base LR.
        floor_fraction: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` out of `total` steps, given base
    /// rate `base`.
    pub fn lr_at(&self, base: f32, step: usize, total: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::CosineWithWarmup {
                warmup,
                floor_fraction,
            } => {
                if step < warmup && warmup > 0 {
                    base * (step + 1) as f32 / warmup as f32
                } else {
                    let span = total.saturating_sub(warmup).max(1) as f32;
                    let progress = (step.saturating_sub(warmup)) as f32 / span;
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress.min(1.0)).cos());
                    let floor = base * floor_fraction;
                    floor + (base - floor) * cos
                }
            }
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// SGD steps.
    pub steps: usize,
    /// Samples per step.
    pub batch: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Data-sampling seed.
    pub seed: u64,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 300,
            batch: 16,
            lr: 0.05,
            seed: 1234,
            schedule: LrSchedule::Constant,
        }
    }
}

/// Everything a training run records.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Cross-entropy loss per step.
    pub loss_curve: Vec<f32>,
    /// Final-window (last 10 %) mean training loss.
    pub final_loss: f32,
    /// Per-step, per-MoE-layer minimum no-drop capacity factor — the
    /// Figure 1 trace. Outer index: step; inner: MoE layer order.
    pub needed_factor_trace: Vec<Vec<f64>>,
}

/// Trains `model` on `dataset` in place and returns the run's stats.
///
/// # Panics
///
/// Panics if a forward/backward pass fails on internally generated
/// shapes (a bug, not a user error).
pub fn train(model: &mut SwinLiteMoe, dataset: &SyntheticVision, cfg: &TrainConfig) -> TrainStats {
    train_observed(model, dataset, cfg, &tutel_obs::Telemetry::disabled())
}

/// [`train`] with a telemetry handle: attaches `tel` to the model's
/// MoE layers and emits one [`tutel_obs::StepRecord`] per step —
/// loss, learning rate, summed aux loss, per-layer needed factors,
/// element-wise summed expert load, dropped-token total, and the
/// per-stage durations the layer spans accumulated during the step.
///
/// # Panics
///
/// Panics if a forward/backward pass fails on internally generated
/// shapes (a bug, not a user error).
/// Copies the cumulative `tutel-rt` pool and arena counters into a
/// telemetry-friendly snapshot (see [`tutel_obs::runtime`]).
pub fn runtime_snapshot() -> tutel_obs::RuntimeSnapshot {
    let pool = tutel_rt::pool_stats();
    let arena = tutel_rt::arena().stats();
    tutel_obs::RuntimeSnapshot {
        pool_workers: pool.workers,
        pool_jobs: pool.jobs,
        pool_chunks: pool.chunks,
        pool_utilization: pool.utilization(),
        pool_steals: pool.steals,
        arena_hit_rate: arena.hit_rate(),
        arena_retained_elems: arena.retained_elems,
        arena_evictions: arena.evictions,
    }
}

pub fn train_observed(
    model: &mut SwinLiteMoe,
    dataset: &SyntheticVision,
    cfg: &TrainConfig,
    tel: &tutel_obs::Telemetry,
) -> TrainStats {
    model.set_telemetry(tel.clone());
    let mut rng = Rng::seed(cfg.seed);
    let mut loss_curve = Vec::with_capacity(cfg.steps);
    let mut trace: Vec<Vec<f64>> = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        tel.begin_step(step as u64);
        let (x, y) = dataset.batch(cfg.batch, &mut rng);
        let (logits, aux, layer_tel) = model.forward(&x, cfg.batch).expect("forward");
        let (loss, d_logits) = cross_entropy(&logits, &y);
        loss_curve.push(loss);
        trace.push(layer_tel.iter().map(|t| t.needed_factor).collect());
        model.backward(&d_logits).expect("backward");
        let lr = cfg.schedule.lr_at(cfg.lr, step, cfg.steps);
        model.step(lr);
        if tel.is_enabled() {
            let mut expert_load: Vec<u64> = Vec::new();
            let mut dropped = 0u64;
            for t in &layer_tel {
                if expert_load.len() < t.expert_load.len() {
                    expert_load.resize(t.expert_load.len(), 0);
                }
                for (sum, &n) in expert_load.iter_mut().zip(&t.expert_load) {
                    *sum += n as u64;
                }
                dropped += t.dropped as u64;
            }
            tel.record_step(tutel_obs::StepRecord {
                step: step as u64,
                loss: loss as f64,
                lr: lr as f64,
                aux_loss: aux as f64,
                capacity_factor: layer_tel.first().map_or(0.0, |t| t.capacity_factor),
                needed_factors: trace.last().cloned().unwrap_or_default(),
                expert_load,
                dropped,
                stages: Vec::new(),
            });
            tutel_obs::record_runtime(tel, &runtime_snapshot());
        }
    }
    let window = (cfg.steps / 10).max(1);
    let final_loss = loss_curve.iter().rev().take(window).sum::<f32>() / window as f32;
    TrainStats {
        loss_curve,
        final_loss,
        needed_factor_trace: trace,
    }
}

/// Evaluates top-1 accuracy over `batches` held-out batches of 32
/// samples each.
///
/// # Panics
///
/// Panics if inference fails on internally generated shapes.
pub fn evaluate(model: &SwinLiteMoe, dataset: &SyntheticVision, batches: usize, seed: u64) -> f64 {
    evaluate_with_batch(model, dataset, batches, 32, seed)
}

/// [`evaluate`] with an explicit batch size. Any size down to a
/// single sample runs through the same inference path — batch size 1
/// is not a special case (the serving engine relies on this when it
/// re-batches straggling single requests).
///
/// # Panics
///
/// Panics if `batch` is zero or inference fails on internally
/// generated shapes.
pub fn evaluate_with_batch(
    model: &SwinLiteMoe,
    dataset: &SyntheticVision,
    batches: usize,
    batch: usize,
    seed: u64,
) -> f64 {
    assert!(batch > 0, "evaluation batch must be nonzero");
    let mut rng = Rng::seed(seed);
    let mut total = 0.0;
    for _ in 0..batches {
        let (x, y) = dataset.batch(batch, &mut rng);
        let logits = model.infer(&x, batch).expect("infer");
        total += accuracy(&logits, &y);
    }
    total / batches.max(1) as f64
}

/// The paper's 5-shot linear evaluation: freeze the backbone, extract
/// pooled features for `shots` samples per class, fit a linear
/// classifier by a few steps of softmax regression, report held-out
/// accuracy.
///
/// # Panics
///
/// Panics if feature extraction fails on internally generated shapes.
pub fn few_shot_linear_eval(
    model: &SwinLiteMoe,
    dataset: &SyntheticVision,
    shots: usize,
    seed: u64,
) -> f64 {
    let mut rng = Rng::seed(seed);
    let (x_train, y_train) = dataset.few_shot(shots, &mut rng);
    let n_train = y_train.len();
    let feats = model.features(&x_train, n_train).expect("features");
    let classes = dataset.classes();
    let dim = feats.dims()[1];

    // Softmax regression on frozen features.
    let mut w = Tensor::zeros(&[dim, classes]);
    let mut b = Tensor::zeros(&[classes]);
    for _ in 0..200 {
        let mut logits = feats.matmul(&w).expect("shapes");
        for row in logits.as_mut_slice().chunks_mut(classes) {
            for (v, bias) in row.iter_mut().zip(b.as_slice()) {
                *v += bias;
            }
        }
        let (_, grad) = cross_entropy(&logits, &y_train);
        let dw = feats.matmul_tn(&grad).expect("shapes");
        w.axpy(-0.5, &dw).expect("shapes");
        for (i, row) in grad.as_slice().chunks(classes).enumerate() {
            let _ = i;
            for (bg, g) in b.as_mut_slice().iter_mut().zip(row) {
                *bg -= 0.5 * g;
            }
        }
    }

    // Held-out evaluation.
    let batch = 32;
    let mut total = 0.0;
    let evals = 8;
    for _ in 0..evals {
        let (x, y) = dataset.batch(batch, &mut rng);
        let f = model.features(&x, batch).expect("features");
        let mut logits = f.matmul(&w).expect("shapes");
        for row in logits.as_mut_slice().chunks_mut(classes) {
            for (v, bias) in row.iter_mut().zip(b.as_slice()) {
                *v += bias;
            }
        }
        total += accuracy(&logits, &y);
    }
    total / evals as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SwinLiteConfig;
    use crate::MoeConfig;

    fn quick_setup(moe: bool) -> (SwinLiteMoe, SyntheticVision) {
        let mut cfg = SwinLiteConfig::new(8, 4, 3);
        cfg.channels = 12;
        cfg.hidden = 16;
        cfg.blocks = 2;
        if moe {
            cfg = cfg.with_moe(MoeConfig::new(0, 0, 4).with_capacity_factor(0.0));
        }
        let mut rng = Rng::seed(10);
        let model = SwinLiteMoe::new(&cfg, &mut rng).unwrap();
        let ds = SyntheticVision::new(8, 4, 3, 4, 11);
        (model, ds)
    }

    #[test]
    fn cosine_schedule_warms_up_then_decays() {
        let s = LrSchedule::CosineWithWarmup {
            warmup: 10,
            floor_fraction: 0.1,
        };
        let base = 1.0;
        // Warmup is increasing.
        assert!(s.lr_at(base, 0, 100) < s.lr_at(base, 5, 100));
        assert!(s.lr_at(base, 9, 100) <= base);
        // Peak right after warmup, then monotone decay to the floor.
        let peak = s.lr_at(base, 10, 100);
        assert!((peak - base).abs() < 1e-6);
        let mut last = peak;
        for step in 11..100 {
            let lr = s.lr_at(base, step, 100);
            assert!(lr <= last + 1e-6, "decay must be monotone at {step}");
            last = lr;
        }
        assert!((s.lr_at(base, 99, 100) - 0.1).abs() < 0.05);
        // Constant is constant.
        assert_eq!(LrSchedule::Constant.lr_at(0.3, 7, 100), 0.3);
    }

    #[test]
    fn cosine_schedule_trains() {
        let (mut model, ds) = quick_setup(true);
        let cfg = TrainConfig {
            steps: 60,
            batch: 8,
            lr: 0.08,
            seed: 9,
            schedule: LrSchedule::CosineWithWarmup {
                warmup: 5,
                floor_fraction: 0.05,
            },
        };
        let stats = train(&mut model, &ds, &cfg);
        assert!(stats.final_loss.is_finite());
        assert!(stats.final_loss < stats.loss_curve[0] * 1.2);
    }

    #[test]
    fn train_records_loss_and_telemetry() {
        let (mut model, ds) = quick_setup(true);
        let cfg = TrainConfig {
            steps: 30,
            batch: 8,
            lr: 0.05,
            seed: 1,
            ..TrainConfig::default()
        };
        let stats = train(&mut model, &ds, &cfg);
        assert_eq!(stats.loss_curve.len(), 30);
        assert_eq!(stats.needed_factor_trace.len(), 30);
        assert_eq!(stats.needed_factor_trace[0].len(), 1);
        assert!(stats.final_loss < stats.loss_curve[0] * 1.2);
    }

    #[test]
    fn training_is_seed_reproducible() {
        let (mut m1, ds) = quick_setup(true);
        let (mut m2, _) = quick_setup(true);
        let cfg = TrainConfig {
            steps: 10,
            batch: 8,
            lr: 0.05,
            seed: 2,
            ..TrainConfig::default()
        };
        let s1 = train(&mut m1, &ds, &cfg);
        let s2 = train(&mut m2, &ds, &cfg);
        assert_eq!(s1.loss_curve, s2.loss_curve);
    }

    #[test]
    fn evaluation_runs_and_bounds() {
        let (model, ds) = quick_setup(false);
        let acc = evaluate(&model, &ds, 2, 3);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn single_sample_batches_evaluate_through_the_same_path() {
        // Batch size 1 must not be a special case: a single-sample
        // evaluation runs the identical inference path and yields a
        // well-formed accuracy, and the MoE variant does too.
        for moe in [false, true] {
            let (model, ds) = quick_setup(moe);
            let acc = evaluate_with_batch(&model, &ds, 4, 1, 3);
            assert!((0.0..=1.0).contains(&acc), "batch-1 accuracy {acc}");
        }
        // The default entry point is exactly the batch-32 case.
        let (model, ds) = quick_setup(false);
        assert_eq!(
            evaluate(&model, &ds, 2, 3),
            evaluate_with_batch(&model, &ds, 2, 32, 3)
        );
    }

    #[test]
    fn few_shot_eval_beats_chance_after_training() {
        let (mut model, ds) = quick_setup(true);
        let cfg = TrainConfig {
            steps: 120,
            batch: 16,
            lr: 0.05,
            seed: 4,
            ..TrainConfig::default()
        };
        train(&mut model, &ds, &cfg);
        let acc = few_shot_linear_eval(&model, &ds, 5, 5);
        assert!(acc > 0.45, "few-shot accuracy {acc} (chance 0.33)");
    }
}
