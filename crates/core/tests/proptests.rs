//! Property-based tests for the core crate: Algorithm 2's search is
//! total and convergent, and the MoE layer is numerically robust under
//! arbitrary (valid) dynamic knob settings.

use proptest::prelude::*;
use tutel::pipeline::{OnlineStrategySearch, PipelineStrategy};
use tutel::{MoeConfig, MoeLayer};
use tutel_tensor::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_is_total_over_arbitrary_f_sequences(
        fs in proptest::collection::vec(0.01f64..64.0, 1..60),
        bucket_len in 0.1f64..8.0,
    ) {
        let mut search = OnlineStrategySearch::new(bucket_len);
        let space = PipelineStrategy::all();
        for (i, &f) in fs.iter().enumerate() {
            let s = search.next_strategy(f);
            prop_assert!(space.contains(&s), "returned an out-of-space strategy");
            // Synthetic measurement: deterministic in (f, s).
            let t = 1.0 + (s.degree as f64) * (f % 1.7) + if i % 3 == 0 { 0.1 } else { 0.0 };
            search.record(f, s, t);
        }
        prop_assert!(search.num_buckets() <= search.known_factors());
        prop_assert!(search.known_factors() <= fs.len());
    }

    #[test]
    fn search_converges_for_any_stationary_oracle(
        best_idx in 0usize..8,
        f in 0.1f64..16.0,
    ) {
        let space = PipelineStrategy::all();
        let best = space[best_idx];
        let mut search = OnlineStrategySearch::new(1.0);
        for _ in 0..=space.len() {
            let s = search.next_strategy(f);
            let t = if s == best { 1.0 } else { 2.0 };
            search.record(f, s, t);
        }
        prop_assert_eq!(search.next_strategy(f), best);
    }

    #[test]
    fn moe_layer_is_finite_under_arbitrary_valid_knobs(
        tokens in 1usize..24,
        experts in 1usize..6,
        k_off in 0usize..6,
        cap_arg in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_off % experts;
        // cap_arg near 0 means auto; route() requires nonzero handling
        // via from_arg (0.0 == AutoMin) — all values are valid.
        let cfg = MoeConfig::new(6, 8, experts)
            .with_top_k(k)
            .with_capacity_factor(if cap_arg.abs() < 0.05 { 0.0 } else { cap_arg });
        let mut rng = Rng::seed(seed);
        let mut layer = MoeLayer::new(&cfg, &mut rng).unwrap();
        let x = rng.normal_tensor(&[tokens, 6], 0.0, 1.0);
        let out = layer.forward(&x).unwrap();
        prop_assert!(out.output.max_abs().is_finite());
        prop_assert!(out.aux_loss.is_finite() && out.aux_loss >= 0.0);
        prop_assert!((0.0..=1.0).contains(&out.survival_rate));
        let dx = layer.backward(&out.output).unwrap();
        prop_assert!(dx.max_abs().is_finite());
        layer.step(0.01);
        let out2 = layer.infer(&x).unwrap();
        prop_assert!(out2.output.max_abs().is_finite());
    }

    #[test]
    fn gate_weights_of_survivors_bound_output_norm(
        tokens in 1usize..16,
        experts in 2usize..5,
        seed in any::<u64>(),
    ) {
        // With identity-ish small weights the layer output norm stays
        // within a constant of the input norm (no amplification blowup
        // from routing).
        let cfg = MoeConfig::new(5, 6, experts).with_capacity_factor(0.0);
        let mut rng = Rng::seed(seed);
        let layer = MoeLayer::new(&cfg, &mut rng).unwrap();
        let x = rng.normal_tensor(&[tokens, 5], 0.0, 1.0);
        let out = layer.infer(&x).unwrap();
        prop_assert!(out.output.sq_norm().sqrt() <= 50.0 * (1.0 + x.sq_norm().sqrt()));
    }
}
