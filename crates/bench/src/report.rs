//! Plain-text table rendering for the `repro_*` binaries.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use tutel_bench::Table;
///
/// let mut t = Table::new("Demo", &["x", "y"]);
/// t.row(&["1".into(), "2".into()]);
/// let s = t.render();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats seconds adaptively (µs/ms/s).
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats bytes adaptively (KiB/MiB/GiB).
pub fn fmt_bytes(bytes: f64) -> String {
    const KIB: f64 = 1024.0;
    if bytes >= KIB * KIB * KIB {
        format!("{:.2}GiB", bytes / (KIB * KIB * KIB))
    } else if bytes >= KIB * KIB {
        format!("{:.1}MiB", bytes / (KIB * KIB))
    } else {
        format!("{:.0}KiB", bytes / KIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "longheader"]);
        t.row(&["12345".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("12345"));
        assert!(s.contains("longheader"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new("T", &["a", "b"]).row(&["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_time(5e-6), "5.0us");
        assert_eq!(fmt_time(0.0123), "12.30ms");
        assert_eq!(fmt_time(2.5), "2.500s");
        assert_eq!(fmt_speedup(3.519), "3.52x");
        assert_eq!(fmt_pct(0.337), "33.7%");
        assert_eq!(fmt_bytes(1024.0 * 1024.0), "1.0MiB");
        assert_eq!(fmt_bytes(2.0 * 1024.0 * 1024.0 * 1024.0), "2.00GiB");
    }
}
