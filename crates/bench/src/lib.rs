//! Benchmark harness regenerating every table and figure of the Tutel
//! paper's evaluation (Section 5), on the simulated cluster substrate.
//!
//! Each experiment lives in [`experiments`] as a pure function
//! returning printable rows, consumed by:
//!
//! * the `repro_*` binaries (one per table/figure — run
//!   `cargo run -p tutel-bench --bin repro_all --release` for the full
//!   sweep), and
//! * the Criterion benches under `benches/` for the experiments where
//!   real CPU wall-clock is the measurement (e.g. Figure 24's kernel
//!   comparison).
//!
//! Absolute numbers will differ from the paper (its testbed is 2,048
//! real A100s; ours is a calibrated simulator) — the claim, recorded in
//! EXPERIMENTS.md, is *shape* fidelity: orderings, crossover locations,
//! and rough ratios.

pub mod experiments;
pub mod report;

pub use report::Table;
