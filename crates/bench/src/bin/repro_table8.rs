//! Regenerates table8 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::layer_scaling::table8().print();
}
