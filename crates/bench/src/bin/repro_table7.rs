//! Regenerates table7 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::pipelining::table7(false).print();
    tutel_bench::experiments::pipelining::table7(true).print();
}
