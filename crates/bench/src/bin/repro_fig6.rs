//! Regenerates fig6 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::micro::fig6a().print();
    tutel_bench::experiments::micro::fig6b().print();
}
