//! Regenerates the ablation studies (DESIGN.md §6).

fn main() {
    tutel_bench::experiments::ablations::ablation_interference().print();
    tutel_bench::experiments::ablations::ablation_msccl_fusion().print();
    tutel_bench::experiments::ablations::ablation_three_dh().print();
    tutel_bench::experiments::ablations::ablation_bucket_length().print();
}
