//! Regenerates fig5 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::pipelining::fig5().print();
}
