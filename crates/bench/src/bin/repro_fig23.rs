//! Regenerates fig23 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::layer_scaling::fig23().print();
    tutel_bench::experiments::layer_scaling::fig23_replicated().print();
}
