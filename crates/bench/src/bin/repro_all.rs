//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `cargo run -p tutel-bench --release --bin repro_all [steps]`
//! where `steps` is the training budget for the accuracy experiments
//! (default 300).

use tutel_bench::experiments::{
    ablations, accuracy, kernels, layer_scaling, micro, parallelism, pipelining,
};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("# Tutel reproduction sweep (training budget: {steps} steps)\n");

    println!("## Micro-benchmarks\n");
    micro::table1().print();
    micro::fig6a().print();
    micro::fig6b().print();
    micro::fig7().print();
    micro::fig10().print();
    micro::fig20().print();
    micro::fig21().print();
    micro::table4().print();

    println!("## Adaptive parallelism\n");
    parallelism::fig3().print();
    parallelism::table5a().print();
    parallelism::table5b().print();

    println!("## Adaptive pipelining\n");
    pipelining::fig5().print();
    pipelining::table7(false).print();
    pipelining::table7(true).print();
    pipelining::fig22().print();

    println!("## Single-layer scaling & end-to-end speed\n");
    layer_scaling::fig23().print();
    layer_scaling::fig23_replicated().print();
    layer_scaling::table8().print();

    println!("## Kernels\n");
    kernels::fig24_cpu().print();
    kernels::fig24_gpu_model().print();

    println!("## Ablations (DESIGN.md \u{a7}6)\n");
    ablations::ablation_interference().print();
    ablations::ablation_msccl_fusion().print();
    ablations::ablation_three_dh().print();
    ablations::ablation_bucket_length().print();

    println!("## Accuracy experiments (synthetic substitute for ImageNet/COCO)\n");
    for t in accuracy::fig1(steps) {
        t.print();
    }
    accuracy::table9(steps).print();
    accuracy::table10(steps).print();
    accuracy::table11(steps).print();
    accuracy::table12(steps).print();
    accuracy::table13(steps).print();
    accuracy::fig25(steps).print();
}
