//! Regenerates fig24 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::kernels::fig24_cpu().print();
    tutel_bench::experiments::kernels::fig24_gpu_model().print();
}
