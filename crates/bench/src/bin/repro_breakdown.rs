//! Per-stage breakdown of one modeled MoE iteration across scales,
//! printed as a table and written to `BENCH_breakdown.json` (pass an
//! argument to choose a different output path).

use tutel_bench::experiments::breakdown;
use tutel_obs::Telemetry;

fn main() {
    let tel = Telemetry::enabled();
    let rows = breakdown::breakdown_rows(&tel);
    breakdown::breakdown_table(&rows).print();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_breakdown.json".to_string());
    let json = breakdown::breakdown_json(&rows, &tel).to_json();
    std::fs::write(&path, json + "\n").expect("write breakdown json");
    println!(
        "wrote {path} ({} rows, * = chosen by the search)",
        rows.len()
    );
}
