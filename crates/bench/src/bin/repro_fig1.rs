//! Regenerates Figure 1 (dynamic capacity telemetry during training).

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    for t in tutel_bench::experiments::accuracy::fig1(steps) {
        t.print();
    }
}
