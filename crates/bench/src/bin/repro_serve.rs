//! Serving goodput sweep: continuous batching vs one-request-at-a-time
//! over the seeded open-loop traces, printed as a table and written to
//! `BENCH_serve.json` (pass an argument to choose a different path).
//!
//! The per-rank compute worker count comes from `TUTEL_THREADS`
//! (default 1). Every reported number lives on the engine's virtual
//! clock, so the deterministic digest printed at the end must be
//! identical at any thread setting — CI compares it at 1 and 4.
//!
//! Exits non-zero unless continuous batching beats the serial engine's
//! goodput at every offered load level — the acceptance criterion,
//! enforced.

use std::process::ExitCode;

use tutel_bench::experiments::serving;
use tutel_obs::Telemetry;

fn main() -> ExitCode {
    let threads = std::env::var("TUTEL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(1);
    let tel = Telemetry::enabled();
    let results = match serving::sweep(threads, &tel) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serving sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    serving::sweep_table(&results).print();

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let json = serving::sweep_json(&results, threads).to_json();
    if let Err(e) = std::fs::write(&path, json + "\n") {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {path} ({} load levels, threads={threads})",
        results.len()
    );
    println!("serve digest: {:016x}", serving::digest(&results));

    let mut ok = true;
    for r in &results {
        if !r.continuous_beats_serial() {
            eprintln!(
                "FAIL {}: continuous goodput {:.0} t/s does not beat serial {:.0} t/s",
                r.level.label, r.continuous.goodput_tps, r.serial.goodput_tps
            );
            ok = false;
        }
    }
    if ok {
        println!("serving acceptance: continuous beats serial at every load level — pass");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
