//! Regenerates table5 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::parallelism::table5a().print();
    tutel_bench::experiments::parallelism::table5b().print();
}
