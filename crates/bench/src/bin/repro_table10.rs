//! Regenerates table10 (accuracy experiment on the synthetic substitute).

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    tutel_bench::experiments::accuracy::table10(steps).print();
}
