//! Regenerates fig20 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::micro::fig20().print();
}
