//! Executed adaptive-pipelining sweep: every (All-to-All algorithm ×
//! degree) strategy run through the overlap executor on the threaded
//! runtime, priced under the link model, with the measured search's
//! audit trail. Printed as a table and written to
//! `BENCH_pipeline.json` (pass an argument to choose a different
//! output path).
//!
//! Exits non-zero if any cell's best overlapped strategy fails to
//! beat the degree-1 baseline, or if the search's converged choice
//! is not the measured argmin — the acceptance criteria, enforced.

use std::process::ExitCode;

use tutel_bench::experiments::overlap_sweep;
use tutel_obs::Telemetry;

fn main() -> ExitCode {
    let tel = Telemetry::enabled();
    let cells = overlap_sweep::sweep(&tel);
    overlap_sweep::sweep_table(&cells).print();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let json = overlap_sweep::sweep_json(&cells, &tel).to_json();
    std::fs::write(&path, json + "\n").expect("write pipeline json");
    println!(
        "wrote {path} ({} cells, * = chosen by the measured search)",
        cells.len()
    );
    let mut ok = true;
    for cell in &cells {
        if cell.best_overlapped_link_s >= cell.baseline_link_s {
            eprintln!(
                "FAIL world={} tokens={}: best overlapped {:.6}s does not beat degree-1 {:.6}s",
                cell.world, cell.tokens, cell.best_overlapped_link_s, cell.baseline_link_s
            );
            ok = false;
        }
        if cell.chosen != cell.measured_best {
            eprintln!(
                "FAIL world={} tokens={}: chosen {} != measured argmin {}",
                cell.world, cell.tokens, cell.chosen, cell.measured_best
            );
            ok = false;
        }
    }
    if ok {
        println!("pipeline overlap acceptance: pass");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
