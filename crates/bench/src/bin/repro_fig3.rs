//! Regenerates fig3 of the paper. See `repro_all` for the full sweep.

fn main() {
    tutel_bench::experiments::parallelism::fig3().print();
}
