//! Token-imbalance sweep: dropless grouped GEMM vs the padded
//! capacity twin over a uniform → Zipf → single-hot skew ladder,
//! printed as a table and merged into the `grouped_gemm` section of
//! `BENCH_compute.json` (pass an argument to choose a different path).
//!
//! The per-rank compute worker count comes from `TUTEL_THREADS`
//! (default 1). The grouped outputs are bitwise-invariant to both the
//! worker count and `TUTEL_SIMD`, so the deterministic digest printed
//! at the end must be identical across the whole CI sweep; with
//! `--digest-only` the timing loops (and the JSON write) are skipped
//! and only the digest is produced.
//!
//! Exits non-zero unless the acceptance criteria hold: grouped stays
//! flat across the ladder (≤ 1.10× its uniform time at max skew),
//! padded cliffs (≥ 1.5×), and grouped beats padded at every skew
//! level from Zipf(1.0) up — with grouped and padded rows bitwise
//! equal at every rung.

use std::process::ExitCode;

use tutel_bench::experiments::dropless;

fn main() -> ExitCode {
    let threads = std::env::var("TUTEL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(1);
    let mut digest_only = false;
    let mut path = "BENCH_compute.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--digest-only" {
            digest_only = true;
        } else {
            path = arg;
        }
    }

    let points = match dropless::sweep(threads, !digest_only) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dropless sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("dropless digest: {:016x}", dropless::digest(&points));
    if digest_only {
        return if points.iter().all(|p| p.bitwise) {
            ExitCode::SUCCESS
        } else {
            eprintln!("FAIL: grouped vs padded rows diverged in digest-only run");
            ExitCode::FAILURE
        };
    }

    dropless::sweep_table(&points).print();
    if let Err(e) = dropless::merge_section(&path, dropless::grouped_gemm_section(&points, threads))
    {
        eprintln!("failed to update {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("merged grouped_gemm section into {path} (threads={threads})");

    let failures = dropless::failures(&points);
    if failures.is_empty() {
        println!(
            "dropless acceptance: grouped flat, padded cliffs, grouped wins from Zipf(1.0) — pass"
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
