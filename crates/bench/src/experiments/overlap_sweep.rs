//! Executed-overlap degree sweep: the adaptive-pipelining experiment
//! run through [`tutel::overlap::run_overlapped`] on the threaded
//! runtime, rather than through the simgpu model.
//!
//! # The link model
//!
//! The CI host is a single core, so the channel transport inside
//! [`run_threaded`] is a synchronous memcpy — "communication" costs
//! the same core the compute runs on and raw wall-clock cannot show
//! an overlap win. The sweep therefore replays each *executed*
//! schedule under a receiver-deadline link model: every chunk's
//! All-to-All occupies a single full-duplex link for
//! `bytes / LINK_BYTES_PER_S` seconds, transfers are served in the
//! exact order the executed schedule issued them, and a chunk's
//! compute starts no earlier than its dispatch finishes on the link.
//! The *measured* per-chunk compute times from the real execution are
//! consumed verbatim; only the transport is modeled, and the same
//! rules price every strategy — serial degree-1 pays
//! `transfer + compute + transfer` with the link idle during compute,
//! while a pipelined schedule keeps the link busy behind the FFN.
//!
//! The resulting `link_wall_s` is the wall-clock the acceptance
//! criteria compare, and the number fed to
//! [`MeasuredStrategySearch`] so the online search ranks strategies
//! by executed evidence.

use tutel::overlap::run_overlapped;
use tutel::pipeline::{LayerDims, MeasuredStrategySearch, PipelineStrategy, PipelineTimeModel};
use tutel_comm::runtime::run_threaded;
use tutel_comm::{CollectiveTiming, World};
use tutel_obs::json::Value;
use tutel_obs::Telemetry;
use tutel_simgpu::Topology;
use tutel_tensor::Tensor;

use crate::report::fmt_time;
use crate::Table;

/// Model dimension of the sweep workload; small enough that the full
/// sweep runs inside CI.
pub const MODEL_DIM: usize = 64;

/// Modeled link bandwidth (bytes per second, each direction).
/// Deliberately slow relative to the FFN so transfer and compute are
/// the same order of magnitude — the regime where pipelining matters.
pub const LINK_BYTES_PER_S: f64 = 32.0 * 1024.0 * 1024.0;

/// World sizes the sweep executes (threaded ranks, not modeled GPUs).
pub const WORLDS: [usize; 2] = [2, 4];

/// Per-rank token counts the sweep executes.
pub const TOKENS: [usize; 2] = [64, 256];

/// Same world → topology mapping as the conformance harness.
fn topology_for(world: usize) -> Topology {
    match world {
        1 => Topology::single_node(1),
        2 => Topology::new(2, 1),
        w => Topology::new(2, w / 2),
    }
}

/// The sweep workload as [`LayerDims`], for the search's model prior.
fn dims_for(tokens: usize) -> LayerDims {
    LayerDims {
        tokens,
        model_dim: MODEL_DIM,
        hidden_dim: MODEL_DIM,
        local_experts: 1,
        k: 1,
        capacity_factor: 1.0,
    }
}

/// One executed (world, tokens, strategy) measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Threaded world size.
    pub world: usize,
    /// Tokens per rank.
    pub tokens: usize,
    /// The strategy executed.
    pub strategy: PipelineStrategy,
    /// Raw executed wall-clock of the slowest rank (memcpy transport;
    /// reported for honesty, not compared).
    pub exec_wall_s: f64,
    /// The executed schedule replayed under the link model — the
    /// number the acceptance criteria and the search rank by.
    pub link_wall_s: f64,
    /// Sum of measured per-chunk compute seconds on the slowest rank.
    pub compute_s: f64,
}

/// Replays one rank's executed schedule under the link model.
///
/// Events follow the executed two-stream schedule's issue order
/// exactly: `disp[0]`, then per iteration `i` — `disp[i+1]` issued at
/// the top (before chunk `i`'s compute), compute once `disp[i]`'s
/// transfer lands, `comb[i]` issued at compute end. The single
/// full-duplex link serves transfers FIFO in that order; the wall is
/// the last combine's arrival.
fn link_wall(chunk_compute_s: &[f64], chunk_bytes: f64) -> f64 {
    let d = chunk_compute_s.len();
    if d == 0 {
        return 0.0;
    }
    let tx = chunk_bytes / LINK_BYTES_PER_S;
    let mut link_free = 0.0f64;
    let serve = |issued: f64, link_free: &mut f64| {
        let done = issued.max(*link_free) + tx;
        *link_free = done;
        done
    };
    let mut disp_done = vec![0.0f64; d];
    disp_done[0] = serve(0.0, &mut link_free);
    let mut now = 0.0f64;
    let mut last_comb = 0.0f64;
    for (i, &compute_s) in chunk_compute_s.iter().enumerate() {
        if i + 1 < d {
            disp_done[i + 1] = serve(now, &mut link_free);
        }
        now = now.max(disp_done[i]) + compute_s;
        last_comb = serve(now, &mut link_free);
    }
    now.max(last_comb)
}

/// Deterministic per-rank expert weight (no RNG: the sweep must give
/// the same outputs on every run and thread count).
fn weight(rank: usize) -> Tensor {
    let data: Vec<f32> = (0..MODEL_DIM * MODEL_DIM)
        .map(|i| {
            let v = ((i * 37 + rank * 101 + 13) % 211) as f32 / 211.0 - 0.5;
            v * 0.125
        })
        .collect();
    Tensor::from_vec(data, &[MODEL_DIM, MODEL_DIM]).expect("square weight")
}

/// Deterministic per-rank input rows, split into `degree` chunks.
fn input_chunks(rank: usize, tokens: usize, degree: usize) -> Vec<Vec<f32>> {
    let rows_per_chunk = tokens / degree;
    (0..degree)
        .map(|c| {
            (0..rows_per_chunk * MODEL_DIM)
                .map(|i| {
                    let v = ((rank * 7919 + c * 977 + i * 31) % 997) as f32 / 997.0 - 0.5;
                    v * 0.25
                })
                .collect()
        })
        .collect()
}

/// Executes one strategy on the threaded runtime and prices it under
/// the link model.
///
/// # Panics
///
/// Panics if `tokens` is not divisible by `world * degree` (the sweep
/// grids are chosen so it always is) or if a collective fails on the
/// fault-free runtime.
pub fn run_point(world: usize, tokens: usize, strategy: PipelineStrategy) -> SweepPoint {
    let degree = strategy.degree.max(1);
    assert_eq!(
        tokens % (world * degree),
        0,
        "sweep grid must divide evenly"
    );
    let rows_per_chunk = tokens / degree;
    let chunk_bytes = (rows_per_chunk * MODEL_DIM * std::mem::size_of::<f32>()) as f64;
    let algo = strategy.algo;
    let topo = topology_for(world);
    let per_rank: Vec<(f64, Vec<f64>)> = run_threaded(topo, move |mut comm| {
        let w = weight(comm.rank());
        let input = input_chunks(comm.rank(), tokens, degree);
        let run = run_overlapped(&mut comm, algo, &input, |_, flex| {
            let x = Tensor::from_vec(flex, &[rows_per_chunk, MODEL_DIM]).expect("chunk shape");
            x.matmul(&w).expect("ffn gemm").as_slice().to_vec()
        })
        .expect("fault-free sweep collective");
        (run.wall_s, run.chunk_compute_s)
    });
    let exec_wall_s = per_rank.iter().map(|(w, _)| *w).fold(0.0, f64::max);
    // The slowest rank defines the step under both transports.
    let (link_wall_s, compute_s) = per_rank
        .iter()
        .map(|(_, chunks)| (link_wall(chunks, chunk_bytes), chunks.iter().sum::<f64>()))
        .fold((0.0f64, 0.0f64), |(lw, cs), (l, c)| (lw.max(l), cs.max(c)));
    SweepPoint {
        world,
        tokens,
        strategy,
        exec_wall_s,
        link_wall_s,
        compute_s,
    }
}

/// One (world, tokens) cell: all eight strategies executed in the
/// order the measured search probed them, plus the converged choice.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Threaded world size.
    pub world: usize,
    /// Tokens per rank.
    pub tokens: usize,
    /// Executed points, in probe order.
    pub points: Vec<SweepPoint>,
    /// The search's converged choice (all eight measured).
    pub chosen: PipelineStrategy,
    /// The measured argmin — must equal `chosen`.
    pub measured_best: PipelineStrategy,
    /// Link-model wall of the serial degree-1 baseline.
    pub baseline_link_s: f64,
    /// Link-model wall of the best overlapped (degree > 1) strategy.
    pub best_overlapped_link_s: f64,
}

impl SweepCell {
    /// Speedup of the best overlapped strategy over degree-1 serial.
    pub fn speedup(&self) -> f64 {
        self.baseline_link_s / self.best_overlapped_link_s
    }
}

/// Runs the full sweep: for each (world, tokens) cell the measured
/// search explores all eight strategies (model prior picks the probe
/// order), each probe is executed through the overlap executor and
/// recorded, then the converged decision is appended to `tel`'s audit
/// log with its measured-vs-predicted delta.
pub fn sweep(tel: &Telemetry) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    // Each executed probe is one training step: stamping the step
    // before the decision is what gives every `pipeline.measured`
    // audit record a non-null `step`.
    let mut step: u64 = 0;
    for world in WORLDS {
        for tokens in TOKENS {
            let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(world)));
            let mut search = MeasuredStrategySearch::new(0.25, model);
            let dims = dims_for(tokens);
            let mut points = Vec::new();
            for _ in 0..PipelineStrategy::all().len() {
                tel.begin_step(step);
                step += 1;
                let strategy = search.next_strategy_observed(&dims, tel);
                let point = run_point(world, tokens, strategy);
                search.record_observed(dims.capacity_factor, strategy, point.link_wall_s, tel);
                points.push(point);
            }
            tel.begin_step(step);
            step += 1;
            let chosen = search.next_strategy_observed(&dims, tel);
            let measured_best = search
                .measured_best(dims.capacity_factor)
                .map(|(s, _)| s)
                .expect("all eight strategies measured");
            let baseline_link_s = points
                .iter()
                .filter(|p| p.strategy.degree == 1 && p.strategy == PipelineStrategy::baseline())
                .map(|p| p.link_wall_s)
                .fold(f64::INFINITY, f64::min);
            let best_overlapped_link_s = points
                .iter()
                .filter(|p| p.strategy.degree > 1)
                .map(|p| p.link_wall_s)
                .fold(f64::INFINITY, f64::min);
            cells.push(SweepCell {
                world,
                tokens,
                points,
                chosen,
                measured_best,
                baseline_link_s,
                best_overlapped_link_s,
            });
        }
    }
    cells
}

/// The sweep as a printable table.
pub fn sweep_table(cells: &[SweepCell]) -> Table {
    let mut t = Table::new(
        "Executed overlap degree sweep (link-model wall-clock)",
        &[
            "world",
            "tokens",
            "strategy",
            "compute",
            "exec",
            "link-wall",
            "note",
        ],
    );
    for cell in cells {
        for p in &cell.points {
            let mut note = String::new();
            if p.strategy == cell.chosen {
                note.push('*');
            }
            if p.strategy == PipelineStrategy::baseline() {
                note.push_str(" base");
            }
            t.row(&[
                p.world.to_string(),
                p.tokens.to_string(),
                p.strategy.to_string(),
                fmt_time(p.compute_s),
                fmt_time(p.exec_wall_s),
                fmt_time(p.link_wall_s),
                note.trim().to_string(),
            ]);
        }
    }
    t
}

/// The sweep (plus the search's audit records) as the JSON document
/// for `BENCH_pipeline.json`.
pub fn sweep_json(cells: &[SweepCell], tel: &Telemetry) -> Value {
    let cell_values: Vec<Value> = cells
        .iter()
        .map(|cell| {
            let rows: Vec<Value> = cell
                .points
                .iter()
                .map(|p| {
                    Value::obj([
                        ("strategy", Value::from(p.strategy.to_string())),
                        ("degree", Value::from(p.strategy.degree)),
                        ("compute_s", Value::from(p.compute_s)),
                        ("exec_wall_s", Value::from(p.exec_wall_s)),
                        ("link_wall_s", Value::from(p.link_wall_s)),
                    ])
                })
                .collect();
            Value::obj([
                ("world", Value::from(cell.world)),
                ("tokens", Value::from(cell.tokens)),
                ("points", Value::Arr(rows)),
                ("chosen", Value::from(cell.chosen.to_string())),
                ("measured_best", Value::from(cell.measured_best.to_string())),
                ("baseline_link_s", Value::from(cell.baseline_link_s)),
                (
                    "best_overlapped_link_s",
                    Value::from(cell.best_overlapped_link_s),
                ),
                ("speedup", Value::from(cell.speedup())),
                (
                    "overlap_beats_baseline",
                    Value::Bool(cell.best_overlapped_link_s < cell.baseline_link_s),
                ),
            ])
        })
        .collect();
    let decisions: Vec<Value> = tel
        .decisions()
        .iter()
        .map(|d| tutel_obs::Event::Decision(d.clone()).to_value())
        .collect();
    Value::obj([
        ("experiment", Value::from("pipeline_overlap")),
        ("model_dim", Value::from(MODEL_DIM)),
        ("link_bytes_per_s", Value::from(LINK_BYTES_PER_S)),
        ("cells", Value::Arr(cell_values)),
        ("decisions", Value::Arr(decisions)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_model_prices_serial_as_transfer_compute_transfer() {
        // Degree 1: one dispatch, the compute, one combine — nothing
        // overlaps, so the wall is the exact sum.
        let tx = 1024.0 / LINK_BYTES_PER_S;
        let wall = link_wall(&[0.005], 1024.0);
        assert!((wall - (2.0 * tx + 0.005)).abs() < 1e-12);
    }

    #[test]
    fn link_model_overlaps_higher_degrees() {
        // Same total bytes and compute re-chunked at degree 4: the
        // pipelined schedule must be strictly cheaper than serial.
        let total_bytes = 64.0 * 1024.0;
        let serial = link_wall(&[0.004], total_bytes);
        let pipelined = link_wall(&[0.001; 4], total_bytes / 4.0);
        assert!(
            pipelined < serial,
            "pipelined {pipelined} vs serial {serial}"
        );
    }

    #[test]
    fn link_model_handles_empty_schedule() {
        assert_eq!(link_wall(&[], 1024.0), 0.0);
    }

    #[test]
    fn executed_point_runs_on_the_threaded_runtime() {
        let p = run_point(2, 64, PipelineStrategy::baseline());
        assert!(p.exec_wall_s > 0.0);
        assert!(p.compute_s > 0.0);
        assert!(p.link_wall_s > p.compute_s, "link model adds transfer");
    }

    #[test]
    fn sweep_chosen_matches_measured_argmin_and_beats_baseline() {
        let tel = Telemetry::enabled();
        // One cell keeps the test fast; the repro binary runs the grid.
        let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(2)));
        let mut search = MeasuredStrategySearch::new(0.25, model);
        let dims = dims_for(64);
        let mut points = Vec::new();
        for step in 0..PipelineStrategy::all().len() {
            tel.begin_step(step as u64);
            let s = search.next_strategy_observed(&dims, &tel);
            let p = run_point(2, 64, s);
            search.record_observed(dims.capacity_factor, s, p.link_wall_s, &tel);
            points.push(p);
        }
        tel.begin_step(PipelineStrategy::all().len() as u64);
        let chosen = search.next_strategy_observed(&dims, &tel);
        let best = search.measured_best(dims.capacity_factor).unwrap().0;
        assert_eq!(chosen, best, "converged choice is the measured argmin");
        let decisions = tel.decisions();
        for (i, rec) in decisions.iter().enumerate() {
            assert_eq!(rec.kind, "pipeline.measured");
            assert_eq!(rec.step, Some(i as u64), "step threaded into record {i}");
            assert!(
                rec.measured_s.is_some(),
                "record {i} backfilled once its probe executed"
            );
        }
        let rec = decisions.last().unwrap();
        assert_eq!(rec.chosen, chosen.to_string());
        let baseline = points
            .iter()
            .find(|p| p.strategy == PipelineStrategy::baseline())
            .unwrap()
            .link_wall_s;
        let best_overlapped = points
            .iter()
            .filter(|p| p.strategy.degree > 1)
            .map(|p| p.link_wall_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_overlapped < baseline,
            "overlap must win under the link model: {best_overlapped} vs {baseline}"
        );
    }
}
