//! Serving throughput experiment: continuous batching vs
//! one-request-at-a-time execution over seeded open-loop traces.
//!
//! Every load level replays the *same* seeded trace through two
//! engines that differ only in the batcher — continuous (eight slots,
//! fill-or-timeout admission) against [`BatcherConfig::serial`] — and
//! records the latency distribution, deadline misses, and goodput
//! (deadline-meeting token rows per virtual second). Time is the
//! engine's virtual clock, so every number in `BENCH_serve.json` is a
//! pure function of the seed: the deterministic digest printed at the
//! end must not move across `TUTEL_THREADS` settings (the CI gate
//! compares it at 1 and 4 worker threads).
//!
//! The acceptance criterion is the paper's continuous-batching
//! argument made executable: the per-step floor
//! (dispatch/combine launch overhead) is paid once per micro-batch,
//! so co-scheduling requests amortizes it and goodput must win at
//! **every** offered load level, from near-saturation to overload.

use tutel_obs::json::Value;
use tutel_obs::Telemetry;
use tutel_serve::batcher::BatcherConfig;
use tutel_serve::engine::{run_trace, EngineConfig, ServeReport, ServiceModel};
use tutel_serve::exec::{ExecConfig, Strategy};
use tutel_serve::loadgen::{generate_trace, Arrival, TraceConfig};
use tutel_serve::model::{ModelDims, ServeModel};
use tutel_serve::request::ServeError;

use crate::report::fmt_time;
use crate::Table;

/// Trace seed; the entire experiment is a function of this value.
pub const SEED: u64 = 0x5E41;

/// Requests per load level.
pub const REQUESTS: usize = 48;

/// Per-request deadline budget (virtual µs).
pub const DEADLINE_US: u64 = 15_000;

/// One offered-load level of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct LoadLevel {
    /// Row label, e.g. `poisson@8k`.
    pub label: &'static str,
    /// Arrival process replayed at this level.
    pub arrivals: Arrival,
}

/// The sweep: Poisson from near serial saturation to deep overload,
/// plus the bursty and diurnal adversaries from the load generator.
pub const LEVELS: [LoadLevel; 5] = [
    LoadLevel {
        label: "poisson@4k",
        arrivals: Arrival::OpenPoisson {
            rate_per_s: 4_000.0,
        },
    },
    LoadLevel {
        label: "poisson@8k",
        arrivals: Arrival::OpenPoisson {
            rate_per_s: 8_000.0,
        },
    },
    LoadLevel {
        label: "poisson@16k",
        arrivals: Arrival::OpenPoisson {
            rate_per_s: 16_000.0,
        },
    },
    LoadLevel {
        label: "bursty8",
        arrivals: Arrival::Bursty {
            burst: 8,
            idle_us: 1_500,
        },
    },
    LoadLevel {
        label: "diurnal",
        arrivals: Arrival::Diurnal {
            trough_per_s: 2_000.0,
            peak_per_s: 16_000.0,
            period_us: 8_000,
        },
    },
];

/// The scheduling-relevant slice of a [`ServeReport`].
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Median end-to-end latency, virtual µs.
    pub p50_us: u64,
    /// 99th-percentile latency, virtual µs.
    pub p99_us: u64,
    /// Deadline-meeting token rows per virtual second.
    pub goodput_tps: f64,
    /// Completed requests that missed their deadline.
    pub misses: u64,
    /// Micro-batch steps executed.
    pub steps: u64,
    /// Total All-to-All payload elements.
    pub a2a_elems: u64,
}

impl ServeSummary {
    fn from_report(r: &ServeReport) -> ServeSummary {
        ServeSummary {
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            goodput_tps: r.goodput_tps,
            misses: r.deadline_misses,
            steps: r.steps,
            a2a_elems: r.a2a_elems,
        }
    }
}

/// Both engines' summaries for one load level.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// The level replayed.
    pub level: LoadLevel,
    /// Continuous batcher (eight slots, 100 µs patience).
    pub continuous: ServeSummary,
    /// One request-token per step.
    pub serial: ServeSummary,
}

impl LoadResult {
    /// The acceptance criterion at this level.
    pub fn continuous_beats_serial(&self) -> bool {
        self.continuous.goodput_tps > self.serial.goodput_tps
    }
}

/// The distributed step both engines run: P1 over two threaded ranks
/// with a degree-2 pipeline, `threads` compute workers per rank.
fn exec_config(threads: usize) -> ExecConfig {
    ExecConfig {
        strategy: Strategy::P1,
        algo: tutel_comm::AllToAllAlgo::Linear,
        degree: 2,
        world: 2,
        threads,
        dropless: true,
    }
}

fn engine_config(batcher: BatcherConfig, threads: usize) -> EngineConfig {
    EngineConfig {
        batcher,
        service: ServiceModel {
            step_floor_us: 100,
            per_token_us: 10,
        },
        queue_capacity: REQUESTS * 2,
        exec: exec_config(threads),
    }
}

fn continuous_batcher() -> BatcherConfig {
    BatcherConfig {
        max_batch_tokens: 8,
        max_inflight: 8,
        admit_timeout_us: 100,
    }
}

/// Runs one level through both engines on the same seeded trace.
///
/// # Errors
///
/// Propagates engine failures.
pub fn run_level(
    model: &ServeModel,
    level: &LoadLevel,
    threads: usize,
    tel: &Telemetry,
) -> Result<LoadResult, ServeError> {
    let trace = TraceConfig {
        arrivals: level.arrivals,
        requests: REQUESTS,
        tokens_min: 1,
        tokens_max: 4,
        deadline_us: DEADLINE_US,
        model_dim: model.dims.model_dim,
        seed: SEED,
    };
    let continuous = run_trace(
        model,
        &engine_config(continuous_batcher(), threads),
        generate_trace(&trace, 0),
        tel,
    )?;
    let serial = run_trace(
        model,
        &engine_config(BatcherConfig::serial(), threads),
        generate_trace(&trace, 0),
        tel,
    )?;
    Ok(LoadResult {
        level: *level,
        continuous: ServeSummary::from_report(&continuous),
        serial: ServeSummary::from_report(&serial),
    })
}

/// Runs the full sweep at one thread setting.
///
/// # Errors
///
/// Propagates engine failures.
pub fn sweep(threads: usize, tel: &Telemetry) -> Result<Vec<LoadResult>, ServeError> {
    let model = ServeModel::materialize(ModelDims::small(2), SEED)?;
    LEVELS
        .iter()
        .map(|level| run_level(&model, level, threads, tel))
        .collect()
}

/// Renders the sweep as a printable table.
pub fn sweep_table(results: &[LoadResult]) -> Table {
    let mut t = Table::new(
        "Serving: continuous batching vs one-request-at-a-time",
        &[
            "load",
            "engine",
            "p50",
            "p99",
            "misses",
            "steps",
            "goodput t/s",
            "verdict",
        ],
    );
    for r in results {
        for (name, s) in [("continuous", &r.continuous), ("serial", &r.serial)] {
            t.row(&[
                r.level.label.to_string(),
                name.to_string(),
                fmt_time(s.p50_us as f64 * 1e-6),
                fmt_time(s.p99_us as f64 * 1e-6),
                s.misses.to_string(),
                s.steps.to_string(),
                format!("{:.0}", s.goodput_tps),
                if name == "continuous" {
                    if r.continuous_beats_serial() {
                        "beats serial".to_string()
                    } else {
                        "DOES NOT BEAT".to_string()
                    }
                } else {
                    String::new()
                },
            ]);
        }
    }
    t
}

fn summary_value(s: &ServeSummary) -> Value {
    Value::obj([
        ("p50_us", Value::from(s.p50_us)),
        ("p99_us", Value::from(s.p99_us)),
        ("goodput_tps", Value::from(s.goodput_tps)),
        ("deadline_misses", Value::from(s.misses)),
        ("steps", Value::from(s.steps)),
        ("a2a_elems", Value::from(s.a2a_elems)),
    ])
}

/// The `BENCH_serve.json` body. Everything inside is virtual-time
/// data, so the serialization is bit-stable across hosts and thread
/// counts.
pub fn sweep_json(results: &[LoadResult], threads: usize) -> Value {
    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::obj([
                ("load", Value::from(r.level.label)),
                ("requests", Value::from(REQUESTS)),
                ("continuous", summary_value(&r.continuous)),
                ("serial", summary_value(&r.serial)),
                (
                    "goodput_ratio",
                    Value::from(r.continuous.goodput_tps / r.serial.goodput_tps.max(1e-9)),
                ),
                (
                    "continuous_beats_serial",
                    Value::Bool(r.continuous_beats_serial()),
                ),
            ])
        })
        .collect();
    Value::obj([
        ("bench", Value::from("serve")),
        ("seed", Value::from(SEED)),
        ("threads", Value::from(threads)),
        ("deadline_us", Value::from(DEADLINE_US)),
        ("levels", Value::Arr(rows)),
        (
            "continuous_beats_serial_everywhere",
            Value::Bool(results.iter().all(LoadResult::continuous_beats_serial)),
        ),
    ])
}

/// FNV-1a digest of the thread-independent slice of the JSON: the
/// record minus the `threads` stamp. CI runs the sweep at
/// `TUTEL_THREADS=1` and `4` and requires the digests to match —
/// worker count may change wall time, never a serving number.
pub fn digest(results: &[LoadResult]) -> u64 {
    let canon = sweep_json(results, 0).to_json();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_across_thread_settings() {
        let tel = Telemetry::disabled();
        let a = sweep(1, &tel).unwrap();
        let b = sweep(2, &tel).unwrap();
        assert_eq!(digest(&a), digest(&b), "serving digest moved with threads");
    }

    #[test]
    fn continuous_beats_serial_at_every_level() {
        let tel = Telemetry::disabled();
        let results = sweep(1, &tel).unwrap();
        assert_eq!(results.len(), LEVELS.len());
        for r in &results {
            assert!(
                r.continuous_beats_serial(),
                "{}: continuous {:.0} <= serial {:.0}",
                r.level.label,
                r.continuous.goodput_tps,
                r.serial.goodput_tps
            );
        }
    }
}
