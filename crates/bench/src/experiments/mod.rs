//! One module per group of paper experiments. Every public function
//! regenerates the data behind one table or figure and returns
//! printable [`crate::Table`]s.

pub mod ablations;
pub mod accuracy;
pub mod breakdown;
pub mod dropless;
pub mod kernels;
pub mod layer_scaling;
pub mod micro;
pub mod overlap_sweep;
pub mod parallelism;
pub mod pipelining;
pub mod serving;
