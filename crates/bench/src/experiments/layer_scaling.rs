//! Single-MoE-layer scaling: Figure 23 (feature-ladder breakdown) and
//! Table 8 (end-to-end SwinV2-MoE training/inference speed).

use tutel::adaptive::{FeatureSet, MoeLayerSimulator};
use tutel::pipeline::LayerDims;
use tutel_experts::ExpertPlacement;

use crate::report::fmt_speedup;
use crate::Table;

/// Figure 23: single MoE layer step time per feature set across scale,
/// plus computation-only overhead (curve 6).
pub fn fig23() -> Table {
    let dims = LayerDims::figure23();
    let mut t = Table::new(
        "Figure 23: single MoE layer improvement breakdown (times in ms)",
        &[
            "GPUs",
            "(1) Fairseq",
            "(2) +kernels",
            "(3) +adpt pipe",
            "(4) +flex A2A",
            "(5) +adpt para",
            "(6) comp only",
            "Speedup (5)/(1)",
        ],
    );
    for w in [16usize, 32, 64, 128, 256, 512, 1024, 2048] {
        let sim = MoeLayerSimulator::azure(w);
        let ms = |f: FeatureSet| format!("{:.1}", sim.step_time(&dims, f) * 1e3);
        let ladder = FeatureSet::ladder();
        let base = sim.step_time(&dims, ladder[0].1);
        let full = sim.step_time(&dims, ladder[4].1);
        t.row(&[
            w.to_string(),
            ms(ladder[0].1),
            ms(ladder[1].1),
            ms(ladder[2].1),
            ms(ladder[3].1),
            ms(ladder[4].1),
            format!("{:.1}", sim.computation_only_time(&dims) * 1e3),
            fmt_speedup(base / full),
        ]);
    }
    t
}

/// Figure 23, replicated-expert variant: with `count_per_node = -4`
/// (each expert sharded over 4 GPUs, `E = W/4`) the parallelism choice
/// carries a real cost, so curves (4) and (5) — static P1 vs the
/// inline parallelism router — genuinely diverge. Uses a fat expert
/// (V = 16K) where the P1/P2 crossover moves with `f` (Figure 3).
pub fn fig23_replicated() -> Table {
    let mut t = Table::new(
        "Figure 23 variant: replicated experts (count_per_node = -4, V = 16K), times in ms",
        &[
            "GPUs",
            "f",
            "(4) static P1",
            "(5) adaptive parallelism",
            "Gain",
        ],
    );
    for w in [32usize, 64, 128] {
        let sim = MoeLayerSimulator::azure(w);
        let placement = ExpertPlacement::from_count_per_node(-4, w).expect("divisible");
        for f in [0.25, 1.0, 4.0] {
            let dims = LayerDims {
                tokens: 16384,
                model_dim: 2048,
                hidden_dim: 16384,
                local_experts: 1,
                k: 2,
                capacity_factor: f,
            };
            let static_p1 = sim.step_time_with_placement(
                &dims,
                FeatureSet::kernels_pipelining_flex(),
                &placement,
            );
            let adaptive = sim.step_time_with_placement(&dims, FeatureSet::full(), &placement);
            t.row(&[
                w.to_string(),
                format!("{f}"),
                format!("{:.1}", static_p1 * 1e3),
                format!("{:.1}", adaptive * 1e3),
                fmt_speedup(static_p1 / adaptive),
            ]);
        }
    }
    t
}

/// The SwinV2-MoE speed model behind Table 8.
///
/// SwinV2-B on 192² inputs: ~12 GFLOPs/image dense compute, 10 MoE
/// layers, 36 tokens/image reaching each MoE layer's All-to-All per
/// image per GPU at batch 128 images/GPU. One expert per GPU (E = W).
#[derive(Debug, Clone, Copy)]
pub struct SwinSpeedModel {
    /// Images per GPU per step.
    pub batch_per_gpu: usize,
    /// MoE layers in the model.
    pub moe_layers: usize,
    /// Tokens entering each MoE layer, per image.
    pub tokens_per_image: usize,
    /// Model width at the MoE stages.
    pub model_dim: usize,
    /// FFN hidden width.
    pub hidden_dim: usize,
    /// Dense (non-MoE) compute per image, FLOPs.
    pub dense_flops_per_image: f64,
}

impl SwinSpeedModel {
    /// SwinV2-MoE-B analogue.
    pub fn swinv2_b() -> Self {
        SwinSpeedModel {
            batch_per_gpu: 128,
            moe_layers: 10,
            tokens_per_image: 144,
            model_dim: 512,
            hidden_dim: 2048,
            dense_flops_per_image: 2.0 * 11.78e9, // fwd GFLOPs × 2 (MACs)
        }
    }

    /// Per-GPU images/second for a given mode.
    ///
    /// `features = None` means the dense (no-MoE) model; training costs
    /// ~3× the forward compute, inference 1×.
    pub fn images_per_second(
        &self,
        world: usize,
        features: Option<FeatureSet>,
        training: bool,
    ) -> f64 {
        let sim = MoeLayerSimulator::azure(world);
        let gpu = sim.timing().world().gpu();
        // Training triples the dense compute (forward + 2× backward)
        // but only ~2.2×'s the MoE layer (its All-to-Alls and
        // encode/decode cost roughly the same in both directions), so
        // the MoE overhead share — and Tutel's leverage — is larger at
        // inference, matching the paper's 1.5× train vs 2.1× infer gap.
        let (dense_factor, moe_factor) = if training { (3.0, 2.2) } else { (1.0, 1.0) };
        let dense_time = self.batch_per_gpu as f64 * self.dense_flops_per_image * dense_factor
            / (gpu.gemm_peak_flops * 0.5);
        let total = match features {
            None => dense_time,
            Some(f) => {
                let dims = LayerDims {
                    tokens: self.batch_per_gpu * self.tokens_per_image,
                    model_dim: self.model_dim,
                    hidden_dim: self.hidden_dim,
                    local_experts: 1,
                    k: 1,
                    capacity_factor: 1.0,
                };
                let per_layer = sim.step_time(&dims, f);
                dense_time + self.moe_layers as f64 * per_layer * moe_factor
            }
        };
        self.batch_per_gpu as f64 / total
    }
}

/// Table 8: SwinV2-MoE training and inference speed (images/s per GPU),
/// dense vs Fairseq-MoE vs Tutel-MoE, 8 → 128 GPUs.
pub fn table8() -> Table {
    let model = SwinSpeedModel::swinv2_b();
    let mut t = Table::new(
        "Table 8: SwinV2-MoE speed (images/s per GPU), train / infer",
        &["GPUs", "Dense", "Fairseq MoE", "Tutel MoE", "Tutel speedup"],
    );
    for w in [8usize, 16, 32, 64, 128] {
        let pair = |features: Option<FeatureSet>| {
            (
                model.images_per_second(w, features, true),
                model.images_per_second(w, features, false),
            )
        };
        let dense = pair(None);
        let fairseq = pair(Some(FeatureSet::fairseq_baseline()));
        let tutel = pair(Some(FeatureSet::full()));
        t.row(&[
            w.to_string(),
            format!("{:.0} / {:.0}", dense.0, dense.1),
            format!("{:.0} / {:.0}", fairseq.0, fairseq.1),
            format!("{:.0} / {:.0}", tutel.0, tutel.1),
            format!(
                "{} / {}",
                fmt_speedup(tutel.0 / fairseq.0),
                fmt_speedup(tutel.1 / fairseq.1)
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig23_ladder_never_regresses() {
        let t = fig23();
        assert_eq!(t.len(), 8);
        for line in t.render().lines().skip(3) {
            let times: Vec<f64> = line
                .split_whitespace()
                .skip(1)
                .take(5)
                .map(|c| c.parse().unwrap())
                .collect();
            for pair in times.windows(2) {
                assert!(pair[1] <= pair[0] * 1.001, "ladder regressed: {line}");
            }
        }
    }

    #[test]
    fn fig23_replicated_adaptive_never_loses() {
        let t = fig23_replicated();
        assert_eq!(t.len(), 9);
        for line in t.render().lines().skip(3) {
            let g: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(g >= 1.0, "adaptive lost: {line}");
        }
    }

    #[test]
    fn table8_tutel_beats_fairseq_everywhere() {
        let model = SwinSpeedModel::swinv2_b();
        for w in [8usize, 32, 128] {
            for training in [true, false] {
                let fair =
                    model.images_per_second(w, Some(FeatureSet::fairseq_baseline()), training);
                let tut = model.images_per_second(w, Some(FeatureSet::full()), training);
                let dense = model.images_per_second(w, None, training);
                assert!(tut > fair, "w={w} training={training}");
                assert!(dense > tut, "dense model must be fastest (no MoE overhead)");
            }
        }
    }

    #[test]
    fn table8_inference_speedup_exceeds_training_speedup() {
        // Paper: ~1.5× training vs ~2× inference (training amortizes
        // the MoE overhead over backward compute — here the pass factor
        // scales both, but inference is MoE-overhead-dominated).
        let model = SwinSpeedModel::swinv2_b();
        let speedup = |training: bool| {
            let fair = model.images_per_second(128, Some(FeatureSet::fairseq_baseline()), training);
            let tut = model.images_per_second(128, Some(FeatureSet::full()), training);
            tut / fair
        };
        let train = speedup(true);
        let infer = speedup(false);
        assert!(train > 1.05, "training speedup {train}");
        assert!(infer > 1.05, "inference speedup {infer}");
        assert!(
            infer > train,
            "inference leverage must exceed training: {infer} vs {train}"
        );
    }
}
