//! Per-stage time breakdown of one modeled MoE iteration, across
//! scales and strategies — the observability companion to Figure 22:
//! *where* each strategy spends its time (gate, encode, the two
//! All-to-All legs, expert GEMM, decode) and how much overlap recovers.

use tutel::pipeline::{LayerDims, PipelineStrategy, PipelineTimeModel, StageBreakdown};
use tutel_comm::{CollectiveTiming, World};
use tutel_obs::json::Value;
use tutel_obs::Telemetry;

use crate::Table;

/// The Figure 22 workload at one world size.
fn dims() -> LayerDims {
    LayerDims {
        tokens: 4096,
        model_dim: 4096,
        hidden_dim: 4096,
        local_experts: 2,
        k: 2,
        capacity_factor: 1.0,
    }
}

/// One (world size, strategy) breakdown row.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// World size.
    pub world: usize,
    /// The breakdown itself (includes the strategy).
    pub stages: StageBreakdown,
    /// Whether the exhaustive search picked this strategy at this
    /// world size.
    pub chosen: bool,
}

/// Computes stage breakdowns for the baseline and the adaptively
/// chosen strategy at each world size, leaving the search's audit
/// records in `tel`.
pub fn breakdown_rows(tel: &Telemetry) -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    for w in [16usize, 64, 256, 1024] {
        let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(w)));
        let d = dims();
        let (best, _) = model.best_strategy_observed(&d, tel);
        for strategy in [PipelineStrategy::baseline(), best] {
            rows.push(BreakdownRow {
                world: w,
                stages: model.stage_breakdown(&d, strategy),
                chosen: strategy == best,
            });
        }
        rows.dedup_by(|a, b| a.world == b.world && a.stages.strategy == b.stages.strategy);
    }
    rows
}

/// The breakdown as a printable table (times in milliseconds).
pub fn breakdown_table(rows: &[BreakdownRow]) -> Table {
    let mut t = Table::new(
        "Per-stage breakdown of one MoE iteration (ms)",
        &[
            "GPUs", "strategy", "gate", "encode", "a2a-disp", "expert", "a2a-comb", "decode",
            "overlap", "total",
        ],
    );
    let ms = |s: f64| format!("{:.3}", s * 1e3);
    for r in rows {
        let b = &r.stages;
        let name = if r.chosen {
            format!("{} *", b.strategy)
        } else {
            b.strategy.to_string()
        };
        t.row(&[
            r.world.to_string(),
            name,
            ms(b.gate),
            ms(b.encode),
            ms(b.a2a_dispatch),
            ms(b.expert),
            ms(b.a2a_combine),
            ms(b.decode),
            format!("-{}", ms(b.overlap_saving.max(0.0))),
            ms(b.total()),
        ]);
    }
    t
}

/// The breakdown (plus the search's audit records) as a JSON document
/// for `BENCH_breakdown.json`.
pub fn breakdown_json(rows: &[BreakdownRow], tel: &Telemetry) -> Value {
    let row_values: Vec<Value> = rows
        .iter()
        .map(|r| {
            let b = &r.stages;
            let mut pairs = vec![
                ("world".to_string(), Value::from(r.world)),
                ("strategy".to_string(), Value::from(b.strategy.to_string())),
                ("chosen".to_string(), Value::Bool(r.chosen)),
            ];
            for (name, secs) in b.stages() {
                pairs.push((name.to_string(), Value::from(secs)));
            }
            pairs.push((
                "overlap_saving_s".to_string(),
                Value::from(b.overlap_saving),
            ));
            pairs.push(("total_s".to_string(), Value::from(b.total())));
            Value::Obj(pairs)
        })
        .collect();
    let decisions: Vec<Value> = tel
        .decisions()
        .iter()
        .map(|d| tutel_obs::Event::Decision(d.clone()).to_value())
        .collect();
    Value::obj([
        ("experiment", Value::from("stage_breakdown")),
        ("dims", dims_value()),
        ("rows", Value::Arr(row_values)),
        ("decisions", Value::Arr(decisions)),
    ])
}

fn dims_value() -> Value {
    let d = dims();
    Value::obj([
        ("tokens", Value::from(d.tokens)),
        ("model_dim", Value::from(d.model_dim)),
        ("hidden_dim", Value::from(d.hidden_dim)),
        ("local_experts", Value::from(d.local_experts)),
        ("k", Value::from(d.k)),
        ("capacity_factor", Value::from(d.capacity_factor)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_match_step_time() {
        for w in [16usize, 256] {
            let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(w)));
            let d = dims();
            for s in PipelineStrategy::all() {
                let b = model.stage_breakdown(&d, s);
                let t = model.step_time(&d, s);
                assert!(
                    (b.total() - t).abs() < 1e-12 + t * 1e-9,
                    "{s} at {w} GPUs: breakdown {} vs step_time {t}",
                    b.total()
                );
            }
        }
    }

    #[test]
    fn rows_record_audit_decisions() {
        let tel = Telemetry::enabled();
        let rows = breakdown_rows(&tel);
        assert!(!rows.is_empty());
        assert!(rows.iter().any(|r| r.chosen));
        let decisions = tel.decisions();
        assert_eq!(decisions.len(), 4, "one pipeline decision per world size");
        assert!(decisions
            .iter()
            .all(|d| d.kind == "pipeline" && d.candidates.len() == 8));
    }

    #[test]
    fn json_document_is_well_formed() {
        let tel = Telemetry::enabled();
        let rows = breakdown_rows(&tel);
        let json = breakdown_json(&rows, &tel).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"stage_breakdown\""));
        assert!(json.contains("\"a2a_dispatch\""));
        assert!(json.contains("\"decisions\""));
    }
}
