//! Ablation benches for the design choices DESIGN.md calls out:
//! interference-aware search, MSCCL phase fusion, the 3DH extension,
//! and Algorithm 2's bucket length.

use tutel::pipeline::{LayerDims, OnlineStrategySearch, PipelineTimeModel};
use tutel_comm::{A2aImpl, CollectiveTiming, World};
use tutel_simgpu::Protocol;

use crate::report::{fmt_bytes, fmt_pct, fmt_time};
use crate::Table;

const MIB: f64 = 1024.0 * 1024.0;

fn fig22_dims(f: f64) -> LayerDims {
    LayerDims {
        tokens: 4096,
        model_dim: 4096,
        hidden_dim: 4096,
        local_experts: 2,
        k: 2,
        capacity_factor: f,
    }
}

/// Ablation: what happens if the pipelining search ignores
/// comm/compute interference (Section 2.3's warning). The
/// interference-blind search picks a strategy whose *actual* (with
/// interference) time can be worse than the interference-aware pick.
pub fn ablation_interference() -> Table {
    let mut t = Table::new(
        "Ablation: interference-aware vs interference-blind pipelining search",
        &[
            "GPUs",
            "f",
            "Blind pick",
            "Aware pick",
            "Blind actual",
            "Aware actual",
            "Penalty",
        ],
    );
    for w in [16usize, 64, 256] {
        for f in [1.0, 4.0, 16.0] {
            let timing = CollectiveTiming::new(World::azure(w));
            let aware = PipelineTimeModel::new(timing);
            let mut blind = PipelineTimeModel::new(timing);
            blind.interference = false;
            let dims = fig22_dims(f);
            // Each model picks its best strategy; both are *executed*
            // under the interference-aware model (reality).
            let (aware_pick, aware_actual) = aware.best_strategy(&dims);
            let (blind_pick, _) = blind.best_strategy(&dims);
            let blind_actual = aware.step_time(&dims, blind_pick);
            t.row(&[
                w.to_string(),
                format!("{f}"),
                blind_pick.to_string(),
                aware_pick.to_string(),
                fmt_time(blind_actual),
                fmt_time(aware_actual),
                fmt_pct(blind_actual / aware_actual - 1.0),
            ]);
        }
    }
    t
}

/// Ablation: MSCCL phase fusion for 2DH across scale (extends the
/// single-scale Figure 21 comparison).
pub fn ablation_msccl_fusion() -> Table {
    let mut t = Table::new(
        "Ablation: 2DH with NCCL-API barriers vs MSCCL fused phases",
        &["GPUs", "Size", "NCCL-API", "MSCCL", "Fusion gain"],
    );
    for w in [64usize, 256, 1024, 4096] {
        let timing = CollectiveTiming::new(World::azure(w));
        for s in [MIB, 32.0 * MIB] {
            let nccl = timing.two_dh_time_impl(s, Protocol::Simple, A2aImpl::NcclApi);
            let msccl = timing
                .two_dh_time_impl(s, Protocol::Simple, A2aImpl::Msccl)
                .min(timing.two_dh_time_impl(s, Protocol::Ll128, A2aImpl::Msccl));
            t.row(&[
                w.to_string(),
                fmt_bytes(s),
                fmt_time(nccl),
                fmt_time(msccl),
                fmt_pct(nccl / msccl - 1.0),
            ]);
        }
    }
    t
}

/// Ablation: the Section 4.3 3DH extension vs 2DH on very large
/// dragonfly-style clusters.
pub fn ablation_three_dh() -> Table {
    let mut t = Table::new(
        "Ablation: 2DH vs 3DH All-to-All (16-node groups)",
        &["GPUs", "Size", "2DH (MSCCL)", "3DH", "3DH gain"],
    );
    for w in [1024usize, 2048, 4096] {
        let timing = CollectiveTiming::new(World::azure(w));
        for s in [0.25 * MIB, 4.0 * MIB, 256.0 * MIB] {
            let two = timing.two_dh_time_impl(s, Protocol::Simple, A2aImpl::Msccl);
            let three = timing.three_dh_time(s, Protocol::Simple, 16);
            t.row(&[
                w.to_string(),
                fmt_bytes(s),
                fmt_time(two),
                fmt_time(three),
                fmt_pct(two / three - 1.0),
            ]);
        }
    }
    t
}

/// Ablation: Algorithm 2 bucket length `L`. Small `L` = many buckets,
/// each exploring the full strategy space (many suboptimal picks);
/// large `L` = aggressive sharing across dissimilar capacity factors,
/// which mis-generalizes (persistent suboptimal picks *and* regret).
/// The sweet spot is in between — exactly why the paper buckets.
pub fn ablation_bucket_length() -> Table {
    let mut t = Table::new(
        "Ablation: Algorithm 2 bucket length L (dynamic f schedule, 128 GPUs)",
        &["L", "Suboptimal picks", "Buckets", "Final regret"],
    );
    let timing = CollectiveTiming::new(World::azure(128));
    let model = PipelineTimeModel::new(timing);
    // A wandering f schedule with three regimes.
    let schedule: Vec<f64> = (0..90)
        .map(|i| [1.0, 1.3, 4.0, 4.4, 12.0, 13.5][i % 6])
        .collect();
    for bucket_len in [0.1, 0.5, 2.0, 8.0] {
        let mut search = OnlineStrategySearch::new(bucket_len);
        let mut explorations = 0usize;
        for &f in &schedule {
            let dims = fig22_dims(f);
            let s = search.next_strategy(f);
            if s != model.best_strategy(&dims).0 {
                explorations += 1;
            }
            search.record(f, s, model.step_time(&dims, s));
        }
        // Regret: average excess time of the converged choices.
        let mut regret = 0.0;
        let fs = [1.0, 4.0, 12.0];
        for &f in &fs {
            let dims = fig22_dims(f);
            let chosen = search.next_strategy(f);
            regret += model.step_time(&dims, chosen) / model.best_strategy(&dims).1 - 1.0;
        }
        t.row(&[
            format!("{bucket_len}"),
            explorations.to_string(),
            search.num_buckets().to_string(),
            fmt_pct(regret / fs.len() as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_blind_search_is_never_better() {
        let text = ablation_interference().render();
        for line in text.lines().skip(3) {
            let p: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(p >= -0.1, "blind search cannot beat aware: {line}");
        }
    }

    #[test]
    fn msccl_fusion_always_gains() {
        let text = ablation_msccl_fusion().render();
        for line in text.lines().skip(3) {
            let p: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(p > 0.0, "fusion must help: {line}");
        }
    }

    #[test]
    fn three_dh_wins_small_loses_large() {
        let t = ablation_three_dh();
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn moderate_buckets_beat_both_extremes() {
        let text = ablation_bucket_length().render();
        let subopt: Vec<usize> = text
            .lines()
            .skip(3)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(subopt.len(), 4);
        let best_mid = subopt[1].min(subopt[2]);
        assert!(
            best_mid <= subopt[0] && best_mid <= subopt[3],
            "a moderate L must minimize suboptimal picks: {subopt:?}"
        );
    }
}
