//! Adaptive pipelining experiments: Figure 5 (optimal-strategy
//! distribution), Table 7 (average / worst-case improvement), and
//! Figure 22 (gains under dynamic workloads).

use std::collections::HashMap;

use tutel::pipeline::{LayerDims, PipelineStrategy, PipelineTimeModel};
use tutel_comm::{CollectiveTiming, World};

use crate::report::fmt_pct;
use crate::Table;

/// The 243 typical MoE model settings of Table 6:
/// samples/step × tokens/sample × M × V × ΔE (3⁵ combinations).
///
/// ΔE = 0.5 (one expert split over two GPUs) is represented as one
/// local expert with half the hidden dimension — the same per-GPU GEMM
/// shape and All-to-All payload.
pub fn table6_settings() -> Vec<LayerDims> {
    let mut v = Vec::with_capacity(243);
    for samples in [8usize, 16, 32] {
        for tokens_per_sample in [512usize, 1024, 2048] {
            for m in [1024usize, 2048, 4096] {
                for hidden in [1024usize, 2048, 4096] {
                    for de2 in [1usize, 2, 4] {
                        // de2 = 2·ΔE ∈ {1, 2, 4} → ΔE ∈ {0.5, 1, 2}.
                        let (local_experts, hidden_dim) = if de2 == 1 {
                            (1, hidden / 2)
                        } else {
                            (de2 / 2, hidden)
                        };
                        v.push(LayerDims {
                            tokens: samples * tokens_per_sample,
                            model_dim: m,
                            hidden_dim,
                            local_experts,
                            k: 2,
                            capacity_factor: 1.0,
                        });
                    }
                }
            }
        }
    }
    v
}

/// Figure 5: distribution of optimal pipelining strategies over the 243
/// workloads × scales 16–256 GPUs.
pub fn fig5() -> Table {
    let mut histogram: HashMap<PipelineStrategy, usize> = HashMap::new();
    for w in [16usize, 32, 64, 128, 256] {
        let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(w)));
        for dims in table6_settings() {
            let (best, _) = model.best_strategy(&dims);
            *histogram.entry(best).or_default() += 1;
        }
    }
    let mut t = Table::new(
        "Figure 5: optimal pipelining strategy distribution (243 workloads x 5 scales)",
        &["Strategy", "Workloads best served", "Share"],
    );
    let total: usize = histogram.values().sum();
    let mut entries: Vec<_> = PipelineStrategy::all()
        .into_iter()
        .map(|s| (s, histogram.get(&s).copied().unwrap_or(0)))
        .collect();
    entries.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for (s, count) in entries {
        t.row(&[
            s.to_string(),
            count.to_string(),
            fmt_pct(count as f64 / total as f64),
        ]);
    }
    t
}

/// Table 7: adaptive pipelining improvement over each static strategy,
/// averaged (`worst = false`) or worst-case (`worst = true`) across the
/// 243 settings, per scale.
pub fn table7(worst: bool) -> Table {
    let title = if worst {
        "Table 7b: adaptive pipelining improvement over static, worst case"
    } else {
        "Table 7a: adaptive pipelining improvement over static, average"
    };
    let mut t = Table::new(title, &["GPUs", "Algo", "d=1", "d=2", "d=4", "d=8"]);
    for w in [16usize, 32, 64, 128, 256] {
        let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(w)));
        let settings = table6_settings();
        // Precompute best per setting.
        let bests: Vec<f64> = settings.iter().map(|d| model.best_strategy(d).1).collect();
        for algo in tutel_comm::AllToAllAlgo::ALL {
            let mut cells = vec![w.to_string(), algo.to_string()];
            for degree in [1usize, 2, 4, 8] {
                let s = PipelineStrategy { algo, degree };
                let mut acc: f64 = 0.0;
                let mut max: f64 = 0.0;
                for (dims, best) in settings.iter().zip(&bests) {
                    let static_t = model.step_time(dims, s);
                    let improvement = static_t / best - 1.0;
                    acc += improvement;
                    max = max.max(improvement);
                }
                let val = if worst {
                    max
                } else {
                    acc / settings.len() as f64
                };
                cells.push(fmt_pct(val));
            }
            t.row(&cells);
        }
    }
    t
}

/// Figure 22: adaptive pipelining improvement over the baseline
/// (Linear, degree 1) under dynamic workloads `f ∈ {1, 4, 16}`
/// (tokens/step = 4,096, M = V = 4,096, ΔE = 2).
pub fn fig22() -> Table {
    let mut t = Table::new(
        "Figure 22: adaptive pipelining improvement on dynamic workloads",
        &["GPUs", "f=1", "f=4", "f=16"],
    );
    for w in [16usize, 32, 64, 128, 256] {
        let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(w)));
        let mut cells = vec![w.to_string()];
        for f in [1.0, 4.0, 16.0] {
            let dims = LayerDims {
                tokens: 4096,
                model_dim: 4096,
                hidden_dim: 4096,
                local_experts: 2,
                k: 2,
                capacity_factor: f,
            };
            let baseline = model.step_time(&dims, PipelineStrategy::baseline());
            let (_, best) = model.best_strategy(&dims);
            cells.push(fmt_pct(baseline / best - 1.0));
        }
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_has_243_settings() {
        assert_eq!(table6_settings().len(), 243);
    }

    #[test]
    fn fig5_distribution_is_not_degenerate() {
        let t = fig5();
        let text = t.render();
        // More than one strategy must win somewhere (the paper's whole
        // point: no single static strategy dominates).
        let winners = text
            .lines()
            .skip(3)
            .filter(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|c| c.parse::<usize>().ok())
                    .map(|c| c > 0)
                    .unwrap_or(false)
            })
            .count();
        assert!(
            winners >= 2,
            "expected multiple winning strategies:\n{text}"
        );
    }

    #[test]
    fn table7_improvements_are_nonnegative() {
        let t = table7(false);
        assert_eq!(t.len(), 10);
        for line in t.render().lines().skip(3) {
            for cell in line.split_whitespace().filter(|w| w.ends_with('%')) {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!(v >= -0.01, "adaptive must never lose: {line}");
            }
        }
    }

    #[test]
    fn fig22_improvement_nonnegative_and_substantial_somewhere() {
        let t = fig22();
        let text = t.render();
        let max: f64 = text
            .split_whitespace()
            .filter(|w| w.ends_with('%'))
            .map(|w| w.trim_end_matches('%').parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(
            max > 10.0,
            "best-case dynamic gain {max}% too small:\n{text}"
        );
    }
}
