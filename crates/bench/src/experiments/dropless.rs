//! Token-imbalance sweep for the dropless grouped compute path (the
//! Figure 7 workload family under skewed routing).
//!
//! The padded `(E, C, M)` twin prices every expert at the capacity
//! `C = max_e bin_e`, so its FLOP bill cliffs as routing skews: at
//! single-hot routing it computes `E·R` rows for `R` routed tokens.
//! The grouped path walks the CSR offsets and computes exactly `R`
//! rows at every skew. This sweep drives both engines over the same
//! routed rows across a skew ladder (uniform → Zipf → single-hot),
//! asserts the no-cliff acceptance criteria, and rewrites the
//! `grouped_gemm` section of `BENCH_compute.json`.
//!
//! Everything except the timings is a pure function of the seed: the
//! grouped and padded outputs are compared bitwise per level, and
//! [`digest`] folds the output bits so CI can pin the sweep across
//! `TUTEL_SIMD={0,1} × TUTEL_THREADS={1,4}`.

use std::time::Instant;

use tutel_experts::ExpertsBlock;
use tutel_obs::json::Value;
use tutel_rt::with_parallelism_limit;
use tutel_tensor::{Rng, Tensor, TensorError};

use crate::Table;

/// Experts in the sweep block.
pub const EXPERTS: usize = 8;
/// Token embedding width.
pub const MODEL_DIM: usize = 64;
/// FFN hidden width.
pub const HIDDEN_DIM: usize = 128;
/// Routed rows at every level — the grouped path's whole workload.
pub const ROWS: usize = 1024;
/// Timed iterations per engine per level (median), after one warmup.
const ITERS: usize = 7;

/// One rung of the skew ladder.
#[derive(Debug, Clone, Copy)]
pub struct SkewLevel {
    /// Display / JSON key, e.g. `zipf_1.0`.
    pub label: &'static str,
    /// Zipf exponent over expert ranks; `None` = single-hot (all rows
    /// to expert 0, the worst case for padding).
    pub zipf_s: Option<f64>,
}

/// Uniform → Zipf(0.5) → Zipf(1.0) → Zipf(1.5) → single-hot.
pub fn skew_ladder() -> Vec<SkewLevel> {
    vec![
        SkewLevel {
            label: "uniform",
            zipf_s: Some(0.0),
        },
        SkewLevel {
            label: "zipf_0.5",
            zipf_s: Some(0.5),
        },
        SkewLevel {
            label: "zipf_1.0",
            zipf_s: Some(1.0),
        },
        SkewLevel {
            label: "zipf_1.5",
            zipf_s: Some(1.5),
        },
        SkewLevel {
            label: "single_hot",
            zipf_s: None,
        },
    ]
}

/// Deterministic bin sizes for a rung: expert `e` gets a share
/// proportional to `(e+1)^-s`, floored, with the remainder dealt in
/// expert order so the bins always sum to `rows`.
pub fn bins_for(level: &SkewLevel, experts: usize, rows: usize) -> Vec<usize> {
    let Some(s) = level.zipf_s else {
        let mut bins = vec![0usize; experts];
        bins[0] = rows;
        return bins;
    };
    let weights: Vec<f64> = (0..experts).map(|e| ((e + 1) as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut bins: Vec<usize> = weights
        .iter()
        .map(|w| ((rows as f64) * w / total).floor() as usize)
        .collect();
    let mut short = rows - bins.iter().sum::<usize>();
    let mut e = 0usize;
    while short > 0 {
        bins[e % experts] += 1;
        short -= 1;
        e += 1;
    }
    bins
}

/// One measured rung of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Rung label.
    pub label: &'static str,
    /// Rows the grouped path computed (always [`ROWS`]).
    pub routed_rows: usize,
    /// Capacity the padded twin ran at (`max_e bin_e`).
    pub capacity: usize,
    /// Rows the padded twin computed (`EXPERTS · capacity`).
    pub padded_rows: usize,
    /// Grouped median wall time, microseconds.
    pub grouped_us: f64,
    /// Padded median wall time, microseconds.
    pub padded_us: f64,
    /// Grouped and padded real rows agreed bitwise.
    pub bitwise: bool,
    /// FNV-1a over the grouped output bits (thread/SIMD invariant).
    pub out_digest: u64,
}

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn fnv(mut h: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the skew ladder under `threads` pool workers. With
/// `timed = false` each engine runs exactly once per rung (digest-only
/// mode for the CI determinism sweep); timings are reported as 0.
///
/// # Errors
///
/// Propagates [`TensorError`] from either engine.
pub fn sweep(threads: usize, timed: bool) -> Result<Vec<SweepPoint>, TensorError> {
    with_parallelism_limit(threads, || sweep_inner(timed))
}

fn sweep_inner(timed: bool) -> Result<Vec<SweepPoint>, TensorError> {
    let mut rng = Rng::seed(0xD80B);
    let block = ExpertsBlock::new(EXPERTS, MODEL_DIM, HIDDEN_DIM, &mut rng);
    let x = rng.normal_tensor(&[ROWS, MODEL_DIM], 0.0, 1.0);

    let mut points = Vec::new();
    for level in skew_ladder() {
        let bins = bins_for(&level, EXPERTS, ROWS);
        let mut offsets = vec![0usize; EXPERTS + 1];
        for (e, b) in bins.iter().enumerate() {
            offsets[e + 1] = offsets[e] + b;
        }
        let capacity = bins.iter().copied().max().unwrap_or(0);

        // The padded twin sees the same rows, laid out (E, C, M) with
        // zeros past each bin — exactly what `fast_encode` produces.
        let mut padded_x = vec![0.0f32; EXPERTS * capacity * MODEL_DIM];
        for e in 0..EXPERTS {
            let rows = &x.as_slice()[offsets[e] * MODEL_DIM..offsets[e + 1] * MODEL_DIM];
            padded_x[e * capacity * MODEL_DIM..e * capacity * MODEL_DIM + rows.len()]
                .copy_from_slice(rows);
        }
        let padded_x = Tensor::from_vec(padded_x, &[EXPERTS, capacity, MODEL_DIM])?;

        let grouped_y = block.infer_grouped(&x, &offsets)?;
        let padded_y = block.infer(&padded_x)?;
        let bitwise = (0..EXPERTS).all(|e| {
            let g = &grouped_y.as_slice()[offsets[e] * MODEL_DIM..offsets[e + 1] * MODEL_DIM];
            let p =
                &padded_y.as_slice()[e * capacity * MODEL_DIM..e * capacity * MODEL_DIM + g.len()];
            g == p
        });
        let out_digest = fnv(
            0xcbf2_9ce4_8422_2325,
            grouped_y
                .as_slice()
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes()),
        );

        let (grouped_us, padded_us) = if timed {
            let mut g = Vec::with_capacity(ITERS);
            let mut p = Vec::with_capacity(ITERS);
            for _ in 0..ITERS {
                let t = Instant::now();
                let _ = block.infer_grouped(&x, &offsets)?;
                g.push(t.elapsed().as_secs_f64() * 1e6);
                let t = Instant::now();
                let _ = block.infer(&padded_x)?;
                p.push(t.elapsed().as_secs_f64() * 1e6);
            }
            (median_us(&mut g), median_us(&mut p))
        } else {
            (0.0, 0.0)
        };

        points.push(SweepPoint {
            label: level.label,
            routed_rows: ROWS,
            capacity,
            padded_rows: EXPERTS * capacity,
            grouped_us,
            padded_us,
            bitwise,
            out_digest,
        });
    }
    Ok(points)
}

/// Renders the sweep as a printable table.
pub fn sweep_table(points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Token-imbalance sweep: grouped (dropless) vs padded FFN compute",
        &[
            "skew", "routed", "slots", "grouped", "padded", "pad/grp", "bitwise",
        ],
    );
    for p in points {
        t.row(&[
            p.label.to_string(),
            p.routed_rows.to_string(),
            p.padded_rows.to_string(),
            format!("{:.0} us", p.grouped_us),
            format!("{:.0} us", p.padded_us),
            format!("{:.2}x", p.padded_us / p.grouped_us.max(1e-9)),
            if p.bitwise { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// The acceptance criteria, returned as human-readable failures
/// (empty = pass):
///
/// 1. every rung's grouped and padded real rows agree bitwise;
/// 2. grouped at max skew stays within 10 % of grouped at uniform
///    (its workload never changed — no cliff);
/// 3. padded at max skew degrades ≥ 1.5× vs padded at uniform (the
///    cliff the grouped path removes — if this fails the sweep isn't
///    exercising the claim);
/// 4. grouped beats padded at every rung from Zipf(1.0) up.
pub fn failures(points: &[SweepPoint]) -> Vec<String> {
    let mut out = Vec::new();
    for p in points {
        if !p.bitwise {
            out.push(format!("{}: grouped and padded rows diverged", p.label));
        }
    }
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        out.push("empty sweep".to_string());
        return out;
    };
    if last.grouped_us > 1.10 * first.grouped_us {
        out.push(format!(
            "grouped cliff: {:.0} us at {} vs {:.0} us at {} (> 1.10x)",
            last.grouped_us, last.label, first.grouped_us, first.label
        ));
    }
    if last.padded_us < 1.5 * first.padded_us {
        out.push(format!(
            "padded cliff too small: {:.0} us at {} vs {:.0} us at {} (< 1.5x)",
            last.padded_us, last.label, first.padded_us, first.label
        ));
    }
    for p in points {
        let steep = matches!(p.label, "zipf_1.0" | "zipf_1.5" | "single_hot");
        if steep && p.grouped_us >= p.padded_us {
            out.push(format!(
                "{}: grouped {:.0} us does not beat padded {:.0} us",
                p.label, p.grouped_us, p.padded_us
            ));
        }
    }
    out
}

/// FNV-1a over the per-rung output digests and bin geometry — the
/// thread- and SIMD-invariant slice of the sweep. CI compares this
/// line across `TUTEL_SIMD={0,1} × TUTEL_THREADS={1,4}`.
pub fn digest(points: &[SweepPoint]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in points {
        h = fnv(h, p.out_digest.to_le_bytes());
        h = fnv(h, (p.capacity as u64).to_le_bytes());
        h = fnv(h, u64::from(p.bitwise).to_le_bytes());
    }
    h
}

/// The `grouped_gemm` section for `BENCH_compute.json`.
pub fn grouped_gemm_section(points: &[SweepPoint], threads: usize) -> Value {
    let mut pairs = vec![
        (
            "units".to_string(),
            Value::Str(
                "microseconds, median of 7; ExpertsBlock infer over one skew ladder, \
                 grouped CSR bins vs padded (E, C, M) at C = max bin"
                    .to_string(),
            ),
        ),
        (
            "shape".to_string(),
            Value::Str(format!(
                "E{EXPERTS} M{MODEL_DIM} V{HIDDEN_DIM}, {ROWS} routed rows"
            )),
        ),
        ("threads".to_string(), Value::Num(threads as f64)),
    ];
    for p in points {
        pairs.push((
            p.label.to_string(),
            Value::obj([
                ("grouped_us", Value::Num(round2(p.grouped_us))),
                ("padded_us", Value::Num(round2(p.padded_us))),
                (
                    "padded_over_grouped",
                    Value::Num(round2(p.padded_us / p.grouped_us.max(1e-9))),
                ),
                ("capacity_slots", Value::Num(p.padded_rows as f64)),
                ("routed_rows", Value::Num(p.routed_rows as f64)),
            ]),
        ));
    }
    pairs.push((
        "no_cliff".to_string(),
        Value::Bool(failures(points).is_empty()),
    ));
    Value::Obj(pairs)
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Replaces (or appends) the `grouped_gemm` section in the JSON file
/// at `path`, preserving every other section and re-rendering the
/// document with the repo's two-space pretty style.
///
/// # Errors
///
/// I/O errors from read/write; a parse failure of the existing file
/// surfaces as [`std::io::ErrorKind::InvalidData`].
pub fn merge_section(path: &str, section: Value) -> std::io::Result<()> {
    let doc = match std::fs::read_to_string(path) {
        Ok(text) => Value::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Value::Obj(Vec::new()),
        Err(e) => return Err(e),
    };
    let Value::Obj(mut pairs) = doc else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{path} is not a JSON object"),
        ));
    };
    match pairs.iter_mut().find(|(k, _)| k == "grouped_gemm") {
        Some((_, v)) => *v = section,
        None => {
            // Keep trailing notes last if the file has them.
            let at = pairs
                .iter()
                .position(|(k, _)| k == "notes")
                .unwrap_or(pairs.len());
            pairs.insert(at, ("grouped_gemm".to_string(), section));
        }
    }
    std::fs::write(path, pretty(&Value::Obj(pairs), 0) + "\n")
}

/// Two-space pretty printer matching the hand-maintained style of the
/// BENCH_*.json records: the document and its sections (depth 0–1) go
/// multiline, as do arrays of composites or of long scalars; leaf
/// objects nested deeper stay on one line.
fn pretty(v: &Value, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Obj(pairs) if !pairs.is_empty() && (indent < 2 || has_composite(v)) => {
            let body = pairs
                .iter()
                .map(|(k, val)| {
                    format!(
                        "{inner}{}: {}",
                        Value::Str(k.clone()).to_json(),
                        pretty(val, indent + 1)
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!("{{\n{body}\n{pad}}}")
        }
        Value::Arr(items) if !items.is_empty() && (has_composite(v) || v.to_json().len() > 100) => {
            let body = items
                .iter()
                .map(|val| format!("{inner}{}", pretty(val, indent + 1)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{body}\n{pad}]")
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            let body = pairs
                .iter()
                .map(|(k, val)| format!("{}: {}", Value::Str(k.clone()).to_json(), val.to_json()))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{ {body} }}")
        }
        other => other.to_json(),
    }
}

/// Whether any direct child is itself an object or array.
fn has_composite(v: &Value) -> bool {
    let children: Box<dyn Iterator<Item = &Value>> = match v {
        Value::Obj(pairs) => Box::new(pairs.iter().map(|(_, v)| v)),
        Value::Arr(items) => Box::new(items.iter()),
        _ => return false,
    };
    let mut children = children;
    children.any(|c| matches!(c, Value::Obj(_) | Value::Arr(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_sum_and_skew_shape() {
        for level in skew_ladder() {
            let bins = bins_for(&level, EXPERTS, ROWS);
            assert_eq!(bins.iter().sum::<usize>(), ROWS, "{}", level.label);
            assert!(bins.windows(2).all(|w| w[0] >= w[1]), "{}", level.label);
        }
        assert_eq!(
            bins_for(&skew_ladder()[0], EXPERTS, ROWS),
            vec![ROWS / EXPERTS; EXPERTS]
        );
        let hot = bins_for(&skew_ladder()[4], EXPERTS, ROWS);
        assert_eq!(hot[0], ROWS);
    }

    #[test]
    fn digest_is_thread_invariant_and_outputs_bitwise() {
        let a = sweep(1, false).unwrap();
        let b = sweep(2, false).unwrap();
        assert_eq!(digest(&a), digest(&b), "dropless digest moved with threads");
        assert!(a.iter().all(|p| p.bitwise));
        // Padding blow-up is monotone along the ladder and hits E x at
        // single-hot.
        assert_eq!(a[0].padded_rows, ROWS);
        assert_eq!(a[4].padded_rows, EXPERTS * ROWS);
        assert!(a.windows(2).all(|w| w[0].capacity <= w[1].capacity));
    }

    #[test]
    fn merge_rewrites_only_the_grouped_gemm_section() {
        let dir = std::env::temp_dir().join("tutel_dropless_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, "{\"keep\": {\"a\": 1},\n\"notes\": [\"n\"]}\n").unwrap();
        let points = sweep(1, false).unwrap();
        merge_section(path, grouped_gemm_section(&points, 1)).unwrap();
        let doc = Value::parse(std::fs::read_to_string(path).unwrap().trim()).unwrap();
        assert_eq!(
            doc.get("keep").unwrap().get("a").unwrap().as_f64(),
            Some(1.0)
        );
        let section = doc.get("grouped_gemm").unwrap();
        assert!(section.get("uniform").is_some());
        assert!(section.get("single_hot").is_some());
        // notes stayed last.
        if let Value::Obj(pairs) = &doc {
            assert_eq!(pairs.last().unwrap().0, "notes");
            assert_eq!(pairs[1].0, "grouped_gemm");
        } else {
            panic!("not an object");
        }
        std::fs::remove_file(path).unwrap();
    }
}
