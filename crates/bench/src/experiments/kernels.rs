//! Figure 24: encode/decode kernel comparison, Tutel sparse vs the
//! Fairseq dense einsum — here with *real CPU wall-clock* on the
//! functional implementations (the shape claim is the complexity gap,
//! which is hardware-independent), plus the modeled GPU times.

use std::time::Instant;

use tutel_gate::{route, RouteConfig, Routing};
use tutel_kernels::{fast_decode, fast_encode, DenseCombine};
use tutel_simgpu::GpuCostModel;
use tutel_tensor::{Rng, Tensor};

use crate::report::{fmt_speedup, fmt_time};
use crate::Table;

fn fixture(tokens: usize, experts: usize, m: usize, seed: u64) -> (Routing, Tensor) {
    let mut rng = Rng::seed(seed);
    let probs = rng
        .uniform_tensor(&[tokens, experts], 0.0, 1.0)
        .softmax_last();
    let routing = route(&probs, &RouteConfig::top2()).unwrap();
    let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
    (routing, x)
}

/// Figure 24 (CPU measurement): wall-clock of dense vs sparse
/// encode+decode on the functional kernels, over tokens/step.
pub fn fig24_cpu() -> Table {
    let mut t = Table::new(
        "Figure 24 (CPU measured): encode+decode wall-clock, Fairseq dense vs Tutel sparse",
        &["tokens/step", "Dense", "Sparse", "Sparse speedup"],
    );
    for tokens in [128usize, 256, 512, 1024] {
        let experts = 16;
        let m = 64;
        let (routing, x) = fixture(tokens, experts, m, tokens as u64);
        let y = {
            let mut rng = Rng::seed(9);
            rng.normal_tensor(&[experts, routing.capacity, m], 0.0, 1.0)
        };
        let reps = 3;
        let start = Instant::now();
        for _ in 0..reps {
            let c = DenseCombine::new(&routing);
            let d = c.encode(&x).unwrap();
            std::hint::black_box(&d);
            let o = c.decode(&y).unwrap();
            std::hint::black_box(&o);
        }
        let dense = start.elapsed().as_secs_f64() / reps as f64;
        let start = Instant::now();
        for _ in 0..reps {
            let d = fast_encode(&x, &routing).unwrap();
            std::hint::black_box(&d);
            let o = fast_decode(&y, &routing, tokens).unwrap();
            std::hint::black_box(&o);
        }
        let sparse = start.elapsed().as_secs_f64() / reps as f64;
        t.row(&[
            tokens.to_string(),
            fmt_time(dense),
            fmt_time(sparse),
            fmt_speedup(dense / sparse),
        ]);
    }
    t
}

/// Figure 24 (modeled A100): the calibrated GPU-time model at the
/// paper's scales.
pub fn fig24_gpu_model() -> Table {
    let gpu = GpuCostModel::a100();
    let mut t = Table::new(
        "Figure 24 (modeled A100): encode+decode time, Fairseq dense vs Tutel sparse",
        &["tokens/step", "Dense", "Sparse", "Sparse speedup"],
    );
    let (experts, m, k) = (64usize, 2048usize, 2usize);
    for tokens in [4096usize, 8192, 16384, 32768] {
        let cap = tutel_gate::expert_capacity(k, 1.0, tokens, experts);
        let dense = 2.0 * gpu.dense_encode_time(tokens, experts, cap, m);
        let sparse = 2.0 * gpu.sparse_encode_time(tokens, k, m);
        t.row(&[
            tokens.to_string(),
            fmt_time(dense),
            fmt_time(sparse),
            fmt_speedup(dense / sparse),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_measurement_shows_sparse_winning() {
        let t = fig24_cpu();
        let text = t.render();
        // Every row's speedup must be > 1 (the dense path does T×
        // the work).
        for line in text.lines().skip(3) {
            let s: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(s > 1.0, "sparse must win: {line}");
        }
    }

    #[test]
    fn gpu_model_speedup_grows_with_tokens() {
        let t = fig24_gpu_model();
        let speedups: Vec<f64> = t
            .render()
            .lines()
            .skip(3)
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('x')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(
            speedups.windows(2).all(|w| w[1] >= w[0] * 0.99),
            "{speedups:?}"
        );
        assert!(*speedups.last().unwrap() > 10.0);
    }
}
