//! Micro-benchmarks: Table 1 (All-to-All overhead ratio), Figure 6
//! (bandwidth curves), Figure 7 (rigid-layout GEMM regression),
//! Figure 10 (expert throughput by layout), Figure 20 (linear vs 2DH
//! scaling), Figure 21 (NCCL vs MSCCL 2DH), Table 4 (memory).

use tutel::pipeline::LayerDims;
use tutel_comm::{A2aImpl, AllToAllAlgo, CollectiveTiming, World};
use tutel_kernels::memory::{fairseq_layer_memory, tutel_layer_memory, MemorySettings};
use tutel_simgpu::{GpuCostModel, LinkModel, Protocol};

use crate::report::{fmt_bytes, fmt_pct, fmt_speedup, fmt_time};
use crate::Table;

const MIB: f64 = 1024.0 * 1024.0;

/// Table 1: All-to-All overhead ratio and potential speedup from full
/// overlap, in the typical MoE setting (Figure 23 dims, dense-kernel
/// baseline as the computation).
pub fn table1() -> Table {
    let dims = LayerDims::figure23();
    let mut t = Table::new(
        "Table 1: All-to-All overhead and potential overlap speedup",
        &[
            "GPUs",
            "MoE (ms)",
            "Comp (ms)",
            "A2A (ms)",
            "A2A ratio",
            "Potential speedup",
        ],
    );
    for w in [16usize, 64, 256] {
        let timing = CollectiveTiming::new(World::azure(w));
        let gpu = timing.world().gpu();
        let e = w * dims.local_experts;
        let dc = (dims.expert_rows() / e).max(1);
        // Computation: gate + dense encode/decode + expert GEMM (the
        // pre-Tutel baseline this table profiles).
        let comp = gpu.gate_time(dims.tokens, e)
            + 2.0 * gpu.dense_encode_time(dims.tokens, e, dc, dims.model_dim)
            + gpu.gemm_time(
                dims.local_experts,
                dims.expert_rows() / dims.local_experts,
                dims.model_dim,
                dims.hidden_dim,
            )
            + gpu.gemm_time(
                dims.local_experts,
                dims.expert_rows() / dims.local_experts,
                dims.hidden_dim,
                dims.model_dim,
            );
        let a2a = 2.0 * timing.linear_time(dims.a2a_bytes(), Protocol::Simple);
        let total = comp + a2a;
        let ratio = a2a / total;
        let overlapped = comp.max(a2a);
        t.row(&[
            w.to_string(),
            format!("{:.1}", total * 1e3),
            format!("{:.1}", comp * 1e3),
            format!("{:.1}", a2a * 1e3),
            fmt_pct(ratio),
            fmt_speedup(total / overlapped),
        ]);
    }
    t
}

/// Figure 6a: effective point-to-point bandwidth vs message size over
/// HDR InfiniBand (the ib_write_bw curve).
pub fn fig6a() -> Table {
    let ib = LinkModel::hdr_infiniband();
    let mut t = Table::new(
        "Figure 6a: GPUDirect RDMA effective bandwidth vs message size (HDR IB)",
        &["Msg size", "Eff. bandwidth (GB/s)", "Fraction of peak"],
    );
    let mut size = 1024.0;
    while size <= 16.0 * 1024.0 * MIB {
        let bw = ib.effective_bandwidth(size, Protocol::Simple);
        t.row(&[
            fmt_bytes(size),
            format!("{:.2}", bw / 1e9),
            fmt_pct(bw / ib.bandwidth),
        ]);
        size *= 8.0;
    }
    t
}

/// Figure 6b: All-to-All bus bandwidth (linear algorithm) vs scale.
pub fn fig6b() -> Table {
    let mut t = Table::new(
        "Figure 6b: linear All-to-All bus bandwidth vs scale (nccl-tests metric)",
        &[
            "GPUs",
            "busbw @1MiB (GB/s)",
            "busbw @32MiB (GB/s)",
            "busbw @256MiB (GB/s)",
        ],
    );
    for w in [64usize, 128, 256, 512, 1024, 2048] {
        let timing = CollectiveTiming::new(World::azure(w));
        let bw = |s: f64| {
            format!(
                "{:.2}",
                timing.bus_bandwidth(AllToAllAlgo::Linear, s, Protocol::Simple) / 1e9
            )
        };
        t.row(&[w.to_string(), bw(MIB), bw(32.0 * MIB), bw(256.0 * MIB)]);
    }
    t
}

/// Figure 7: fflayer elapsed time under the rigid All-to-All layout as
/// the world grows (ΔE = 1, M = V = 2048, f = 1, tokens/step = 16384).
pub fn fig7() -> Table {
    let gpu = GpuCostModel::a100();
    let (tokens, m, v) = (16384usize, 2048usize, 2048usize);
    let mut t = Table::new(
        "Figure 7: rigid-layout fflayer time vs #GPUs (DeepSpeed regression)",
        &["GPUs", "bgemm shape", "Time (ms)", "Slowdown vs 1 GPU"],
    );
    let base = gpu.gemm_time(1, tokens, m, v) + gpu.gemm_time(1, tokens, v, m);
    for w in [1usize, 8, 64, 256, 1024, 2048] {
        let rows = (tokens / w).max(1);
        let time = gpu.gemm_time(w, rows, m, v) + gpu.gemm_time(w, rows, v, m);
        t.row(&[
            w.to_string(),
            format!("B({w}, 1, {rows}, {m})"),
            format!("{:.2}", time * 1e3),
            fmt_speedup(time / base),
        ]);
    }
    t
}

/// Figure 10: expert computation throughput under the rigid All-to-All
/// layout vs the Flexible All-to-All layout, across scale.
pub fn fig10() -> Table {
    let gpu = GpuCostModel::a100();
    let dims = LayerDims::figure23();
    let mut t = Table::new(
        "Figure 10: expert throughput, rigid A2A layout vs Flexible A2A layout",
        &["GPUs", "Rigid (TFLOP/s)", "Flexible (TFLOP/s)", "Flex gain"],
    );
    let rows_total = dims.expert_rows();
    let flops = 2.0 * rows_total as f64 * dims.model_dim as f64 * dims.hidden_dim as f64 * 2.0;
    for w in [16usize, 64, 256, 1024, 2048] {
        let de = dims.local_experts;
        let rigid_rows = (rows_total / (w * de)).max(1);
        let rigid = gpu.gemm_time(w * de, rigid_rows, dims.model_dim, dims.hidden_dim)
            + gpu.gemm_time(w * de, rigid_rows, dims.hidden_dim, dims.model_dim);
        let flex_rows = rows_total / de;
        let flex = gpu.gemm_time(de, flex_rows, dims.model_dim, dims.hidden_dim)
            + gpu.gemm_time(de, flex_rows, dims.hidden_dim, dims.model_dim);
        t.row(&[
            w.to_string(),
            format!("{:.1}", flops / rigid / 1e12),
            format!("{:.1}", flops / flex / 1e12),
            fmt_speedup(rigid / flex),
        ]);
    }
    t
}

/// Figure 20: All-to-All latency, linear vs 2DH, across scale and
/// message size.
pub fn fig20() -> Table {
    let mut t = Table::new(
        "Figure 20: All-to-All latency, linear vs 2DH (NCCL impl)",
        &["GPUs", "Size", "Linear", "2DH", "2DH speedup"],
    );
    for w in [64usize, 256, 1024, 2048, 4096] {
        let timing = CollectiveTiming::new(World::azure(w));
        for s in [MIB, 32.0 * MIB, 256.0 * MIB] {
            let linear = timing.linear_time(s, Protocol::Simple);
            let two_dh = timing.two_dh_time_impl(s, Protocol::Simple, A2aImpl::NcclApi);
            t.row(&[
                w.to_string(),
                fmt_bytes(s),
                fmt_time(linear),
                fmt_time(two_dh),
                fmt_speedup(linear / two_dh),
            ]);
        }
    }
    t
}

/// Figure 21: 2DH All-to-All, NCCL-API implementation vs
/// MSCCL-optimized (with per-size protocol choice), at 64 GPUs.
pub fn fig21() -> Table {
    let timing = CollectiveTiming::new(World::azure(64));
    let mut t = Table::new(
        "Figure 21: 2DH implementation comparison at 64 GPUs",
        &[
            "Size",
            "Linear (NCCL)",
            "2DH (NCCL)",
            "2DH (MSCCL Simple)",
            "2DH (MSCCL LL128)",
            "Best",
        ],
    );
    for s in [MIB, 32.0 * MIB, 256.0 * MIB] {
        let linear = timing.linear_time(s, Protocol::Simple);
        let nccl = timing.two_dh_time_impl(s, Protocol::Simple, A2aImpl::NcclApi);
        let simple = timing.two_dh_time_impl(s, Protocol::Simple, A2aImpl::Msccl);
        let ll128 = timing.two_dh_time_impl(s, Protocol::Ll128, A2aImpl::Msccl);
        let best = if ll128 < simple { "LL128" } else { "Simple" };
        t.row(&[
            fmt_bytes(s),
            fmt_time(linear),
            fmt_time(nccl),
            fmt_time(simple),
            fmt_time(ll128),
            best.to_string(),
        ]);
    }
    t
}

/// Table 4: GPU memory cost of a single MoE layer, Fairseq vs Tutel.
pub fn table4() -> Table {
    let mut t = Table::new(
        "Table 4: MoE layer memory (M = V = 4096, top-2, dE = 2, E = 64)",
        &["tokens/step", "Fairseq (GiB)", "Tutel (GiB)", "Saving"],
    );
    for tokens in [4096usize, 8192, 16384, 32768] {
        let s = MemorySettings::table4(tokens);
        let fair = fairseq_layer_memory(&s).peak_gib();
        let tut = tutel_layer_memory(&s).peak_gib();
        t.row(&[
            tokens.to_string(),
            format!("{fair:.2}"),
            format!("{tut:.2}"),
            format!("-{:.1}%", (1.0 - tut / fair) * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ratio_grows_with_scale() {
        let t = table1();
        assert_eq!(t.len(), 3);
        let text = t.render();
        assert!(text.contains("16"));
    }

    #[test]
    fn fig7_shows_large_slowdown_at_2048() {
        let text = fig7().render();
        // Last row must show a multi-x slowdown.
        let last = text.lines().last().unwrap();
        assert!(last.contains("2048"));
        let x: f64 = last
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(x > 5.0, "slowdown {x}");
    }

    #[test]
    fn fig20_2dh_wins_small_sizes_at_scale() {
        let t = fig20();
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn all_micro_tables_render() {
        for t in [
            table1(),
            fig6a(),
            fig6b(),
            fig7(),
            fig10(),
            fig20(),
            fig21(),
            table4(),
        ] {
            assert!(!t.is_empty());
            assert!(!t.render().is_empty());
        }
    }
}
