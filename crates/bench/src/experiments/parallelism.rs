//! Adaptive parallelism switching: Figure 3 (P1 vs P2 preference
//! landscape) and Table 5 (adaptive improvement).

use tutel_comm::{CollectiveTiming, World};
use tutel_experts::{InlineParallelismRouter, MoeDims, Parallelism};

use crate::report::fmt_pct;
use crate::Table;

fn router(world: usize) -> InlineParallelismRouter {
    InlineParallelismRouter::new(CollectiveTiming::new(World::azure(world)))
}

/// Figure 3: throughput ratio P2/P1 under varying capacity factor and
/// top-k (16K hidden size, 2,048 channel size — above 1.0 means P2
/// outperforms P1).
pub fn fig3() -> Table {
    let r = router(8);
    let mut t = Table::new(
        "Figure 3: P2/P1 throughput ratio vs capacity factor (V = 16K, M = 2K, W = 8, E = 2)",
        &[
            "f",
            "top-1 ratio",
            "top-2 ratio",
            "top-1 winner",
            "top-2 winner",
        ],
    );
    for f in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut ratios = Vec::new();
        let mut winners = Vec::new();
        for k in [1usize, 2] {
            let dims = MoeDims {
                world: 8,
                global_experts: 2,
                tokens: 2048,
                k,
                capacity_factor: f,
                model_dim: 2048,
                hidden_dim: 16384,
                weight_precision: tutel_tensor::Precision::F32,
            };
            // Throughput ratio P2/P1 = time(P1)/time(P2).
            let ratio = r.cost_of(Parallelism::P1, &dims) / r.cost_of(Parallelism::P2, &dims);
            ratios.push(format!("{ratio:.2}"));
            winners.push(if ratio > 1.0 { "P2" } else { "P1" }.to_string());
        }
        t.row(&[
            format!("{f}"),
            ratios[0].clone(),
            ratios[1].clone(),
            winners[0].clone(),
            winners[1].clone(),
        ]);
    }
    t
}

/// Table 5a: adaptive parallelism improvement vs each static choice,
/// sweeping the capacity factor (E = 2, tokens/step = 2K, V = 8K).
pub fn table5a() -> Table {
    let r = router(8);
    let mut t = Table::new(
        "Table 5a: adaptive improvement over static parallelism (E2, S2K, V8K)",
        &["f", "vs static P1", "vs static P2", "adaptive picks"],
    );
    for f in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let dims = MoeDims {
            world: 8,
            global_experts: 2,
            tokens: 2048,
            k: 2,
            capacity_factor: f,
            model_dim: 2048,
            hidden_dim: 8192,
            weight_precision: tutel_tensor::Precision::F32,
        };
        let p1 = r.cost_of(Parallelism::P1, &dims);
        let p2 = r.cost_of(Parallelism::P2, &dims);
        let best = p1.min(p2);
        t.row(&[
            format!("f{f}"),
            fmt_pct((p1 - best) / p1),
            fmt_pct((p2 - best) / p2),
            r.choose(&dims).to_string(),
        ]);
    }
    t
}

/// One Table 5b scenario: `(E, tokens/step, V, f-range)`.
struct Scenario {
    label: &'static str,
    experts: usize,
    tokens: usize,
    hidden: usize,
    fs: &'static [f64],
}

/// Table 5b: adaptive improvement across model settings (W = 8,
/// M = 2K), including the mixed-f row where adaptivity beats *both*
/// static choices simultaneously.
pub fn table5b() -> Table {
    let r = router(8);
    let scenarios = [
        Scenario {
            label: "f1,E4,S1K,V4K",
            experts: 4,
            tokens: 1024,
            hidden: 4096,
            fs: &[1.0],
        },
        Scenario {
            label: "f1,E4,S1K,V8K",
            experts: 4,
            tokens: 1024,
            hidden: 8192,
            fs: &[1.0],
        },
        Scenario {
            label: "f1,E2,S16K,V2K",
            experts: 2,
            tokens: 16384,
            hidden: 2048,
            fs: &[1.0],
        },
        Scenario {
            label: "f1,E2,S32K,V2K",
            experts: 2,
            tokens: 32768,
            hidden: 2048,
            fs: &[1.0],
        },
        Scenario {
            label: "f1,E4,S4K,V8K",
            experts: 4,
            tokens: 4096,
            hidden: 8192,
            fs: &[1.0],
        },
        Scenario {
            label: "f1,E1,S4K,V8K",
            experts: 1,
            tokens: 4096,
            hidden: 8192,
            fs: &[1.0],
        },
        Scenario {
            label: "f1~16,E4,S2K,V8K",
            experts: 4,
            tokens: 2048,
            hidden: 8192,
            fs: &[1.0, 2.0, 4.0, 8.0, 16.0],
        },
    ];
    let mut t = Table::new(
        "Table 5b: adaptive improvement on different settings (W = 8, M = 2K)",
        &["Setting", "vs static P1", "vs static P2"],
    );
    for s in scenarios {
        let (mut p1_total, mut p2_total, mut best_total) = (0.0, 0.0, 0.0);
        for &f in s.fs {
            let dims = MoeDims {
                world: 8,
                global_experts: s.experts,
                tokens: s.tokens,
                k: 2,
                capacity_factor: f,
                model_dim: 2048,
                hidden_dim: s.hidden,
                weight_precision: tutel_tensor::Precision::F32,
            };
            let p1 = r.cost_of(Parallelism::P1, &dims);
            let p2 = r.cost_of(Parallelism::P2, &dims);
            p1_total += p1;
            p2_total += p2;
            best_total += p1.min(p2);
        }
        t.row(&[
            s.label.to_string(),
            fmt_pct((p1_total - best_total) / p1_total),
            fmt_pct((p2_total - best_total) / p2_total),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_crossover_exists_for_both_k() {
        let text = fig3().render();
        assert!(
            text.contains("P1") && text.contains("P2"),
            "both parallelisms must win somewhere:\n{text}"
        );
    }

    #[test]
    fn table5a_adaptive_dominates() {
        // Every row's improvement is non-negative against both statics.
        let t = table5a();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn table5b_mixed_f_row_beats_both() {
        let text = table5b().render();
        let mixed = text.lines().find(|l| l.contains("f1~16")).unwrap();
        let pcts: Vec<f64> = mixed
            .split_whitespace()
            .filter(|w| w.ends_with('%'))
            .map(|w| w.trim_end_matches('%').parse().unwrap())
            .collect();
        assert_eq!(pcts.len(), 2);
        assert!(
            pcts.iter().all(|&p| p > 0.0),
            "mixed-f adaptivity must beat both statics: {pcts:?}"
        );
    }
}
