//! End-to-end accuracy experiments on SwinLite-MoE over the synthetic
//! clustered-token task: Figure 1 (dynamic capacity telemetry),
//! Tables 9–13, Figure 25 (BPR at reduced inference capacity).
//!
//! Every function takes a step budget so the `repro_*` binaries can run
//! full-fidelity sweeps while unit tests use quick budgets.

use tutel::data::SyntheticVision;
use tutel::model::{SwinLiteConfig, SwinLiteMoe};
use tutel::trainer::{evaluate, few_shot_linear_eval, train, TrainConfig, TrainStats};
use tutel::{MoeConfig, RouterKind};
use tutel_tensor::Rng;

use crate::report::fmt_pct;
use crate::Table;

/// Model size analogues of SwinV2-S / SwinV2-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSize {
    /// Small.
    S,
    /// Base.
    B,
}

/// The shared experimental setup.
#[derive(Debug, Clone, Copy)]
pub struct Setup {
    /// Input channels of the synthetic task.
    pub in_channels: usize,
    /// Tokens per sample.
    pub tokens_per_sample: usize,
    /// Classes.
    pub classes: usize,
    /// Latent clusters (the "ideal" expert count).
    pub clusters: usize,
    /// Dataset seed.
    pub data_seed: u64,
    /// Model-init seed.
    pub model_seed: u64,
}

impl Default for Setup {
    fn default() -> Self {
        Setup {
            in_channels: 32,
            tokens_per_sample: 32,
            classes: 16,
            clusters: 16,
            data_seed: 2023,
            model_seed: 7,
        }
    }
}

impl Setup {
    /// The pre-training ("ImageNet-22K analogue") dataset.
    pub fn dataset(&self) -> SyntheticVision {
        SyntheticVision::new(
            self.in_channels,
            self.tokens_per_sample,
            self.classes,
            self.clusters,
            self.data_seed,
        )
    }

    /// A SwinLite config for the given size and optional MoE settings.
    pub fn model_cfg(&self, size: ModelSize, moe: Option<MoeConfig>) -> SwinLiteConfig {
        let mut cfg = SwinLiteConfig::new(self.in_channels, self.tokens_per_sample, self.classes);
        // Hidden widths are deliberately narrow: the dense FFN must
        // squeeze all 16 cluster transforms into V units while each
        // expert only handles its routed share — the capacity asymmetry
        // behind the paper's sparse-vs-dense gap.
        match size {
            ModelSize::S => {
                cfg.channels = 20;
                cfg.hidden = 8;
                cfg.blocks = 4;
            }
            ModelSize::B => {
                cfg.channels = 32;
                cfg.hidden = 8;
                cfg.blocks = 4;
            }
        }
        if let Some(m) = moe {
            cfg = cfg.with_moe(m);
        }
        cfg
    }

    /// Builds and pre-trains a model; returns it with its stats.
    pub fn pretrain(
        &self,
        size: ModelSize,
        moe: Option<MoeConfig>,
        steps: usize,
    ) -> (SwinLiteMoe, TrainStats) {
        let cfg = self.model_cfg(size, moe);
        let mut rng = Rng::seed(self.model_seed);
        let mut model = SwinLiteMoe::new(&cfg, &mut rng).expect("config is valid");
        let tc = TrainConfig {
            steps,
            batch: 32,
            lr: 0.05,
            seed: self.data_seed ^ 1,
            ..TrainConfig::default()
        };
        let stats = train(&mut model, &self.dataset(), &tc);
        (model, stats)
    }
}

/// Figure 1: needed expert capacity over training, per MoE layer, for a
/// thin-tiny and a base model analogue.
pub fn fig1(steps: usize) -> Vec<Table> {
    let setup = Setup::default();
    let mut out = Vec::new();
    for (name, size) in [("thin-tiny", ModelSize::S), ("base", ModelSize::B)] {
        let moe = MoeConfig::new(0, 0, 8).with_capacity_factor(0.0);
        let (_, stats) = setup.pretrain(size, Some(moe), steps);
        let layers = stats
            .needed_factor_trace
            .first()
            .map(|v| v.len())
            .unwrap_or(0);
        let mut t = Table::new(
            &format!("Figure 1 ({name}): needed capacity factor per MoE layer over training"),
            &["step", "layer 1", "last layer", "max/min (dyn range)"],
        );
        let sample_every = (steps / 10).max(1);
        for (i, factors) in stats.needed_factor_trace.iter().enumerate() {
            if i % sample_every != 0 {
                continue;
            }
            let first = factors.first().copied().unwrap_or(0.0);
            let last = factors.last().copied().unwrap_or(0.0);
            t.row(&[
                i.to_string(),
                format!("{first:.2}"),
                format!("{last:.2}"),
                String::new(),
            ]);
        }
        // Dynamic range across the whole run, per layer.
        for layer in 0..layers {
            let series: Vec<f64> = stats.needed_factor_trace.iter().map(|v| v[layer]).collect();
            let max = series.iter().copied().fold(f64::MIN, f64::max);
            let min = series.iter().copied().fold(f64::MAX, f64::min).max(1e-9);
            t.row(&[
                format!("layer{layer}"),
                String::new(),
                String::new(),
                format!("{:.2}x", max / min),
            ]);
        }
        out.push(t);
    }
    out
}

/// Table 9: sparse SwinLite-MoE vs its dense counterpart on
/// pre-training, transfer fine-tuning (frozen MoE), and 5-shot linear
/// evaluation.
pub fn table9(steps: usize) -> Table {
    let setup = Setup::default();
    let ds = setup.dataset();
    let shifted = ds.shifted(555);
    let mut t = Table::new(
        "Table 9: dense vs sparse accuracy (pretrain / transfer-ft / 5-shot)",
        &["Model", "Pretrain acc@1", "Transfer acc", "5-shot acc@1"],
    );
    for (name, moe) in [
        ("SwinLite-B (dense)", None),
        (
            "SwinLite-MoE-B (E=8)",
            Some(MoeConfig::new(0, 0, 8).with_capacity_factor(0.0)),
        ),
    ] {
        let (mut model, _) = setup.pretrain(ModelSize::B, moe, steps);
        let pre = evaluate(&model, &ds, 8, 99);
        let shot = few_shot_linear_eval(&model, &ds, 5, 100);
        // Transfer: fine-tune on the shifted task with MoE layers fixed
        // (the Table 10-validated strategy).
        model.set_moe_frozen(true);
        let tc = TrainConfig {
            steps: steps / 2,
            batch: 16,
            lr: 0.05,
            seed: 3,
            ..TrainConfig::default()
        };
        train(&mut model, &shifted, &tc);
        let transfer = evaluate(&model, &shifted, 8, 101);
        t.row(&[
            name.to_string(),
            fmt_pct(pre),
            fmt_pct(transfer),
            fmt_pct(shot),
        ]);
    }
    t
}

/// Table 10: transfer fine-tuning with MoE layers tuned vs fixed,
/// under two scarcity protocols. The paper's full finding (tuned below
/// dense, fixed above) does **not** reproduce on this substitute — see
/// EXPERIMENTS.md: our 16-class pre-training yields class-entangled
/// experts whose frozen features cannot be re-decoded from 8
/// samples/class. The harsh protocol still demonstrates the mechanism
/// the paper warns about: tuning sparse experts on scarce data
/// degrades below the dense baseline.
pub fn table10(steps: usize) -> Table {
    let setup = Setup::default();
    let shifted = setup.dataset().shifted(555);
    let mut t = Table::new(
        "Table 10: transfer fine-tuning, tuned vs fixed MoE layers",
        &["Protocol", "Model", "MoE layers", "Transfer acc"],
    );
    // (pool batches of 16, finetune lr, finetune steps)
    let protocols: [(&str, usize, f32, usize); 2] = [
        ("gentle (128 samples)", 8, 0.03, (steps / 2).clamp(100, 400)),
        ("harsh (64 samples)", 4, 0.08, steps.clamp(200, 800)),
    ];
    for (label, pool_batches, lr, ft_steps) in protocols {
        let finetune_scarce = |model: &mut SwinLiteMoe, freeze: bool| {
            model.set_moe_frozen(freeze);
            let mut rng = Rng::seed(42);
            let pool: Vec<_> = (0..pool_batches)
                .map(|_| shifted.batch(16, &mut rng))
                .collect();
            for i in 0..ft_steps {
                let (x, y) = &pool[i % pool.len()];
                let (logits, _, _) = model.forward(x, 16).expect("forward");
                let (_, dl) = tutel::model::cross_entropy(&logits, y);
                model.backward(&dl).expect("backward");
                model.step(lr);
            }
        };
        let (mut dense, _) = setup.pretrain(ModelSize::B, None, steps);
        finetune_scarce(&mut dense, false);
        t.row(&[
            label.to_string(),
            "SwinLite-B (dense)".into(),
            "-".into(),
            fmt_pct(evaluate(&dense, &shifted, 8, 7)),
        ]);
        for (mode, freeze) in [("tuned", false), ("fixed", true)] {
            let moe = MoeConfig::new(0, 0, 8).with_capacity_factor(1.25);
            let (mut model, _) = setup.pretrain(ModelSize::B, Some(moe), steps);
            finetune_scarce(&mut model, freeze);
            t.row(&[
                label.to_string(),
                "SwinLite-MoE-B (E=8)".into(),
                mode.into(),
                fmt_pct(evaluate(&model, &shifted, 8, 7)),
            ]);
        }
    }
    t
}

/// Table 11: ablation on the number of experts, for both model sizes.
pub fn table11(steps: usize) -> Table {
    let setup = Setup::default();
    let ds = setup.dataset();
    let mut t = Table::new(
        "Table 11: expert-count ablation",
        &[
            "Model",
            "E",
            "#param",
            "#param_act",
            "Final loss",
            "Pretrain acc@1",
            "5-shot acc@1",
        ],
    );
    for size in [ModelSize::S, ModelSize::B] {
        let name = match size {
            ModelSize::S => "SwinLite-S",
            ModelSize::B => "SwinLite-B",
        };
        // Dense baseline row.
        let (model, stats) = setup.pretrain(size, None, steps);
        t.row(&[
            format!("{name} (dense)"),
            "-".into(),
            model.num_params().to_string(),
            model.active_params().to_string(),
            format!("{:.3}", stats.final_loss),
            fmt_pct(evaluate(&model, &ds, 8, 99)),
            fmt_pct(few_shot_linear_eval(&model, &ds, 5, 100)),
        ]);
        for e in [2usize, 4, 8, 16, 32] {
            let moe = MoeConfig::new(0, 0, e).with_capacity_factor(0.0);
            let (model, stats) = setup.pretrain(size, Some(moe), steps);
            t.row(&[
                format!("{name}-MoE"),
                e.to_string(),
                model.num_params().to_string(),
                model.active_params().to_string(),
                format!("{:.3}", stats.final_loss),
                fmt_pct(evaluate(&model, &ds, 8, 99)),
                fmt_pct(few_shot_linear_eval(&model, &ds, 5, 100)),
            ]);
        }
    }
    t
}

/// Table 12: top-k × capacity-factor ablation (train-f 1.0, varying
/// infer-f), with a relative compute proxy.
pub fn table12(steps: usize) -> Table {
    let setup = Setup::default();
    let ds = setup.dataset();
    let mut t = Table::new(
        "Table 12: top-k and capacity-factor ablation",
        &["k", "train-f", "infer-f", "rel. FLOPs", "acc@1"],
    );
    for k in [1usize, 2] {
        let moe = MoeConfig::new(0, 0, 8)
            .with_top_k(k)
            .with_capacity_factor(1.0);
        let (mut model, _) = setup.pretrain(ModelSize::B, Some(moe), steps);
        for infer_f in [0.5, 0.625, 1.0, 1.25] {
            model.set_capacity_factor(infer_f);
            let acc = evaluate(&model, &ds, 8, 99);
            // Relative expert compute: proportional to k·min(f, 1)
            // (capacity caps the processed rows).
            let rel = k as f64 * infer_f.min(1.5);
            t.row(&[
                k.to_string(),
                "1.0".into(),
                format!("{infer_f}"),
                format!("{rel:.2}"),
                fmt_pct(acc),
            ]);
        }
        model.set_capacity_factor(1.0);
    }
    t
}

/// Table 13: linear vs cosine router, both model sizes.
pub fn table13(steps: usize) -> Table {
    let setup = Setup::default();
    let ds = setup.dataset();
    let mut t = Table::new(
        "Table 13: linear vs cosine router (E = 8, k = 1, f = 1.25)",
        &["Model", "Router", "Pretrain acc@1", "5-shot acc@1"],
    );
    for size in [ModelSize::S, ModelSize::B] {
        let name = match size {
            ModelSize::S => "SwinLite-MoE-S",
            ModelSize::B => "SwinLite-MoE-B",
        };
        for router in [RouterKind::Linear, RouterKind::Cosine] {
            let moe = MoeConfig::new(0, 0, 8)
                .with_capacity_factor(1.25)
                .with_router(router);
            let (model, _) = setup.pretrain(size, Some(moe), steps);
            t.row(&[
                name.to_string(),
                format!("{router:?}"),
                fmt_pct(evaluate(&model, &ds, 8, 99)),
                fmt_pct(few_shot_linear_eval(&model, &ds, 5, 100)),
            ]);
        }
    }
    t
}

/// Figure 25: accuracy vs inference capacity factor, with and without
/// batch prioritized routing (trained at f = 1.25).
pub fn fig25(steps: usize) -> Table {
    let setup = Setup::default();
    let ds = setup.dataset();
    let mut t = Table::new(
        "Figure 25: accuracy vs inference capacity factor, BPR on/off",
        &["infer-f", "w/ BPR", "w/o BPR"],
    );
    let train_one = |bpr: bool| {
        let moe = MoeConfig::new(0, 0, 8)
            .with_capacity_factor(1.25)
            .with_bpr(bpr);
        setup.pretrain(ModelSize::B, Some(moe), steps).0
    };
    let mut with_bpr = train_one(true);
    let mut without = train_one(false);
    for infer_f in [0.1, 0.25, 0.5, 0.75, 1.0, 1.25] {
        with_bpr.set_capacity_factor(infer_f);
        without.set_capacity_factor(infer_f);
        t.row(&[
            format!("{infer_f}"),
            fmt_pct(evaluate(&with_bpr, &ds, 6, 99)),
            fmt_pct(evaluate(&without, &ds, 6, 99)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: usize = 60;

    #[test]
    fn fig1_produces_traces_with_dynamic_range() {
        let tables = fig1(QUICK);
        assert_eq!(tables.len(), 2);
        let text = tables[0].render();
        assert!(text.contains('x'), "dynamic range rows missing:\n{text}");
    }

    #[test]
    fn table9_moe_is_at_least_competitive() {
        let t = table9(200);
        let text = t.render();
        let accs: Vec<f64> = text
            .split_whitespace()
            .filter(|w| w.ends_with('%'))
            .map(|w| w.trim_end_matches('%').parse().unwrap())
            .collect();
        assert_eq!(accs.len(), 6);
        // MoE pretrain accuracy (row 2, col 1) ≥ dense − small noise.
        assert!(
            accs[3] >= accs[0] - 8.0,
            "MoE pretrain {} vs dense {}",
            accs[3],
            accs[0]
        );
    }

    #[test]
    fn table12_accuracy_degrades_gracefully_with_infer_f() {
        let t = table12(150);
        let text = t.render();
        let accs: Vec<f64> = text
            .lines()
            .filter(|l| l.trim_start().starts_with('1') || l.trim_start().starts_with('2'))
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .map(|w| w.trim_end_matches('%').parse().unwrap())
            })
            .collect();
        // f=1.25 accuracy ≥ f=0.5 accuracy for k=1 (dropping tokens
        // can't help).
        if accs.len() >= 4 {
            assert!(
                accs[3] + 10.0 >= accs[0],
                "acc at f=1.25 {} vs f=0.5 {}",
                accs[3],
                accs[0]
            );
        }
    }

    #[test]
    fn fig25_bpr_wins_at_reduced_capacity() {
        // Quick budget: just assert the table renders with the right
        // shape hooks; the full-budget run (repro_fig25) shows BPR
        // dominating for f in [0.25, 1.0].
        let t = fig25(150);
        assert_eq!(t.len(), 6);
        let text = t.render();
        let accs: Vec<f64> = text
            .split_whitespace()
            .filter(|w| w.ends_with('%'))
            .map(|w| w.trim_end_matches('%').parse().unwrap())
            .collect();
        assert_eq!(accs.len(), 12);
        // Accuracy at full capacity must not lose to accuracy at
        // f = 0.1 (the MoE layers are load-bearing). At this quick
        // budget the w/o-BPR variant can stay at chance level (equal
        // accuracies) depending on the RNG stream — the offline rand
        // shim draws a different stream than upstream rand 0.8 — so
        // this is `>=`, not `>`; the full-budget `repro_fig25` run is
        // the strict check that BPR dominates for f in [0.25, 1.0].
        let (bpr_low, bpr_full) = (accs[0], accs[8]);
        let (plain_low, plain_full) = (accs[1], accs[9]);
        // ±1pp slack: at the quick budget both variants hover at
        // chance level and a single eval sample (0.5pp) flips the
        // comparison with different float accumulation orders.
        assert!(
            bpr_full + 1.0 >= bpr_low,
            "w/ BPR: {bpr_low} !<= {bpr_full}"
        );
        assert!(
            plain_full + 1.0 >= plain_low,
            "w/o BPR: {plain_low} !<= {plain_full}"
        );
    }
}
