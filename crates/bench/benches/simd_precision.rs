//! SIMD and reduced-precision benches: the same kernels under the
//! scalar vs AVX2 dispatch tables (bit-identical outputs, different
//! wall clock), bf16 pack/unpack throughput, and f32 vs bf16-storage
//! expert compute (expected parity — storage halves *bytes*, while
//! arithmetic stays f32).
//!
//! The scalar/simd pairs price the tentpole directly: both sides run
//! in one process via `dispatch::with_simd_mode`, so the comparison
//! sees identical allocator/cache state. The per-iteration override
//! cost (one mutex + two atomic stores) is noise at these kernel
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel::{MoeConfig, MoeLayer};
use tutel_experts::{ExpertsBlock, ShardedExpertParams};
use tutel_tensor::{dispatch, Precision, Rng};

fn bench_gemm_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_gemm");
    for &(rows, mv) in &[(64usize, 256usize), (256, 256)] {
        let mut rng = Rng::seed(rows as u64);
        let x = rng.normal_tensor(&[rows, mv], 0.0, 1.0);
        let w = rng.normal_tensor(&[mv, mv], 0.0, 1.0);
        let id = format!("{rows}x{mv}x{mv}");
        group.bench_with_input(BenchmarkId::new("scalar", &id), &rows, |b, _| {
            b.iter(|| dispatch::with_simd_mode(Some(false), || x.matmul(&w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("simd", &id), &rows, |b, _| {
            b.iter(|| dispatch::with_simd_mode(Some(true), || x.matmul(&w).unwrap()))
        });
    }
    group.finish();
}

fn bench_train_step_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_train_step");
    // The (32, 64) config matches the historical moe_layer bench (its
    // steps are gate/dispatch-bound at CPU scale); (128, 256) is the
    // GEMM-dominated regime where the expert FFN carries the step.
    for &(model_dim, hidden, tokens) in
        &[(32usize, 64usize, 64usize), (32, 64, 256), (128, 256, 256)]
    {
        let cfg = MoeConfig::new(model_dim, hidden, 8).with_top_k(2);
        let mut rng = Rng::seed(1);
        let mut layer = MoeLayer::new(&cfg, &mut rng).unwrap();
        let x = rng.normal_tensor(&[tokens, model_dim], 0.0, 1.0);
        let id = format!("m{model_dim}v{hidden}t{tokens}");
        let mut step = |simd: bool| {
            dispatch::with_simd_mode(Some(simd), || {
                let out = layer.forward(&x).unwrap();
                let dx = layer.backward(&out.output).unwrap();
                layer.step(0.0);
                dx
            })
        };
        group.bench_with_input(BenchmarkId::new("scalar", &id), &tokens, |b, _| {
            b.iter(|| step(false))
        });
        group.bench_with_input(BenchmarkId::new("simd", &id), &tokens, |b, _| {
            b.iter(|| step(true))
        });
    }
    group.finish();
}

fn bench_bf16_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("bf16_wire");
    let n = 1 << 20;
    let mut rng = Rng::seed(9);
    let src = rng.normal_tensor(&[n], 0.0, 1.0);
    let mut packed = vec![0u16; n];
    let mut out = vec![0.0f32; n];
    for &(label, simd) in &[("scalar", false), ("simd", true)] {
        group.bench_with_input(BenchmarkId::new("pack_1m", label), &n, |b, _| {
            b.iter(|| {
                dispatch::with_simd_mode(Some(simd), || {
                    dispatch::bf16_pack_slice(src.as_slice(), &mut packed)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("unpack_1m", label), &n, |b, _| {
            b.iter(|| {
                dispatch::with_simd_mode(Some(simd), || {
                    dispatch::bf16_unpack_slice(&packed, &mut out)
                })
            })
        });
    }
    group.finish();
}

fn bench_bf16_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("bf16_storage");
    let (e, m, v) = (8usize, 64, 128);
    let mut rng = Rng::seed(11);
    let mut f32_block = ExpertsBlock::new(e, m, v, &mut rng);
    let (w1, b1, w2, b2) = f32_block.weights();
    let mut bf16_block = ExpertsBlock::from_weights(w1.clone(), b1.clone(), w2.clone(), b2.clone())
        .unwrap()
        .with_storage_precision(Precision::Bf16);
    let x = rng.normal_tensor(&[e, 32, m], 0.0, 1.0);
    group.bench_function("forward/f32", |b| b.iter(|| f32_block.forward(&x).unwrap()));
    group.bench_function("forward/bf16", |b| {
        b.iter(|| bf16_block.forward(&x).unwrap())
    });
    group.finish();

    // Not a timing: the byte counts the precision mode moves on the
    // wire for the P2 parameter all-gather, printed for the benchmark
    // record.
    let shards = 2;
    let wire = |block: &ExpertsBlock| {
        let params = ShardedExpertParams::from_block(block, shards).unwrap();
        params.shard_bytes() * (params.shards() as u64 - 1)
    };
    println!(
        "bf16_wire_bytes: params all-gather per rank (E{e} M{m} V{v}, {shards} shards): \
         f32 {} B, bf16 {} B",
        wire(&f32_block),
        wire(&bf16_block)
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm_modes, bench_train_step_modes, bench_bf16_wire, bench_bf16_storage
}
criterion_main!(benches);
