//! Pins the cost of the `check-race` instrumentation hooks when the
//! feature is **off** — which is how every production build and this
//! bench crate compile `tutel-rt` (tutel-bench does not depend on
//! tutel-check, so feature unification cannot drag `check-race` in
//! here). With the feature compiled out, every hook site in
//! `rt::pool` and `rt::arena` is an empty `#[cfg]` branch; these rows
//! exist so a future change that leaks instrumentation into the
//! feature-off path (a branch, an atomic load, an allocation) shows
//! up as a criterion delta on the hot arena and pool paths.
//!
//! Rows are named `disabled_*`; CI smokes them with
//! `--warm-up-time 1 --measurement-time 1 disabled_`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Arena take/put pair on a private arena: the hottest instrumented
/// path (two hook sites per round trip).
fn bench_arena(c: &mut Criterion) {
    let arena = tutel_rt::Arena::new();
    arena.prewarm(4096, 2);
    c.bench_function("disabled_arena_take_put", |b| {
        b.iter(|| {
            let buf = arena.take_raw(4096);
            black_box(&buf);
            arena.put(buf);
        })
    });
}

/// Pool fan-out over small chunks: one submit/join plus one
/// claim/done pair per chunk of instrumented sites.
fn bench_pool(c: &mut Criterion) {
    let mut data = vec![0.0f32; 4096];
    c.bench_function("disabled_parallel_chunks", |b| {
        b.iter(|| {
            tutel_rt::parallel_chunks(&mut data, 256, |ci, chunk| {
                for v in chunk.iter_mut() {
                    *v += ci as f32;
                }
            });
            black_box(&data);
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_arena(c);
    bench_pool(c);
}

criterion_group! {
    name = race_overhead;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(race_overhead);
