//! Algorithm 2 overhead bench: the strategy decision must be O(1) per
//! iteration once factors are known (Section 3.3's complexity claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel::pipeline::OnlineStrategySearch;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_search");
    // Pre-warm searches with many known capacity factors.
    for &known in &[10usize, 100, 1000] {
        let mut search = OnlineStrategySearch::new(0.5);
        for i in 0..known {
            let f = 1.0 + i as f64 * 0.01;
            let s = search.next_strategy(f);
            search.record(f, s, 1.0 + (i % 7) as f64 * 0.1);
        }
        group.bench_with_input(BenchmarkId::new("known_f_lookup", known), &known, |b, _| {
            b.iter(|| search.next_strategy(1.0 + (known / 2) as f64 * 0.01))
        });
    }
    // New-factor path (bucket recomputation).
    group.bench_function("new_f_rebucket_100_known", |b| {
        let mut base = OnlineStrategySearch::new(0.5);
        for i in 0..100 {
            let f = 1.0 + i as f64 * 0.01;
            let s = base.next_strategy(f);
            base.record(f, s, 1.0);
        }
        let mut next = 100usize;
        b.iter(|| {
            let mut s = base.clone();
            next += 1;
            s.next_strategy(1.0 + next as f64 * 0.013)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_search
}
criterion_main!(benches);
