//! Criterion bench for the `tutel-rt` compute runtime: blocked GEMM at
//! the Figure 7 shape family, parallel encode/decode at large token
//! counts, and buffer acquisition with the arena on vs off.
//!
//! The Figure 7 fflayer GEMM is `rows × M` by `M × V` with `M = V`
//! (the paper runs M = V = 2048 at 16384 tokens/step; here the family
//! is scaled to CPU-feasible sizes, keeping the square-weight shape).
//! `serial` pins the pool to one participant via
//! `with_parallelism_limit`, so the pair of lines prices the pool
//! itself, not the host's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_gate::{route, RouteConfig};
use tutel_kernels::{fast_decode, fast_encode};
use tutel_rt::with_parallelism_limit;
use tutel_tensor::{scratch, Rng, Tensor};

fn bench_gemm_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_runtime_gemm");
    // (rows, m = v): Figure 7 family, rows = tokens per GPU.
    for &(rows, mv) in &[(16usize, 256usize), (64, 256), (256, 256)] {
        let mut rng = Rng::seed(rows as u64);
        let x = rng.normal_tensor(&[rows, mv], 0.0, 1.0);
        let w = rng.normal_tensor(&[mv, mv], 0.0, 1.0);
        let id = format!("{rows}x{mv}x{mv}");
        group.bench_with_input(BenchmarkId::new("pool", &id), &rows, |b, _| {
            b.iter(|| x.matmul(&w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("serial", &id), &rows, |b, _| {
            b.iter(|| with_parallelism_limit(1, || x.matmul(&w).unwrap()))
        });
    }
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_runtime_dispatch");
    group.sample_size(10);
    for &tokens in &[4096usize, 16384] {
        let (experts, m) = (16usize, 64usize);
        let mut rng = Rng::seed(tokens as u64);
        let probs = rng
            .uniform_tensor(&[tokens, experts], 0.0, 1.0)
            .softmax_last();
        let routing = route(&probs, &RouteConfig::top2()).unwrap();
        let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
        let y = rng.normal_tensor(&[experts, routing.capacity, m], 0.0, 1.0);

        group.bench_with_input(BenchmarkId::new("pool", tokens), &tokens, |b, _| {
            b.iter(|| {
                let d = fast_encode(&x, &routing).unwrap();
                let o = fast_decode(&y, &routing, tokens).unwrap();
                scratch::recycle(d);
                o
            })
        });
        group.bench_with_input(BenchmarkId::new("serial", tokens), &tokens, |b, _| {
            b.iter(|| {
                with_parallelism_limit(1, || {
                    let d = fast_encode(&x, &routing).unwrap();
                    let o = fast_decode(&y, &routing, tokens).unwrap();
                    scratch::recycle(d);
                    o
                })
            })
        });
    }
    group.finish();
}

fn bench_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_runtime_arena");
    // The encode-buffer size at T = 16384: E × C × M floats.
    let dims = [16usize, 2048, 64];
    group.bench_function("arena_on", |b| {
        b.iter(|| {
            let t = scratch::zeroed(&dims);
            scratch::recycle(t);
        })
    });
    group.bench_function("arena_off", |b| b.iter(|| Tensor::zeros(&dims)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm_fig7, bench_dispatch, bench_arena
}
criterion_main!(benches);
