//! Functional All-to-All benches (behind Figures 15/20): linear vs 2DH
//! vs naïve local aggregation, moving real bytes between simulated
//! ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_comm::{linear_all_to_all, naive_local_agg_all_to_all, two_dh_all_to_all, RankBuffers};
use tutel_simgpu::Topology;

fn buffers(n: usize, chunk: usize) -> RankBuffers {
    (0..n)
        .map(|s| (0..n * chunk).map(|i| (s * n * chunk + i) as f32).collect())
        .collect()
}

fn bench_all_to_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_to_all_functional");
    for &(nnodes, gpn) in &[(2usize, 4usize), (4, 8)] {
        let topo = Topology::new(nnodes, gpn);
        let n = topo.world_size();
        let bufs = buffers(n, 256);
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| linear_all_to_all(&bufs))
        });
        group.bench_with_input(BenchmarkId::new("two_dh", n), &n, |b, _| {
            b.iter(|| two_dh_all_to_all(&bufs, &topo))
        });
        group.bench_with_input(BenchmarkId::new("naive_local_agg", n), &n, |b, _| {
            b.iter(|| naive_local_agg_all_to_all(&bufs, &topo))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all_to_all
}
criterion_main!(benches);
