//! Cost of the telemetry instrumentation on the MoE hot path.
//!
//! The acceptance bar: with telemetry *disabled* (the default), the
//! instrumented layer must be indistinguishable from uninstrumented
//! code — every call site is one `Option` branch. The `enabled` rows
//! quantify what turning telemetry on costs (clock reads, ring
//! pushes, atomics).

use criterion::{criterion_group, criterion_main, Criterion};
use tutel::{MoeConfig, MoeLayer};
use tutel_gate::{route, RouteConfig};
use tutel_kernels::{fast_encode, fast_encode_observed};
use tutel_obs::Telemetry;
use tutel_tensor::Rng;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    let tokens = 256usize;
    let cfg = MoeConfig::new(32, 64, 8).with_top_k(2);
    let mut rng = Rng::seed(1);
    let mut layer = MoeLayer::new(&cfg, &mut rng).unwrap();
    let x = rng.normal_tensor(&[tokens, 32], 0.0, 1.0);

    // Layer inference: disabled handle (the default) vs enabled.
    group.bench_function("layer_infer/disabled", |b| {
        layer.set_telemetry(Telemetry::disabled());
        b.iter(|| layer.infer(&x).unwrap())
    });
    group.bench_function("layer_infer/enabled", |b| {
        layer.set_telemetry(Telemetry::enabled());
        b.iter(|| layer.infer(&x).unwrap())
    });

    // Kernel-level: the plain encode vs the instrumented wrapper with
    // a disabled handle — the pure price of the branch.
    let logits = rng.normal_tensor(&[tokens, 8], 0.0, 1.0);
    let probs = logits.softmax_last();
    let routing = route(&probs, &RouteConfig::top2()).unwrap();
    let disabled = Telemetry::disabled();
    group.bench_function("encode/plain", |b| {
        b.iter(|| fast_encode(&x, &routing).unwrap())
    });
    group.bench_function("encode/observed_disabled", |b| {
        b.iter(|| fast_encode_observed(&x, &routing, &disabled).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_overhead
}
criterion_main!(benches);
