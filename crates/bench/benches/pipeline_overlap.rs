//! Benches for the executed overlap schedule: the degree sweep over
//! the threaded runtime at both sweep world sizes, measuring the raw
//! executed wall-clock of `run_overlapped` per strategy. The link
//! model (and the acceptance comparison against degree 1) lives in
//! the `repro_pipeline` binary; this bench tracks the executor's own
//! overhead so schedule regressions show up as criterion deltas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel::pipeline::PipelineStrategy;
use tutel_bench::experiments::overlap_sweep::{run_point, TOKENS, WORLDS};

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_overlap");
    for &world in &WORLDS {
        for &tokens in &TOKENS {
            for strategy in PipelineStrategy::all() {
                let id = format!("w{world}/t{tokens}/{strategy}");
                group.bench_with_input(
                    BenchmarkId::new("executed", id),
                    &strategy,
                    |b, &strategy| b.iter(|| run_point(world, tokens, strategy)),
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_overlap
}
criterion_main!(benches);
