//! Expert fflayer bench (behind Figures 7/10): batched GEMM shapes
//! under the rigid vs flexible layouts — on CPU the row-efficiency gap
//! shows up as loop/blocking overhead on skinny matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_tensor::Rng;

fn bench_layout_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("expert_gemm_layout");
    // Fixed total work: 512 rows × (32 → 64); rigid splits rows across
    // a growing batch dimension (as a growing world would).
    for &batch in &[1usize, 8, 64] {
        let rows = 512 / batch;
        let mut rng = Rng::seed(batch as u64);
        let a = rng.normal_tensor(&[batch, rows, 32], 0.0, 1.0);
        let w = rng.normal_tensor(&[batch, 32, 64], 0.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("bmm_fixed_flops", batch),
            &batch,
            |b, _| b.iter(|| a.bmm(&w).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_layout_shapes
}
criterion_main!(benches);
