//! MoE layer benches: Tutel layer forward/backward vs the Fairseq
//! dense-path baseline (the end-to-end kernel story of Figure 23's
//! small-scale regime, measured on CPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel::{FairseqMoeLayer, MoeConfig, MoeLayer};
use tutel_tensor::Rng;

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("moe_layer");
    for &tokens in &[64usize, 256] {
        let cfg = MoeConfig::new(32, 64, 8).with_top_k(2);
        let mut rng = Rng::seed(1);
        let mut tutel_layer = MoeLayer::new(&cfg, &mut rng).unwrap();
        let fairseq = FairseqMoeLayer::new_seeded(&cfg, 1).unwrap();
        let x = rng.normal_tensor(&[tokens, 32], 0.0, 1.0);

        group.bench_with_input(BenchmarkId::new("tutel_infer", tokens), &tokens, |b, _| {
            b.iter(|| tutel_layer.infer(&x).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("fairseq_infer", tokens),
            &tokens,
            |b, _| b.iter(|| fairseq.infer(&x).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("tutel_train_step", tokens),
            &tokens,
            |b, _| {
                b.iter(|| {
                    let out = tutel_layer.forward(&x).unwrap();
                    let dx = tutel_layer.backward(&out.output).unwrap();
                    tutel_layer.step(0.0);
                    dx
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_layers
}
criterion_main!(benches);
