//! Benches for the threaded message-passing runtime: per-collective
//! overhead of the real multi-thread execution vs the sequential
//! functional reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_comm::runtime::run_threaded;
use tutel_comm::{linear_all_to_all, RankBuffers};
use tutel_simgpu::Topology;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_runtime");
    for &(nnodes, gpn) in &[(1usize, 4usize), (2, 4)] {
        let topo = Topology::new(nnodes, gpn);
        let n = topo.world_size();
        let bufs: RankBuffers = (0..n)
            .map(|r| (0..n * 128).map(|i| (r * 1000 + i) as f32).collect())
            .collect();
        let bufs_ref = &bufs;
        group.bench_with_input(BenchmarkId::new("sequential_linear", n), &n, |b, _| {
            b.iter(|| linear_all_to_all(bufs_ref))
        });
        group.bench_with_input(BenchmarkId::new("threaded_linear", n), &n, |b, _| {
            b.iter(|| {
                run_threaded(topo, |mut comm| {
                    comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded_2dh", n), &n, |b, _| {
            b.iter(|| {
                run_threaded(topo, |mut comm| {
                    comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded_allreduce", n), &n, |b, _| {
            b.iter(|| {
                run_threaded(topo, |mut comm| {
                    let mine = vec![comm.rank() as f32; n * 64];
                    comm.all_reduce_sum(&mine).unwrap()
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime
}
criterion_main!(benches);
