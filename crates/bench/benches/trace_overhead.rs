//! Cost of the causal-trace instrumentation on the comm hot path.
//!
//! The acceptance bar mirrors `telemetry_overhead`: with tracing
//! *disabled* (the default — every `run_threaded` call without a
//! [`TraceHub`]), the instrumented runtime must stay within 2% of an
//! uninstrumented one. Each trace call site is a single branch on an
//! `Option<Arc<_>>`, no clock read and no allocation, and the per-
//! transmission seq counters are never touched (`untraced` rows).
//! The `traced` rows quantify what turning the tracer on costs:
//! monotonic clock reads, ring pushes, and the seq map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_comm::runtime::{run_threaded, run_threaded_traced};
use tutel_obs::trace::{FlowKind, TraceHub, Tracer, TRACK_COMM};
use tutel_simgpu::Topology;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");

    // Collective level: the same 8-rank linear exchange with the
    // tracer compiled in but disarmed vs armed. The untraced row is
    // the <2% gate's numerator; the baseline is the pre-trace runtime
    // (identical code minus dead branches), which it must match.
    let topo = Topology::new(2, 4);
    let n = topo.world_size();
    let bufs: Vec<Vec<f32>> = (0..n)
        .map(|r| (0..n * 128).map(|i| (r * 1000 + i) as f32).collect())
        .collect();
    let bufs_ref = &bufs;
    group.bench_with_input(BenchmarkId::new("a2a_untraced", n), &n, |b, _| {
        b.iter(|| {
            run_threaded(topo, |mut comm| {
                comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
            })
        })
    });
    group.bench_with_input(BenchmarkId::new("a2a_traced", n), &n, |b, _| {
        b.iter(|| {
            let hub = TraceHub::new(n);
            run_threaded_traced(topo, &hub, |mut comm| {
                comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
            })
        })
    });

    // Call-site level: the pure price of one disabled trace call —
    // the branch the hot path pays when nobody is tracing.
    let disabled = Tracer::disabled();
    group.bench_function("disabled_span", |b| {
        b.iter(|| disabled.span(TRACK_COMM, "bench"))
    });
    group.bench_function("disabled_flow_send", |b| {
        b.iter(|| disabled.flow_send(0, 7, 0, FlowKind::Data, 512))
    });
    group.bench_function("disabled_instant", |b| {
        b.iter(|| disabled.instant(TRACK_COMM, "bench"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_overhead
}
criterion_main!(benches);
