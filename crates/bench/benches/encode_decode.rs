//! Criterion bench behind Figure 24: dense (Fairseq einsum) vs sparse
//! (Tutel fast) encode/decode on the functional CPU kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_gate::{route, RouteConfig};
use tutel_kernels::{fast_decode, fast_encode, DenseCombine};
use tutel_tensor::Rng;

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig24_encode_decode");
    for &tokens in &[128usize, 512] {
        let (experts, m) = (16usize, 64usize);
        let mut rng = Rng::seed(tokens as u64);
        let probs = rng
            .uniform_tensor(&[tokens, experts], 0.0, 1.0)
            .softmax_last();
        let routing = route(&probs, &RouteConfig::top2()).unwrap();
        let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
        let y = rng.normal_tensor(&[experts, routing.capacity, m], 0.0, 1.0);

        group.bench_with_input(BenchmarkId::new("dense", tokens), &tokens, |b, _| {
            b.iter(|| {
                let combine = DenseCombine::new(&routing);
                let d = combine.encode(&x).unwrap();
                let o = combine.decode(&y).unwrap();
                (d, o)
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse", tokens), &tokens, |b, _| {
            b.iter(|| {
                let d = fast_encode(&x, &routing).unwrap();
                let o = fast_decode(&y, &routing, tokens).unwrap();
                (d, o)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode_decode
}
criterion_main!(benches);
