//! Gating benches: routing cost scaling in tokens/experts/k, and BPR's
//! sorting overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tutel_gate::{route, RouteConfig};
use tutel_tensor::Rng;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for &tokens in &[256usize, 1024] {
        let experts = 32;
        let mut rng = Rng::seed(tokens as u64);
        let probs = rng
            .uniform_tensor(&[tokens, experts], 0.0, 1.0)
            .softmax_last();
        for k in [1usize, 2, 4] {
            let cfg = RouteConfig {
                k,
                ..RouteConfig::top1()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("top{k}"), tokens),
                &tokens,
                |b, _| b.iter(|| route(&probs, &cfg).unwrap()),
            );
        }
        let bpr = RouteConfig::top1().with_bpr(true);
        group.bench_with_input(BenchmarkId::new("top1_bpr", tokens), &tokens, |b, _| {
            b.iter(|| route(&probs, &bpr).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing
}
criterion_main!(benches);
