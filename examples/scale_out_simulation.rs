//! Scale-out study on the simulated cluster: sweep 16 → 4,096 GPUs and
//! watch (a) the linear All-to-All collapse that motivates 2DH and
//! (b) Tutel's feature ladder recover the lost throughput (Figure 23).
//!
//! Run with: `cargo run --release --example scale_out_simulation`

use tutel_suite::comm::{A2aImpl, CollectiveTiming, World};
use tutel_suite::simgpu::Protocol;
use tutel_suite::tutel::adaptive::{FeatureSet, MoeLayerSimulator};
use tutel_suite::tutel::pipeline::LayerDims;

fn main() {
    const MIB: f64 = 1024.0 * 1024.0;

    println!("== All-to-All at scale: linear vs 2DH (1 MiB per GPU) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "GPUs", "linear", "2DH", "speedup"
    );
    for w in [64usize, 256, 1024, 2048, 4096] {
        let timing = CollectiveTiming::new(World::azure(w));
        let linear = timing.linear_time(MIB, Protocol::Simple);
        let two_dh = timing.two_dh_time_impl(MIB, Protocol::Simple, A2aImpl::NcclApi);
        println!(
            "{w:>6} {:>10.2}ms {:>10.2}ms {:>8.1}x",
            linear * 1e3,
            two_dh * 1e3,
            linear / two_dh
        );
    }

    println!("\n== Single MoE layer: the Tutel feature ladder (Figure 23 dims) ==");
    let dims = LayerDims::figure23();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "GPUs", "Fairseq", "+kernels", "+pipeline", "+flex A2A", "speedup"
    );
    for w in [16usize, 64, 256, 1024, 2048] {
        let sim = MoeLayerSimulator::azure(w);
        let base = sim.step_time(&dims, FeatureSet::fairseq_baseline());
        let k = sim.step_time(&dims, FeatureSet::kernels());
        let p = sim.step_time(&dims, FeatureSet::kernels_pipelining());
        let f = sim.step_time(&dims, FeatureSet::kernels_pipelining_flex());
        let full = sim.step_time(&dims, FeatureSet::full());
        println!(
            "{w:>6} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>8.2}x",
            base * 1e3,
            k * 1e3,
            p * 1e3,
            f * 1e3,
            base / full
        );
    }

    println!("\n== Where each gain comes from ==");
    println!("small scale : dense-einsum encode/decode dominates -> Tutel kernels win");
    println!("large scale : tiny per-peer messages kill linear All-to-All -> 2DH wins");
    println!("any scale   : rigid (W, dE, dC, M) layout starves the GEMM -> flexible layout wins");
}
