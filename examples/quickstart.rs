//! Quickstart: build a Tutel MoE layer, run a training step, and
//! compose a custom MoE layer from the public pieces — the Rust
//! equivalent of the paper's Figure 8 Python snippet.
//!
//! Run with: `cargo run --example quickstart`

use tutel_suite::comm::{flex::flex_all_to_all, AllToAllAlgo};
use tutel_suite::gate::{route, RouteConfig};
use tutel_suite::kernels::{fast_decode, fast_encode};
use tutel_suite::simgpu::Topology;
use tutel_suite::tensor::{Rng, Tensor, TensorError};
use tutel_suite::tutel::{MoeConfig, MoeLayer};

fn main() -> Result<(), TensorError> {
    // ------------------------------------------------------------------
    // 1. The batteries-included layer.
    // ------------------------------------------------------------------
    let mut rng = Rng::seed(42);
    let cfg = MoeConfig::new(32, 128, 8)
        .with_top_k(2)
        .with_capacity_factor(0.0) // auto-adapt: drop no token (Figure 16)
        .with_bpr(true);
    let mut layer = MoeLayer::new(&cfg, &mut rng)?;

    let tokens = 128;
    let x = rng.normal_tensor(&[tokens, 32], 0.0, 1.0);
    let out = layer.forward(&x)?;
    println!("MoE layer output shape : {}", out.output.shape());
    println!("auxiliary loss         : {:.4}", out.aux_loss);
    println!("capacity factor used   : {:.3}", out.capacity_factor);
    println!(
        "needed capacity factor : {:.3} (Figure 1 telemetry)",
        out.needed_factor
    );
    println!("token survival rate    : {:.1}%", out.survival_rate * 100.0);

    // One SGD step against a dummy regression target.
    let target = rng.normal_tensor(&[tokens, 32], 0.0, 1.0);
    let d_out = out.output.sub(&target)?;
    layer.backward(&d_out)?;
    layer.step(0.01);
    println!("took one training step (router + experts updated)\n");

    // ------------------------------------------------------------------
    // 2. A custom MoE layer from the pieces — Figure 8 of the paper:
    //
    //    scores = softmax(CustomGate(x))
    //    crit, l_aux = moe.top_k_routing(scores, top_k)
    //    y = moe.fast_encode(x, crit)
    //    y = net.flex_all2all(y, 1, 0)
    //    y = CustomExpert(y)
    //    y = net.flex_all2all(y, 0, 1)
    //    output = moe.fast_decode(y, crit)
    // ------------------------------------------------------------------
    let world = Topology::new(2, 2); // 2 nodes × 2 GPUs, simulated
    let w = world.world_size();
    let experts = 4; // ΔE = 1 per rank
    let per_rank_tokens = 32;

    // Per-rank inputs and a custom (here: random-projection) gate.
    let gate_w = rng.normal_tensor(&[16, experts], 0.0, 0.1);
    let mut dispatched = Vec::new();
    let mut routings = Vec::new();
    let mut inputs = Vec::new();
    for _ in 0..w {
        let xr = rng.normal_tensor(&[per_rank_tokens, 16], 0.0, 1.0);
        let scores = xr.matmul(&gate_w)?.softmax_last();
        let crit = route(&scores, &RouteConfig::top1())?;
        let enc = fast_encode(&xr, &crit)?; // (E, dC, M)
        dispatched.push(enc);
        routings.push(crit);
        inputs.push(xr);
    }

    // Dispatch: flexible All-to-All, concat dim 1, split dim 0 — the
    // output layout (ΔE, C, M) is world-size independent.
    let on_experts = flex_all_to_all(&dispatched, 1, 0, AllToAllAlgo::TwoDh, &world)?;
    println!("per-rank expert input layout: {}", on_experts[0].shape());

    // CustomExpert: each rank doubles its tokens (stands in for any FFN).
    let expert_out: Vec<Tensor> = on_experts.iter().map(|t| t.scale(2.0)).collect();

    // Combine: the inverse flexible All-to-All, then fast decode.
    let back = flex_all_to_all(&expert_out, 0, 1, AllToAllAlgo::TwoDh, &world)?;
    for (r, (buf, crit)) in back.iter().zip(&routings).enumerate() {
        let out = fast_decode(buf, crit, per_rank_tokens)?;
        // With a doubling "expert" and top-1 gates g, output = 2·g·x for
        // surviving tokens.
        let g0 = crit.gate_of[0][0];
        let expect = inputs[r].at(&[0, 0]) * 2.0 * g0;
        assert!((out.at(&[0, 0]) - expect).abs() < 1e-4);
        if r == 0 {
            println!("custom layer rank {r} output shape: {}", out.shape());
        }
    }
    println!("custom MoE layer (Figure 8 style) verified on {w} simulated ranks");
    Ok(())
}
