//! End-to-end SwinLite-MoE: sparse-vs-dense accuracy on the synthetic
//! clustered task, plus the Table 10 transfer experiment (freeze vs
//! tune the MoE layers on a distribution-shifted task).
//!
//! Run with: `cargo run --release --example swinlite_moe`
//! (≈2 minutes on one core; pass a smaller step count as the first
//! argument for a quicker look, e.g. `-- 200`.)

use tutel_suite::tensor::Rng;
use tutel_suite::tutel::data::SyntheticVision;
use tutel_suite::tutel::model::{cross_entropy, SwinLiteConfig, SwinLiteMoe};
use tutel_suite::tutel::trainer::{evaluate, few_shot_linear_eval, train, TrainConfig};
use tutel_suite::tutel::MoeConfig;

fn build(moe: bool, seed: u64) -> SwinLiteMoe {
    // The capacity-bound setup of DESIGN.md §7: narrow dense hidden
    // width (8), linear mixers, 16 latent clusters.
    let mut cfg = SwinLiteConfig::new(32, 32, 16);
    cfg.channels = 32;
    cfg.hidden = 8;
    cfg.blocks = 4;
    if moe {
        cfg = cfg.with_moe(MoeConfig::new(0, 0, 8).with_capacity_factor(0.0));
    }
    let mut rng = Rng::seed(seed);
    SwinLiteMoe::new(&cfg, &mut rng).expect("valid config")
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let dataset = SyntheticVision::new(32, 32, 16, 16, 2023);
    let tc = TrainConfig {
        steps,
        batch: 32,
        lr: 0.05,
        seed: 11,
        ..TrainConfig::default()
    };

    println!("pre-training dense and MoE models ({steps} steps each)...");
    let mut dense = build(false, 7);
    let dense_stats = train(&mut dense, &dataset, &tc);
    let mut moe = build(true, 7);
    let moe_stats = train(&mut moe, &dataset, &tc);

    println!("\n== Pre-training (ImageNet-22K analogue) ==");
    println!(
        "dense : {} params, final loss {:.3}, acc {:.1}%, 5-shot {:.1}%",
        dense.num_params(),
        dense_stats.final_loss,
        evaluate(&dense, &dataset, 8, 99) * 100.0,
        few_shot_linear_eval(&dense, &dataset, 5, 100) * 100.0,
    );
    println!(
        "MoE   : {} params ({} active), final loss {:.3}, acc {:.1}%, 5-shot {:.1}%",
        moe.num_params(),
        moe.active_params(),
        moe_stats.final_loss,
        evaluate(&moe, &dataset, 8, 99) * 100.0,
        few_shot_linear_eval(&moe, &dataset, 5, 100) * 100.0,
    );

    // Transfer to a distribution-shifted task (the COCO analogue) with
    // scarce data: tune vs freeze the MoE layers (Table 10).
    println!("\n== Transfer fine-tuning on a shifted task, scarce data ==");
    let shifted = dataset.shifted(555);
    let ft_steps = (steps / 2).clamp(100, 400);
    for freeze in [false, true] {
        let mut model = build(true, 7);
        train(&mut model, &dataset, &tc);
        model.set_moe_frozen(freeze);
        let mut pool_rng = Rng::seed(42);
        let pool: Vec<_> = (0..8).map(|_| shifted.batch(16, &mut pool_rng)).collect();
        for i in 0..ft_steps {
            let (x, y) = &pool[i % pool.len()];
            let (logits, _, _) = model.forward(x, 16).expect("forward");
            let (_, dl) = cross_entropy(&logits, y);
            model.backward(&dl).expect("backward");
            model.step(0.03);
        }
        println!(
            "MoE layers {}: transfer acc {:.1}%",
            if freeze { "FIXED " } else { "tuned " },
            evaluate(&model, &shifted, 8, 7) * 100.0
        );
    }
    println!("\n(The paper's Table 10 finding is that fixing MoE layers");
    println!(" during fine-tuning avoids overfitting; on this synthetic");
    println!(" substitute the freeze benefit does not fully reproduce —");
    println!(" see EXPERIMENTS.md for the analysis.)");
}
