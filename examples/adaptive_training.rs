//! Adaptive mechanisms in action during a (simulated) training run:
//!
//! * the per-iteration capacity factor wanders (Figure 1),
//! * Algorithm 2 searches (All-to-All algorithm × pipelining degree)
//!   online and converges to the per-bucket optimum,
//! * the inline parallelism router flips between P1 and P2 as the
//!   workload changes.
//!
//! Run with: `cargo run --release --example adaptive_training`
//!
//! Pass `--telemetry out.jsonl` to record the whole run — per-step
//! expert load, dropped tokens, stage durations, and every adaptive
//! decision's candidates and winner — as one JSON object per line.

use tutel_suite::comm::{CollectiveTiming, World};
use tutel_suite::experts::{InlineParallelismRouter, MoeDims};
use tutel_suite::obs::{StepRecord, Telemetry};
use tutel_suite::tensor::Rng;
use tutel_suite::tutel::data::SyntheticVision;
use tutel_suite::tutel::model::{cross_entropy, SwinLiteConfig, SwinLiteMoe};
use tutel_suite::tutel::pipeline::{LayerDims, OnlineStrategySearch, PipelineTimeModel};
use tutel_suite::tutel::MoeConfig;

/// Parses `--telemetry <path>` from the command line.
fn telemetry_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--telemetry" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--telemetry requires a file path");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn main() {
    let out_path = telemetry_path();
    let tel = if out_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    // A small MoE model training on the synthetic clustered task, with
    // auto-adapting capacity (capacity_factor = 0).
    let mut cfg = SwinLiteConfig::new(16, 16, 8);
    cfg.blocks = 4;
    cfg = cfg.with_moe(MoeConfig::new(0, 0, 8).with_capacity_factor(0.0));
    let mut rng = Rng::seed(1);
    let mut model = SwinLiteMoe::new(&cfg, &mut rng).expect("valid config");
    model.set_telemetry(tel.clone());
    let dataset = SyntheticVision::new(16, 16, 8, 16, 2);

    // The simulated execution environment: 64 GPUs, Figure 22-ish dims.
    let timing = CollectiveTiming::new(World::azure(64));
    let time_model = PipelineTimeModel::new(timing);
    let mut search = OnlineStrategySearch::new(0.5);
    let par_router = InlineParallelismRouter::new(timing);

    let mut data_rng = Rng::seed(3);
    println!("step  loss    f_needed  pipeline-strategy   parallelism  sim-time");
    for step in 0..120 {
        tel.begin_step(step);
        let (x, y) = dataset.batch(16, &mut data_rng);
        let (logits, aux, layer_tel) = model.forward(&x, 16).expect("forward");
        let (loss, dl) = cross_entropy(&logits, &y);
        model.backward(&dl).expect("backward");
        model.step(0.05);

        // Telemetry from the first MoE layer drives the adaptive layer.
        let f = layer_tel
            .first()
            .map(|t| t.needed_factor)
            .unwrap_or(1.0)
            .max(0.05);
        let dims = LayerDims {
            tokens: 4096,
            model_dim: 4096,
            hidden_dim: 4096,
            local_experts: 2,
            k: 1,
            capacity_factor: f,
        };
        // Algorithm 2: pick a strategy, "measure" it on the simulator,
        // feed the measurement back.
        let strategy = search.next_strategy_observed(f, &tel);
        let t = time_model.step_time(&dims, strategy);
        search.record(f, strategy, t);
        // The functional layer never moves real bytes, so the two
        // All-to-All legs enter the step's stage breakdown from the
        // time model rather than from wall-clock spans.
        if tel.is_enabled() {
            let breakdown = time_model.stage_breakdown(&dims, strategy);
            tel.add_stage("a2a_dispatch", breakdown.a2a_dispatch);
            tel.add_stage("a2a_combine", breakdown.a2a_combine);
        }

        // Inline parallelism router decision for a replicated-expert
        // setting (E = 8 experts on 64 GPUs → 8-way groups).
        let pdims = MoeDims {
            world: 64,
            global_experts: 8,
            tokens: 4096,
            k: 1,
            capacity_factor: f,
            model_dim: 4096,
            hidden_dim: 4096,
            weight_precision: tutel_suite::tensor::Precision::F32,
        };
        let choice = par_router.choose_observed(&pdims, &tel);

        if tel.is_enabled() {
            let mut expert_load: Vec<u64> = Vec::new();
            let mut dropped = 0u64;
            for lt in &layer_tel {
                if expert_load.len() < lt.expert_load.len() {
                    expert_load.resize(lt.expert_load.len(), 0);
                }
                for (sum, &n) in expert_load.iter_mut().zip(&lt.expert_load) {
                    *sum += n as u64;
                }
                dropped += lt.dropped as u64;
            }
            tel.record_step(StepRecord {
                step,
                loss: loss as f64,
                lr: 0.05,
                aux_loss: aux as f64,
                capacity_factor: layer_tel.first().map_or(0.0, |lt| lt.capacity_factor),
                needed_factors: layer_tel.iter().map(|lt| lt.needed_factor).collect(),
                expert_load,
                dropped,
                stages: Vec::new(),
            });
        }

        if step % 10 == 0 {
            println!(
                "{step:>4}  {loss:.3}   {f:>7.2}   {:<17} {choice}      {:.2}ms",
                strategy.to_string(),
                t * 1e3,
            );
        }
    }
    println!(
        "\nAlgorithm 2 state: {} known capacity factors in {} buckets",
        search.known_factors(),
        search.num_buckets()
    );
    let final_strategy = search.next_strategy(1.0);
    println!("converged strategy for f=1.0: {final_strategy}");

    // Final compute-runtime counters (pool utilization, steal counts,
    // arena hit rate) as rt.* gauges.
    tutel_suite::obs::record_runtime(&tel, &tutel_suite::tutel::trainer::runtime_snapshot());

    if let Some(path) = out_path {
        if let Err(e) = tel.export_jsonl_to(&path) {
            eprintln!("error: cannot write telemetry to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "telemetry: {} events ({} steps, {} decisions) → {path}",
            tel.events().len(),
            tel.steps().len(),
            tel.decisions().len(),
        );
    }
}
