//! No-op derive macros for the offline `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits carry blanket impls, so
//! these derives only need to exist for `#[derive(Serialize)]` to
//! parse; they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
