//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use, on top of the local `rand` shim:
//!
//! * [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`]
//! * range strategies (`1usize..40`, `0.5f64..2.0`, `1..=n`, …),
//!   tuples of strategies up to arity 6, [`Just`], and
//!   [`collection::vec`]
//! * [`any`] for types implementing [`Arbitrary`]
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`)
//!   plus [`prop_assert!`] / [`prop_assert_eq!`]
//!
//! Unlike real proptest there is no shrinking and no failure
//! persistence: each test runs `cases` deterministic pseudo-random
//! cases (seeded per test from a fixed constant), and the first
//! failing case panics with its case index so it can be replayed by
//! re-running the test.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub use rand::{Rng as __Rng, RngCore};

/// RNG handed to strategies; deterministic per (test, case index).
pub type TestRng = SmallRng;

/// Runner configuration; only `cases` is consumed.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a case body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// A generator of values; the shim generates without shrinking.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Output of [`Strategy::prop_filter`]; retries until the predicate
/// passes (panics after 1000 rejections like real proptest gives up).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Strategy producing one fixed (cloneable) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                if hi < <$t>::MAX {
                    rand::Rng::gen_range(rng, lo..hi + 1)
                } else {
                    rand::Rng::gen::<u64>(rng) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical "anything" strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<T>()` for primitive `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
arbitrary_prim! {
    bool => |rng| rand::Rng::gen::<bool>(rng),
    u32 => |rng| rand::Rng::gen::<u32>(rng),
    u64 => |rng| rand::Rng::gen::<u64>(rng),
    usize => |rng| rand::Rng::gen::<u64>(rng) as usize,
    f32 => |rng| rand::Rng::gen::<f32>(rng),
    f64 => |rng| rand::Rng::gen::<f64>(rng),
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo == 1 {
                self.size.lo
            } else {
                rand::Rng::gen_range(rng, self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything the `use proptest::prelude::*;` sites need in scope.
pub mod prelude {
    /// Re-export so `prop::collection::vec(..)` also resolves.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub fn __seed_for_case(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index, so every
    // test walks a distinct but reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[doc(hidden)]
pub fn __run_case(
    test_name: &str,
    case: u32,
    body: impl FnOnce(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::seed_from_u64(__seed_for_case(test_name, case));
    if let Err(e) = body(&mut rng) {
        panic!(
            "proptest case {case} of `{test_name}` failed: {}",
            e.message
        );
    }
}

/// Asserts inside a proptest body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The proptest entry macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    $crate::__run_case(stringify!($name), case, |__rng| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), __rng);)*
                        $body
                        Ok(())
                    });
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.5f64..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in (1usize..=4).prop_flat_map(|n| prop::collection::vec(0i64..10, n * 2))
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 8);
            prop_assert!(v.len() % 2 == 0);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn map_applies(d in (0usize..5).prop_map(|n| n * 3)) {
            prop_assert_eq!(d % 3, 0);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(
            crate::__seed_for_case("t", 3),
            crate::__seed_for_case("t", 3)
        );
        assert_ne!(
            crate::__seed_for_case("t", 3),
            crate::__seed_for_case("t", 4)
        );
        assert_ne!(
            crate::__seed_for_case("a", 0),
            crate::__seed_for_case("b", 0)
        );
    }
}
