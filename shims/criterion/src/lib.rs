//! Offline stand-in for `criterion`.
//!
//! A self-contained wall-clock micro-benchmark harness exposing the
//! subset of criterion's API the `tutel-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology: each benchmark first auto-calibrates an iteration
//! count targeting ~2 ms per sample, then records `sample_size`
//! samples and reports min/median/mean per-iteration times on stdout.
//! There is no statistical regression testing, plotting, or output
//! directory — numbers are for eyeballing and for the repo's own
//! telemetry-overhead comparisons.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle; carries the configured sample count.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder-style sample-size override (criterion's spelling).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Ungrouped single benchmark (criterion compatibility).
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&format!("{id}"), sample_size, &mut f);
        self
    }
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// A named collection of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; [`Bencher::iter`] times the body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the iteration count until one sample costs ~2 ms.
    let mut iters: u64 = 1;
    loop {
        let elapsed = time_once(iters, f);
        if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(iters, f).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "  {label}: min {} / median {} / mean {}  ({} iters x {} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        iters,
        sample_size
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group runner function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_self_test");
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
