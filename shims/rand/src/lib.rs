//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored crate
//! sources, so this workspace ships a minimal, deterministic
//! replacement covering exactly the surface `tutel-tensor` (and
//! friends) consume: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] for `f32`/`f64`/`u32`/`u64`/`bool`, and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! family the real `SmallRng` uses on 64-bit targets — so statistical
//! quality is comparable, though exact streams differ from upstream
//! `rand` (nothing in this repo depends on upstream bit-exact streams).

use std::ops::Range;

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans this workspace draws.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically sound; the same
    /// family upstream `rand` uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit over 1000 draws");
    }
}
