//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError}` — the only surface `tutel-comm`'s threaded
//! runtime uses — as an MPMC unbounded channel over
//! `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam where
//! this workspace relies on them: cloneable senders *and* receivers,
//! FIFO per queue, `recv` returning `Err(RecvError)` once the queue
//! is empty and every sender has dropped, and `recv_timeout`
//! distinguishing `Timeout` from `Disconnected`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// This shim keeps no receiver count, so sends never fail; the
    /// type exists so call sites can keep crossbeam's `Result` shape.
    pub struct SendError<T>(pub T);

    // Like crossbeam, Debug does not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] after disconnect.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`]: either the wait
    /// expired or the channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Blocks until an item arrives, every sender has dropped, or
        /// `timeout` elapses — matching crossbeam's `recv_timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::thread;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..1000 {
            sum += rx.recv().unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }
}
