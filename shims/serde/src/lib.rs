//! Offline stand-in for `serde`.
//!
//! The workspace only *decorates* config/topology structs with
//! `#[derive(Serialize, Deserialize)]` — nothing actually serializes
//! through serde (checkpointing uses a hand-rolled binary format, and
//! telemetry export in `tutel-obs` writes JSON by hand). This shim
//! therefore provides marker traits with blanket impls and re-exports
//! no-op derive macros, which is enough for every use site to compile
//! unchanged against the real crate's spelling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
///
/// The real trait has a `'de` lifetime parameter; no code in this
/// workspace writes a `Deserialize` bound, so the shim omits it.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
