//! Root façade for the tutel-rs workspace.
//!
//! Re-exports every member crate under one roof so that the repo-level
//! `tests/` and `examples/` directories can exercise the full stack.

pub use tutel;
pub use tutel_comm as comm;
pub use tutel_experts as experts;
pub use tutel_gate as gate;
pub use tutel_kernels as kernels;
pub use tutel_obs as obs;
pub use tutel_rt as rt;
pub use tutel_simgpu as simgpu;
pub use tutel_tensor as tensor;
