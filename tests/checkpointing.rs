//! Checkpoint round-trip integration: train → save → restore into a
//! fresh model → bit-identical behaviour.

use tutel_suite::tensor::Rng;
use tutel_suite::tutel::checkpoint::StateDict;
use tutel_suite::tutel::data::SyntheticVision;
use tutel_suite::tutel::model::{SwinLiteConfig, SwinLiteMoe};
use tutel_suite::tutel::trainer::{train, TrainConfig};
use tutel_suite::tutel::{MoeConfig, RouterKind};

fn cfg(router: RouterKind) -> SwinLiteConfig {
    let mut cfg = SwinLiteConfig::new(8, 4, 3);
    cfg.channels = 12;
    cfg.hidden = 16;
    cfg.blocks = 2;
    cfg.with_moe(MoeConfig::new(0, 0, 4).with_router(router))
}

#[test]
fn trained_model_roundtrips_through_bytes() {
    let ds = SyntheticVision::new(8, 4, 3, 4, 1);
    let mut rng = Rng::seed(2);
    let mut model = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut rng).unwrap();
    train(
        &mut model,
        &ds,
        &TrainConfig {
            steps: 25,
            batch: 8,
            lr: 0.05,
            seed: 3,
            ..TrainConfig::default()
        },
    );

    let bytes = model.state_dict().to_bytes();
    let restored_sd = StateDict::from_bytes(&bytes).unwrap();

    // Fresh model with *different* init must reproduce the trained
    // model exactly after restore.
    let mut other_rng = Rng::seed(999);
    let mut fresh = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut other_rng).unwrap();
    let (x, _) = ds.batch(6, &mut rng);
    assert_ne!(
        model.infer(&x, 6).unwrap().as_slice(),
        fresh.infer(&x, 6).unwrap().as_slice(),
        "fixture models must differ before restore"
    );
    fresh.load_state_dict(&restored_sd).unwrap();
    assert_eq!(model.infer(&x, 6).unwrap(), fresh.infer(&x, 6).unwrap());
}

#[test]
fn cosine_router_checkpoints_too() {
    let ds = SyntheticVision::new(8, 4, 3, 4, 1);
    let mut rng = Rng::seed(4);
    let mut model = SwinLiteMoe::new(&cfg(RouterKind::Cosine), &mut rng).unwrap();
    train(
        &mut model,
        &ds,
        &TrainConfig {
            steps: 10,
            batch: 8,
            lr: 0.02,
            seed: 5,
            ..TrainConfig::default()
        },
    );
    let sd = model.state_dict();
    let mut fresh = SwinLiteMoe::new(&cfg(RouterKind::Cosine), &mut Rng::seed(77)).unwrap();
    fresh.load_state_dict(&sd).unwrap();
    let (x, _) = ds.batch(4, &mut rng);
    assert_eq!(model.infer(&x, 4).unwrap(), fresh.infer(&x, 4).unwrap());
}

#[test]
fn resumed_training_step_is_bitwise_identical() {
    // Save → load → one more train step must produce a loss bitwise
    // identical to the uninterrupted run: checkpointing may not
    // perturb a single bit of parameter state, and the arena-backed
    // scratch reuse in the kernels may not leak state across models.
    let ds = SyntheticVision::new(8, 4, 3, 4, 1);
    let mut rng = Rng::seed(21);
    let mut model = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut rng).unwrap();
    let warmup = TrainConfig {
        steps: 12,
        batch: 8,
        lr: 0.05,
        seed: 31,
        ..TrainConfig::default()
    };
    train(&mut model, &ds, &warmup);
    let bytes = model.state_dict().to_bytes();

    // Uninterrupted: one more step with a fresh data seed.
    let resume_cfg = TrainConfig {
        steps: 1,
        batch: 8,
        lr: 0.05,
        seed: 32,
        ..TrainConfig::default()
    };
    let uninterrupted = train(&mut model, &ds, &resume_cfg);

    // Interrupted: restore the checkpoint into a differently-seeded
    // fresh model, then take the same step.
    let mut resumed = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut Rng::seed(909)).unwrap();
    resumed
        .load_state_dict(&StateDict::from_bytes(&bytes).unwrap())
        .unwrap();
    let restored = train(&mut resumed, &ds, &resume_cfg);

    assert_eq!(uninterrupted.loss_curve.len(), 1);
    assert_eq!(
        uninterrupted.loss_curve[0].to_bits(),
        restored.loss_curve[0].to_bits(),
        "resumed step loss diverged: {} vs {}",
        uninterrupted.loss_curve[0],
        restored.loss_curve[0]
    );
    // And the post-step parameters are identical too, so divergence
    // cannot hide beyond the first step.
    assert_eq!(
        model.state_dict().to_bytes(),
        resumed.state_dict().to_bytes(),
        "post-resume parameters diverged"
    );
}

#[test]
fn restore_into_wrong_architecture_fails_cleanly() {
    let mut rng = Rng::seed(6);
    let model = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut rng).unwrap();
    let sd = model.state_dict();
    // Different expert count → shape mismatch, not a panic.
    let mut bigger_cfg = SwinLiteConfig::new(8, 4, 3);
    bigger_cfg.channels = 12;
    bigger_cfg.hidden = 16;
    bigger_cfg.blocks = 2;
    let bigger_cfg = bigger_cfg.with_moe(MoeConfig::new(0, 0, 8));
    let mut other = SwinLiteMoe::new(&bigger_cfg, &mut rng).unwrap();
    assert!(other.load_state_dict(&sd).is_err());
    // Empty dict → missing tensors.
    let mut fresh = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut rng).unwrap();
    assert!(fresh.load_state_dict(&StateDict::new()).is_err());
}

#[test]
fn state_dict_parameter_count_matches_model() {
    let mut rng = Rng::seed(7);
    let model = SwinLiteMoe::new(&cfg(RouterKind::Linear), &mut rng).unwrap();
    let sd = model.state_dict();
    assert_eq!(sd.num_params(), model.num_params());
}
