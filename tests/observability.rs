//! End-to-end observability tests: the adaptive-decision audit log
//! must agree with the simulator's own cost model, training must leave
//! a complete per-step record, and the JSONL export must be
//! well-formed.

use tutel_suite::obs::{Event, Telemetry};
use tutel_suite::tensor::Rng;
use tutel_suite::tutel::adaptive::{FeatureSet, MoeLayerSimulator};
use tutel_suite::tutel::data::SyntheticVision;
use tutel_suite::tutel::model::{SwinLiteConfig, SwinLiteMoe};
use tutel_suite::tutel::pipeline::{LayerDims, PipelineStrategy};
use tutel_suite::tutel::trainer::{train_observed, TrainConfig};
use tutel_suite::tutel::MoeConfig;

/// The audit log's chosen strategy and predicted cost must match an
/// independent argmin over [`MoeLayerSimulator::step_time_with_strategy`]
/// for every capacity factor in a sweep.
#[test]
fn audit_log_matches_exhaustive_strategy_search() {
    let sim = MoeLayerSimulator::azure(64);
    let features = FeatureSet::kernels_pipelining();
    let tel = Telemetry::enabled();
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    for &f in &factors {
        let mut dims = LayerDims::figure23();
        dims.capacity_factor = f;
        sim.step_time_observed(&dims, features, &tel);
    }
    let decisions = tel.decisions();
    assert_eq!(
        decisions.len(),
        factors.len(),
        "one decision per simulated step"
    );
    for (d, &f) in decisions.iter().zip(&factors) {
        assert_eq!(d.kind, "pipeline");
        assert_eq!(d.capacity_factor, f);
        assert_eq!(d.candidates.len(), 8, "all eight strategies priced");
        // Recompute the winner independently of the audit path.
        let mut dims = LayerDims::figure23();
        dims.capacity_factor = f;
        let (expect_s, expect_t) = PipelineStrategy::all()
            .into_iter()
            .map(|s| (s, sim.step_time_with_strategy(&dims, features, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(d.chosen, expect_s.to_string(), "winner mismatch at f={f}");
        let predicted = d.predicted_s.expect("exhaustive search always predicts");
        assert!(
            (predicted - expect_t).abs() <= expect_t * 1e-12,
            "predicted {predicted} vs recomputed {expect_t} at f={f}"
        );
        // And the recorded candidate costs agree with the model too.
        for (name, cost) in &d.candidates {
            let s = PipelineStrategy::all()
                .into_iter()
                .find(|s| &s.to_string() == name)
                .expect("candidate names strategies");
            let t = sim.step_time_with_strategy(&dims, features, s);
            assert!(
                (cost - t).abs() <= t * 1e-12,
                "candidate {name} cost drifted"
            );
        }
    }
}

fn tiny_moe_setup() -> (SwinLiteMoe, SyntheticVision) {
    let mut cfg = SwinLiteConfig::new(8, 4, 3);
    cfg.channels = 12;
    cfg.hidden = 16;
    cfg.blocks = 2;
    cfg = cfg.with_moe(MoeConfig::new(0, 0, 4).with_capacity_factor(0.0));
    let mut rng = Rng::seed(40);
    let model = SwinLiteMoe::new(&cfg, &mut rng).unwrap();
    let ds = SyntheticVision::new(8, 4, 3, 4, 41);
    (model, ds)
}

/// `train_observed` must leave one complete step record per step:
/// loss, expert load, drop counts, and wall-clock stage durations from
/// the layer spans.
#[test]
fn training_emits_complete_step_records() {
    let (mut model, ds) = tiny_moe_setup();
    let tel = Telemetry::enabled();
    let cfg = TrainConfig {
        steps: 12,
        batch: 8,
        ..TrainConfig::default()
    };
    let stats = train_observed(&mut model, &ds, &cfg, &tel);
    let steps = tel.steps();
    assert_eq!(steps.len(), 12);
    for (i, s) in steps.iter().enumerate() {
        assert_eq!(s.step, i as u64);
        assert!((s.loss - stats.loss_curve[i] as f64).abs() < 1e-6);
        assert_eq!(s.expert_load.len(), 4, "4 experts");
        assert_eq!(
            s.expert_load.iter().sum::<u64>(),
            8 * 4,
            "every token routed (k=1)"
        );
        assert_eq!(s.dropped, 0, "capacity_factor=0 auto-sizes, drops nothing");
        assert_eq!(s.needed_factors.len(), 1, "one MoE layer");
        for stage in ["gate", "encode", "ffn", "decode"] {
            let (_, secs) = s
                .stages
                .iter()
                .find(|(k, _)| k == stage)
                .unwrap_or_else(|| panic!("step {i} missing stage {stage}: {:?}", s.stages));
            assert!(*secs > 0.0, "stage {stage} has zero duration");
        }
    }
    // The layer-level metrics accumulated too.
    assert!(tel.counter_value("gate.routed_tokens").unwrap() > 0);
    assert!(tel.counter_value("kernels.encode.elements").unwrap() > 0);
    assert!(tel.counter_value("experts.flops").unwrap() > 0);
    assert!(tel.histogram("gate.expert_load").is_some());
}

/// `train` (no telemetry) and `train_observed` must produce identical
/// training trajectories — instrumentation must not perturb the math.
#[test]
fn observation_does_not_change_training() {
    let (mut m1, ds) = tiny_moe_setup();
    let (mut m2, _) = tiny_moe_setup();
    let cfg = TrainConfig {
        steps: 8,
        batch: 8,
        ..TrainConfig::default()
    };
    let plain = tutel_suite::tutel::trainer::train(&mut m1, &ds, &cfg);
    let observed = train_observed(&mut m2, &ds, &cfg, &Telemetry::enabled());
    assert_eq!(plain.loss_curve, observed.loss_curve);
    assert_eq!(plain.needed_factor_trace, observed.needed_factor_trace);
}

/// The JSONL export of a real training run is one well-formed,
/// type-tagged JSON object per line, and contains the step and span
/// events the run generated.
#[test]
fn jsonl_export_is_line_delimited_and_typed() {
    let (mut model, ds) = tiny_moe_setup();
    let tel = Telemetry::enabled();
    let cfg = TrainConfig {
        steps: 5,
        batch: 8,
        ..TrainConfig::default()
    };
    train_observed(&mut model, &ds, &cfg, &tel);
    let mut out = Vec::new();
    tel.export_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 5 + 1, "meta + events + metrics");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an object: {line}"
        );
        assert!(line.contains("\"type\":\""), "untyped: {line}");
    }
    assert!(lines[0].contains("\"type\":\"meta\""));
    assert_eq!(text.matches("\"type\":\"step\"").count(), 5);
    assert!(text.contains("\"type\":\"span\""));
    assert!(text.contains("\"type\":\"counter\""));
    // Step lines carry the full payload the acceptance criteria name.
    let step_line = lines
        .iter()
        .find(|l| l.contains("\"type\":\"step\""))
        .unwrap();
    for key in ["expert_load", "dropped", "stages", "loss", "needed_factors"] {
        assert!(
            step_line.contains(&format!("\"{key}\"")),
            "step line missing {key}"
        );
    }
}

/// Spans recorded by the layer carry the active step stamp, so traces
/// can be grouped per iteration.
#[test]
fn spans_are_stamped_with_their_step() {
    let (mut model, ds) = tiny_moe_setup();
    let tel = Telemetry::enabled();
    let cfg = TrainConfig {
        steps: 3,
        batch: 8,
        ..TrainConfig::default()
    };
    train_observed(&mut model, &ds, &cfg, &tel);
    let spans: Vec<_> = tel
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::Span(s) => Some(s),
            _ => None,
        })
        .collect();
    assert!(!spans.is_empty());
    assert!(
        spans.iter().all(|s| s.step.is_some()),
        "all spans inside steps"
    );
    assert!(spans.iter().any(|s| s.name == "moe.forward"));
    assert!(spans.iter().any(|s| s.name == "moe.backward"));
}
