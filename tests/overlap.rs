//! The executed-overlap determinism contract, pinned at the repo
//! level: splitting the capacity dimension into `d` chunks and running
//! them through the two-stream overlapped schedule
//! (`tutel::overlap::run_overlapped`) changes *when* work happens,
//! never *what* is computed. Under P1 the full distributed MoE step at
//! every degree must therefore be **bitwise identical** to the serial
//! degree-1 schedule at the same compute-parallelism limit — for both
//! All-to-All algorithms, both world sizes, and every thread count.
//! `ci.sh` additionally repeats this binary under `TUTEL_THREADS=1`
//! and `TUTEL_THREADS=4` to cover the env-var path.

use tutel_harness::dist::run_distributed;
use tutel_harness::reference::Problem;
use tutel_harness::{A2aAlgo, Config, Strategy};

const DEGREES: [usize; 3] = [2, 4, 8];

fn assert_ranks_bitwise(
    base: &[tutel_harness::reference::RankResult],
    got: &[tutel_harness::reference::RankResult],
    label: &str,
) {
    assert_eq!(base.len(), got.len(), "{label}: rank count");
    for (rank, (b, g)) in base.iter().zip(got).enumerate() {
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&b.output),
            bits(&g.output),
            "{label}: output differs on rank {rank}"
        );
        assert_eq!(
            bits(&b.d_x),
            bits(&g.d_x),
            "{label}: d_x differs on rank {rank}"
        );
        assert_eq!(
            b.aux.to_bits(),
            g.aux.to_bits(),
            "{label}: aux differs on rank {rank}"
        );
    }
}

#[test]
fn overlapped_degrees_are_bitwise_identical_to_serial_under_p1() {
    for world in [2usize, 4] {
        let problem = Problem {
            world,
            seed: 0xD1CE,
        };
        let fixture = problem.materialize();
        for algo in [A2aAlgo::Linear, A2aAlgo::TwoDh] {
            for threads in [1usize, 4] {
                let serial = run_distributed(
                    &problem,
                    &fixture,
                    &Config {
                        strategy: Strategy::P1,
                        algo,
                        degree: 1,
                        world,
                        threads,
                    },
                );
                for degree in DEGREES {
                    let cfg = Config {
                        strategy: Strategy::P1,
                        algo,
                        degree,
                        world,
                        threads,
                    };
                    let got = run_distributed(&problem, &fixture, &cfg);
                    assert_ranks_bitwise(&serial, &got, &cfg.label());
                }
            }
        }
    }
}

#[test]
fn overlap_is_seed_independent_of_degree_ordering() {
    // A second seed, degrees visited in reverse: the contract holds
    // for any problem instance, not one lucky fixture.
    let problem = Problem {
        world: 2,
        seed: 0xBEEF,
    };
    let fixture = problem.materialize();
    let serial = run_distributed(
        &problem,
        &fixture,
        &Config {
            strategy: Strategy::P1,
            algo: A2aAlgo::Linear,
            degree: 1,
            world: 2,
            threads: 1,
        },
    );
    for degree in DEGREES.iter().rev() {
        let cfg = Config {
            strategy: Strategy::P1,
            algo: A2aAlgo::Linear,
            degree: *degree,
            world: 2,
            threads: 1,
        };
        let got = run_distributed(&problem, &fixture, &cfg);
        assert_ranks_bitwise(&serial, &got, &cfg.label());
    }
}
