//! The capstone integration test: a complete distributed MoE forward
//! step executed by real threads over the message-passing runtime —
//! per-rank gating, fast encode, Flexible-All-to-All-equivalent
//! exchange (via the threaded 2DH collective), rank-local expert
//! compute, combine exchange, fast decode — compared against the
//! single-process reference layer.

use tutel_suite::comm::runtime::run_threaded;
use tutel_suite::experts::ExpertsBlock;
use tutel_suite::gate::{route, LinearRouter, RouteConfig, Router};
use tutel_suite::kernels::{fast_decode, fast_encode};
use tutel_suite::simgpu::Topology;
use tutel_suite::tensor::{Rng, Tensor};

/// Flex-dispatch wire format: flatten the (E, dC, M) buffer so that the
/// per-destination-rank chunk is contiguous (experts are rank-major),
/// which is exactly what the All-to-All expects.
fn run_distributed_step(topology: Topology, k: usize, seed: u64) {
    let w = topology.world_size();
    let local_experts = 2usize;
    let experts = w * local_experts;
    let (tokens, m, v) = (18usize, 6usize, 10usize);

    // Shared (replicated) parameters, built once.
    let mut rng = Rng::seed(seed);
    let router = LinearRouter::new(m, experts, &mut rng);
    let global_experts = ExpertsBlock::new(experts, m, v, &mut rng);
    let inputs: Vec<Tensor> = (0..w)
        .map(|_| rng.normal_tensor(&[tokens, m], 0.0, 1.0))
        .collect();

    // Reference: rank-local routing + global expert application.
    let reference: Vec<Tensor> = inputs
        .iter()
        .map(|x| {
            let probs = router.logits(x).unwrap().softmax_last();
            let cfg = RouteConfig {
                k,
                ..RouteConfig::top1()
            };
            let routing = route(&probs, &cfg).unwrap();
            let enc = fast_encode(x, &routing).unwrap();
            let out = global_experts.infer(&enc).unwrap();
            fast_decode(&out, &routing, tokens).unwrap()
        })
        .collect();

    // Distributed: every rank is a thread running the real program.
    let router_ref = &router;
    let experts_ref = &global_experts;
    let inputs_ref = &inputs;
    let results = run_threaded(topology, move |mut comm| {
        let rank = comm.rank();
        let x = &inputs_ref[rank];
        // Gate + route + encode, all rank-local.
        let probs = router_ref.logits(x).unwrap().softmax_last();
        let cfg = RouteConfig {
            k,
            ..RouteConfig::top1()
        };
        let routing = route(&probs, &cfg).unwrap();
        let enc = fast_encode(x, &routing).unwrap(); // (E, dC, M)
        let cap = routing.capacity;

        // Dispatch: the (E, dC, M) buffer is already rank-major along
        // E, so a plain All-to-All ships each destination rank its
        // experts' slabs; the receiving side holds (W, dE, dC, M).
        let received = comm.all_to_all_2dh(enc.as_slice()).unwrap();

        // Rearrange to the flexible (dE, C = W·dC, M) layout locally
        // and run this rank's experts.
        let recv_t = Tensor::from_vec(received, &[w, local_experts, cap, m]).unwrap();
        let flex = recv_t.permute(&[1, 0, 2, 3]).unwrap();
        let flex = flex.reshape(&[local_experts, w * cap, m]).unwrap();
        let (w1, b1, w2, b2) = experts_ref.weights();
        let slice = |t: &Tensor| t.split_axis(0, w).unwrap()[rank].clone();
        let local = ExpertsBlock::from_weights(slice(w1), slice(b1), slice(w2), slice(b2)).unwrap();
        let expert_out = local.infer(&flex).unwrap();

        // Combine: invert the layout and ship each source its tokens.
        let back = expert_out
            .reshape(&[local_experts, w, cap, m])
            .unwrap()
            .permute(&[1, 0, 2, 3])
            .unwrap();
        let combined = comm.all_to_all_2dh(back.as_slice()).unwrap();
        let combined = Tensor::from_vec(combined, &[experts, cap, m]).unwrap();
        fast_decode(&combined, &routing, tokens).unwrap()
    });

    for (rank, (got, expect)) in results.iter().zip(&reference).enumerate() {
        let diff = got.sub(expect).unwrap().max_abs();
        assert!(diff < 1e-4, "rank {rank} diverged by {diff}");
    }
}

#[test]
fn threaded_moe_step_four_ranks_top1() {
    run_distributed_step(Topology::single_node(4), 1, 11);
}

#[test]
fn threaded_moe_step_multi_node_top2() {
    run_distributed_step(Topology::new(2, 2), 2, 12);
}

#[test]
fn threaded_moe_step_eight_ranks() {
    run_distributed_step(Topology::new(2, 4), 2, 13);
}
