//! Differential conformance: the smoke matrix and the fault-injection
//! suite must pass under `cargo test`, independent of the `harness`
//! CLI. The full 96-point matrix runs in CI behind `HARNESS_FULL=1`
//! (see ci.sh) and locally via `cargo run -p tutel-harness -- --full`.

use tutel_harness::faults::{run_fault_scenarios, Collective};
use tutel_harness::matrix::{configs, run_matrix, Mode};

#[test]
fn smoke_matrix_passes() {
    let verdicts = run_matrix(Mode::Smoke, 42);
    assert_eq!(verdicts.len(), configs(Mode::Smoke).len());
    let failures: Vec<String> = verdicts
        .iter()
        .filter(|v| !v.pass)
        .map(|v| {
            format!(
                "{}: out {:.2} ULP, d_x {:.2} ULP, aux {}",
                v.config.label(),
                v.output_ulp,
                v.d_x_ulp,
                if v.aux_bitwise { "bitwise" } else { "DIFFERS" }
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "matrix failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn bitwise_eligible_points_are_actually_bitwise() {
    let verdicts = run_matrix(Mode::Smoke, 7);
    let mut bitwise_points = 0;
    for v in &verdicts {
        if v.config.ulp_budget() == 0 {
            assert!(v.bitwise, "{} must be bitwise", v.config.label());
            bitwise_points += 1;
        }
    }
    assert!(
        bitwise_points > 0,
        "smoke must include bitwise-eligible points"
    );
}

#[test]
fn fault_scenarios_pass_for_a2a_and_2dh() {
    for collective in [Collective::AllToAll, Collective::AllToAll2dh] {
        let report = run_fault_scenarios(collective, 0xFA17);
        assert!(
            report.pass,
            "{} fault scenarios failed: {report:?}",
            report.collective.label()
        );
        assert!(report.injected > 0, "scenario must actually inject faults");
    }
}
