//! Integration of the adaptive mechanisms against the timing simulator:
//! Algorithm 2's online search must converge to the simulator's oracle,
//! the parallelism router must track the simulated crossover, and the
//! feature ladder must hold end-to-end.

use tutel_suite::comm::{CollectiveTiming, World};
use tutel_suite::experts::{InlineParallelismRouter, MoeDims};
use tutel_suite::tutel::adaptive::{FeatureSet, MoeLayerSimulator};
use tutel_suite::tutel::pipeline::{
    LayerDims, OnlineStrategySearch, PipelineStrategy, PipelineTimeModel,
};

fn dims_with_f(f: f64) -> LayerDims {
    LayerDims {
        tokens: 4096,
        model_dim: 4096,
        hidden_dim: 4096,
        local_experts: 2,
        k: 2,
        capacity_factor: f,
    }
}

#[test]
fn online_search_converges_to_simulator_oracle() {
    // Drive Algorithm 2 with a wandering capacity factor; after the
    // exploration phase it must select the oracle strategy (the
    // simulator's argmin) for the factors it has seen.
    let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(128)));
    let mut search = OnlineStrategySearch::new(0.5);
    // A periodic f schedule visiting two regimes.
    let schedule: Vec<f64> = (0..80)
        .map(|i| if i % 2 == 0 { 1.0 } else { 4.0 })
        .collect();
    for &f in &schedule {
        let s = search.next_strategy(f);
        let t = model.step_time(&dims_with_f(f), s);
        search.record(f, s, t);
    }
    for f in [1.0, 4.0] {
        let chosen = search.next_strategy(f);
        let (oracle, oracle_t) = model.best_strategy(&dims_with_f(f));
        let chosen_t = model.step_time(&dims_with_f(f), chosen);
        // The chosen strategy must be the oracle or within measurement
        // noise of it (our "measurements" are deterministic, so exact).
        assert!(
            chosen == oracle || chosen_t <= oracle_t * 1.0001,
            "f={f}: chose {chosen} ({chosen_t}) vs oracle {oracle} ({oracle_t})"
        );
    }
}

#[test]
fn online_search_explores_at_most_once_per_bucket() {
    let model = PipelineTimeModel::new(CollectiveTiming::new(World::azure(64)));
    let mut search = OnlineStrategySearch::new(1.0);
    let mut tried = std::collections::HashMap::<PipelineStrategy, usize>::new();
    // All these factors land in one bucket of length 1.
    for i in 0..24 {
        let f = 1.0 + (i % 4) as f64 * 0.2;
        let s = search.next_strategy(f);
        let best = model.best_strategy(&dims_with_f(f)).0;
        // Count explorations of non-optimal strategies.
        if s != best {
            *tried.entry(s).or_default() += 1;
        }
        search.record(f, s, model.step_time(&dims_with_f(f), s));
    }
    for (s, count) in tried {
        assert!(
            count <= 4,
            "strategy {s} explored {count} times (bucket sharing should bound repeats)"
        );
    }
}

#[test]
fn parallelism_router_crossover_is_consistent_with_costs() {
    let router = InlineParallelismRouter::new(CollectiveTiming::new(World::azure(8)));
    let dims = |f: f64| MoeDims {
        world: 8,
        global_experts: 2,
        tokens: 2048,
        k: 2,
        capacity_factor: f,
        model_dim: 2048,
        hidden_dim: 8192,
        weight_precision: tutel_suite::tensor::Precision::F32,
    };
    for f in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let d = dims(f);
        let chosen = router.choose(&d);
        let other = match chosen {
            tutel_suite::experts::Parallelism::P1 => tutel_suite::experts::Parallelism::P2,
            tutel_suite::experts::Parallelism::P2 => tutel_suite::experts::Parallelism::P1,
        };
        assert!(
            router.cost_of(chosen, &d) <= router.cost_of(other, &d) + 1e-15,
            "f={f}"
        );
    }
}

#[test]
fn feature_ladder_holds_across_the_sweep() {
    for w in [16usize, 256, 2048] {
        let sim = MoeLayerSimulator::azure(w);
        let dims = LayerDims::figure23();
        let ladder = FeatureSet::ladder();
        let mut last = f64::INFINITY;
        for (name, fs) in ladder {
            let t = sim.step_time(&dims, fs);
            assert!(t <= last * 1.0001, "{name} regressed at {w} GPUs");
            assert!(t > 0.0);
            last = t;
        }
        // Computation-only overhead must be a lower bound on curve 5.
        assert!(sim.computation_only_time(&dims) <= last);
    }
}

#[test]
fn final_speedups_are_in_the_papers_ballpark() {
    // Paper: 4.96× at 16 GPUs, 5.75× at 2,048 (full Tutel vs Fairseq).
    // Our calibrated simulator should land within ~2× of those.
    let dims = LayerDims::figure23();
    for (w, paper) in [(16usize, 4.96f64), (2048, 5.75)] {
        let sim = MoeLayerSimulator::azure(w);
        let ours = sim.step_time(&dims, FeatureSet::fairseq_baseline())
            / sim.step_time(&dims, FeatureSet::full());
        assert!(
            ours > paper / 2.5 && ours < paper * 2.5,
            "{w} GPUs: ours {ours:.2} vs paper {paper}"
        );
    }
}
