//! End-to-end gate for the happens-before race checker: the combined
//! overlap+pool+comm surface must sweep clean and structure-stable
//! across seeds, and every planted bug must be caught with a seed
//! that replays. (The full 128-seed sweep runs in CI via
//! `tutel-check --race`; this test keeps a smaller sweep in the
//! default suite.)

use tutel_check::race::{combined_run, combined_sweep, run_selftests, RaceConfig};

#[test]
fn combined_surface_sweeps_clean_across_seeds() {
    let cfg = RaceConfig::default();
    let sweep = combined_sweep(&cfg, 16);
    assert!(
        sweep.passed(),
        "combined surface produced findings: {:#?}",
        sweep.findings
    );
    assert!(
        sweep.structure_stable(),
        "structure diverged across seeds: {:?}",
        sweep.structures
    );
    assert!(
        sweep.distinct > 1,
        "16 seeds explored only one schedule — the perturbation driver is inert"
    );
}

#[test]
fn combined_run_replays_by_seed() {
    let cfg = RaceConfig::default();
    for seed in [0, 7, 13] {
        let a = combined_run(&cfg, seed);
        let b = combined_run(&cfg, seed);
        assert_eq!(a.signature, b.signature, "seed {seed} schedule diverged");
        assert_eq!(a.structure, b.structure, "seed {seed} structure diverged");
    }
}

#[test]
fn planted_bugs_are_caught_with_replayable_seeds() {
    let verdicts = run_selftests(8);
    assert_eq!(verdicts.len(), 3);
    for t in &verdicts {
        match &t.result {
            Ok(f) => assert!(
                !f.rule.is_empty() && !f.detail.is_empty(),
                "{}: empty finding",
                t.name
            ),
            Err(e) => panic!("planted bug {:?} escaped the checker: {e}", t.name),
        }
    }
}
