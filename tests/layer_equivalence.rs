//! Cross-crate numerical-equivalence tests: the Tutel layer, the
//! Fairseq dense baseline, and the sharded P1/P2 executions must all
//! agree — the computation logic is GShard's, regardless of which
//! optimization path executes it.

use tutel_suite::experts::{p1_forward, p2_forward, ExpertsBlock, ShardedExpertParams};
use tutel_suite::tensor::Rng;
use tutel_suite::tutel::{FairseqMoeLayer, MoeConfig, MoeLayer};

#[test]
fn tutel_equals_fairseq_over_many_seeds_and_configs() {
    for seed in 0..8u64 {
        for (k, f) in [(1usize, 1.0f64), (2, 1.0), (1, 0.5), (2, 2.0), (3, 0.0)] {
            let cfg = MoeConfig::new(10, 14, 4)
                .with_top_k(k)
                .with_capacity_factor(f);
            let baseline = FairseqMoeLayer::new_seeded(&cfg, seed).unwrap();
            let mut rng = Rng::seed(seed);
            let tutel = MoeLayer::new(&cfg, &mut rng).unwrap();
            let x = rng.normal_tensor(&[40, 10], 0.0, 1.0);
            let a = baseline.infer(&x).unwrap();
            let b = tutel.infer(&x).unwrap();
            let diff = a.output.sub(&b.output).unwrap().max_abs();
            assert!(diff < 1e-4, "seed {seed} k={k} f={f}: diff {diff}");
            assert!((a.aux_loss - b.aux_loss).abs() < 1e-4);
        }
    }
}

#[test]
fn p1_p2_and_unsharded_all_agree() {
    let mut rng = Rng::seed(77);
    let full = ExpertsBlock::new(2, 8, 12, &mut rng);
    let x = rng.normal_tensor(&[2, 6, 8], 0.0, 1.0);
    let reference = full.infer(&x).unwrap();
    for shards in [1usize, 2, 3, 4, 6] {
        let params = ShardedExpertParams::from_block(&full, shards).unwrap();
        let y1 = p1_forward(&params, &x).unwrap();
        let y2 = p2_forward(&params, &x).unwrap();
        assert!(
            reference.sub(&y1).unwrap().max_abs() < 1e-4,
            "P1 with {shards} shards diverged"
        );
        assert!(
            reference.sub(&y2).unwrap().max_abs() < 1e-4,
            "P2 with {shards} shards diverged"
        );
    }
}

#[test]
fn switching_parallelism_mid_run_changes_nothing() {
    // Alternate P1/P2 across "iterations" and verify outputs and the
    // parameter fingerprint never drift — the zero-cost switch.
    let mut rng = Rng::seed(78);
    let params = ShardedExpertParams::new(1, 6, 8, 4, &mut rng).unwrap();
    let x = rng.normal_tensor(&[1, 5, 6], 0.0, 1.0);
    let reference = p1_forward(&params, &x).unwrap();
    let fp = params.placement_fingerprint();
    for i in 0..6 {
        let y = if i % 2 == 0 {
            p2_forward(&params, &x).unwrap()
        } else {
            p1_forward(&params, &x).unwrap()
        };
        assert!(reference.sub(&y).unwrap().max_abs() < 1e-4, "iteration {i}");
        assert_eq!(
            params.placement_fingerprint(),
            fp,
            "parameters migrated at {i}"
        );
    }
}

#[test]
fn dynamic_knobs_do_not_corrupt_the_layer() {
    // Hammer one layer with per-iteration top-k and capacity changes
    // (top-ANY + dynamic capacity) interleaved with training steps; it
    // must stay finite and trainable.
    let cfg = MoeConfig::new(8, 12, 6).with_capacity_factor(0.0);
    let mut rng = Rng::seed(79);
    let mut layer = MoeLayer::new(&cfg, &mut rng).unwrap();
    let x = rng.normal_tensor(&[30, 8], 0.0, 1.0);
    for (i, k) in [1usize, 4, 2, 6, 1, 3].into_iter().enumerate() {
        layer.set_top_k(k).unwrap();
        layer.set_capacity_factor(if i % 2 == 0 { 0.0 } else { -1.5 });
        let out = layer.forward(&x).unwrap();
        assert!(out.output.max_abs().is_finite(), "k={k}");
        assert!(out.aux_loss.is_finite());
        let d = out.output.scale(0.1);
        layer.backward(&d).unwrap();
        layer.step(0.01);
    }
}
