//! Reduced-precision robustness: quantizing a trained model's weights
//! to BF16/F16 (via the state-dict round trip) must preserve routing
//! decisions and keep outputs close — the property that lets Tutel run
//! MoE layers in half precision (Section 4.1).

use tutel_suite::tensor::{quantize, Precision, Rng};
use tutel_suite::tutel::checkpoint::StateDict;
use tutel_suite::tutel::data::SyntheticVision;
use tutel_suite::tutel::model::{accuracy, SwinLiteConfig, SwinLiteMoe};
use tutel_suite::tutel::trainer::{evaluate, train, TrainConfig};
use tutel_suite::tutel::MoeConfig;

fn quantize_model(model: &SwinLiteMoe, fresh: &mut SwinLiteMoe, p: Precision) {
    let sd = model.state_dict();
    let mut q = StateDict::new();
    for (name, tensor) in sd.iter() {
        q.insert(name, quantize(tensor, p));
    }
    fresh.load_state_dict(&q).unwrap();
}

#[test]
fn bf16_weights_preserve_accuracy() {
    let ds = SyntheticVision::new(16, 8, 4, 8, 1);
    let mut cfg = SwinLiteConfig::new(16, 8, 4);
    cfg.channels = 16;
    cfg.hidden = 8;
    cfg.blocks = 4;
    let cfg = cfg.with_moe(MoeConfig::new(0, 0, 8).with_capacity_factor(0.0));
    let mut rng = Rng::seed(3);
    let mut model = SwinLiteMoe::new(&cfg, &mut rng).unwrap();
    train(
        &mut model,
        &ds,
        &TrainConfig {
            steps: 250,
            batch: 32,
            lr: 0.05,
            seed: 4,
            ..TrainConfig::default()
        },
    );
    let full = evaluate(&model, &ds, 6, 9);
    assert!(full > 0.5, "fixture must train above chance, got {full}");

    for (p, tolerance) in [(Precision::Bf16, 0.10), (Precision::F16, 0.05)] {
        let mut quantized = SwinLiteMoe::new(&cfg, &mut Rng::seed(999)).unwrap();
        quantize_model(&model, &mut quantized, p);
        let acc = evaluate(&quantized, &ds, 6, 9);
        assert!(
            acc >= full - tolerance,
            "{p:?}: accuracy collapsed {full} → {acc}"
        );
    }
}

#[test]
fn quantized_outputs_stay_close_per_token() {
    let ds = SyntheticVision::new(16, 8, 4, 8, 1);
    let mut cfg = SwinLiteConfig::new(16, 8, 4);
    cfg.channels = 16;
    cfg.hidden = 8;
    cfg.blocks = 2;
    let cfg = cfg.with_moe(MoeConfig::new(0, 0, 4));
    let mut rng = Rng::seed(5);
    let model = SwinLiteMoe::new(&cfg, &mut rng).unwrap();
    let mut bf16 = SwinLiteMoe::new(&cfg, &mut Rng::seed(6)).unwrap();
    quantize_model(&model, &mut bf16, Precision::Bf16);
    let (x, y) = ds.batch(16, &mut rng);
    let a = model.infer(&x, 16).unwrap();
    let b = bf16.infer(&x, 16).unwrap();
    // Logit-level closeness…
    let diff = a.sub(&b).unwrap().max_abs();
    assert!(diff < 0.15, "bf16 logit drift {diff}");
    // …and identical predictions on this batch.
    assert!((accuracy(&a, &y) - accuracy(&b, &y)).abs() < 1e-9);
}
