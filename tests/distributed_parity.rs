//! Full-stack distributed parity: running the MoE dispatch → expert →
//! combine pipeline across W simulated ranks through Flexible
//! All-to-All (with either exchange algorithm) must be numerically
//! identical to applying the global experts rank-locally.
//!
//! This is the integration guarantee behind Tutel's claim that all of
//! its optimizations are transparent to the model: distribution changes
//! time, never math.

use tutel_suite::comm::{flex::flex_all_to_all, AllToAllAlgo};
use tutel_suite::experts::ExpertsBlock;
use tutel_suite::gate::{route, RouteConfig, Routing};
use tutel_suite::kernels::{fast_decode, fast_encode};
use tutel_suite::simgpu::Topology;
use tutel_suite::tensor::{Rng, Tensor};

struct RankState {
    x: Tensor,
    routing: Routing,
}

/// Builds per-rank token batches and their local routing decisions
/// (GShard semantics: each rank routes its own tokens with its own
/// capacity slots).
fn make_ranks(
    world: usize,
    tokens: usize,
    experts: usize,
    m: usize,
    k: usize,
    seed: u64,
) -> Vec<RankState> {
    let mut rng = Rng::seed(seed);
    (0..world)
        .map(|_| {
            let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
            let probs = rng
                .uniform_tensor(&[tokens, experts], 0.0, 1.0)
                .softmax_last();
            let cfg = RouteConfig {
                k,
                ..RouteConfig::top1()
            };
            let routing = route(&probs, &cfg).unwrap();
            RankState { x, routing }
        })
        .collect()
}

fn max_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.sub(b).unwrap().max_abs()
}

fn run_parity(topology: Topology, local_experts: usize, k: usize, algo: AllToAllAlgo, seed: u64) {
    let w = topology.world_size();
    let experts = w * local_experts;
    let (tokens, m, v) = (24usize, 10usize, 14usize);
    let ranks = make_ranks(w, tokens, experts, m, k, seed);

    // One global expert block, shared by both execution paths.
    let mut rng = Rng::seed(seed ^ 0xABCD);
    let global_experts = ExpertsBlock::new(experts, m, v, &mut rng);

    // Reference path: every rank applies the global experts directly to
    // its locally encoded (E, dC, M) buffer.
    let reference: Vec<Tensor> = ranks
        .iter()
        .map(|r| {
            let enc = fast_encode(&r.x, &r.routing).unwrap();
            let out = global_experts.infer(&enc).unwrap();
            fast_decode(&out, &r.routing, tokens).unwrap()
        })
        .collect();

    // Distributed path: encode → Flexible All-to-All (dispatch) →
    // rank-local expert slice → Flexible All-to-All (combine) → decode.
    let encoded: Vec<Tensor> = ranks
        .iter()
        .map(|r| fast_encode(&r.x, &r.routing).unwrap())
        .collect();
    let dispatched = flex_all_to_all(&encoded, 1, 0, algo, &topology).unwrap();
    let (w1, b1, w2, b2) = global_experts.weights();
    let expert_outs: Vec<Tensor> = dispatched
        .iter()
        .enumerate()
        .map(|(rank, input)| {
            // Rank `rank` owns experts [rank·ΔE, (rank+1)·ΔE).
            let slice = |t: &Tensor| t.split_axis(0, w).unwrap()[rank].clone();
            let local =
                ExpertsBlock::from_weights(slice(w1), slice(b1), slice(w2), slice(b2)).unwrap();
            local.infer(input).unwrap()
        })
        .collect();
    let combined = flex_all_to_all(&expert_outs, 0, 1, algo, &topology).unwrap();
    let distributed: Vec<Tensor> = combined
        .iter()
        .zip(&ranks)
        .map(|(buf, r)| fast_decode(buf, &r.routing, tokens).unwrap())
        .collect();

    for (rank, (a, b)) in reference.iter().zip(&distributed).enumerate() {
        let diff = max_diff(a, b);
        assert!(
            diff < 1e-4,
            "rank {rank} diverged by {diff} ({topology:?}, dE={local_experts}, k={k}, {algo:?})"
        );
    }
}

#[test]
fn parity_single_node_top1() {
    run_parity(Topology::single_node(4), 1, 1, AllToAllAlgo::Linear, 1);
}

#[test]
fn parity_single_node_top2_multi_expert() {
    run_parity(Topology::single_node(2), 3, 2, AllToAllAlgo::Linear, 2);
}

#[test]
fn parity_multi_node_two_dh() {
    run_parity(Topology::new(2, 2), 2, 2, AllToAllAlgo::TwoDh, 3);
}

#[test]
fn parity_multi_node_eight_ranks() {
    run_parity(Topology::new(2, 4), 1, 1, AllToAllAlgo::TwoDh, 4);
}

#[test]
fn parity_across_algorithms_is_bit_identical() {
    // Not just close to the reference: the two exchange algorithms must
    // agree with each other exactly.
    let topology = Topology::new(2, 2);
    let w = topology.world_size();
    let ranks = make_ranks(w, 16, w, 8, 1, 9);
    let encoded: Vec<Tensor> = ranks
        .iter()
        .map(|r| fast_encode(&r.x, &r.routing).unwrap())
        .collect();
    let a = flex_all_to_all(&encoded, 1, 0, AllToAllAlgo::Linear, &topology).unwrap();
    let b = flex_all_to_all(&encoded, 1, 0, AllToAllAlgo::TwoDh, &topology).unwrap();
    assert_eq!(a, b);
}
