//! The compute runtime's determinism contract: every parallel kernel
//! partitions its output into chunks whose boundaries depend only on
//! the problem shape, and each chunk is computed by the same serial
//! code regardless of how many workers participate. Results must
//! therefore be *bit-identical* for any worker count — this suite
//! pins that across `tutel_rt::with_parallelism_limit` sweeps, and
//! `ci.sh` repeats the whole test binary under `TUTEL_THREADS=1` and
//! `TUTEL_THREADS=4` to cover the env-var path too.
//!
//! The same contract extends along the kernel-table axis: the AVX2
//! `f32x8` kernels share the scalar kernels' reduction trees and never
//! emit FMA, so `TUTEL_SIMD=0` and `TUTEL_SIMD=1` must also be
//! bit-identical — at every worker count simultaneously. The
//! cross-mode sweep below pins the in-process override path
//! (`dispatch::with_simd_mode`); `ci.sh` repeats the binary under
//! `TUTEL_SIMD=0/1` × `TUTEL_THREADS=1/4` for the env-var path.

use tutel_suite::gate::{route, RouteConfig};
use tutel_suite::kernels::{fast_decode, fast_decode_backward, fast_encode, fast_encode_backward};
use tutel_suite::rt::with_parallelism_limit;
use tutel_suite::tensor::dispatch;
use tutel_suite::tensor::{Rng, Tensor};
use tutel_suite::tutel::{MoeConfig, MoeLayer};

const LIMITS: [usize; 4] = [1, 2, 4, 8];

fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str, limit: usize) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims at limit {limit}");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs at limit {limit}: {x} vs {y}"
        );
    }
}

#[test]
fn gemm_family_is_bit_identical_across_worker_counts() {
    let mut rng = Rng::seed(41);
    // Awkward shapes: not multiples of the row block or tile sizes.
    let a = rng.normal_tensor(&[67, 93], 0.0, 1.0);
    let b = rng.normal_tensor(&[93, 41], 0.0, 1.0);
    let bt = rng.normal_tensor(&[41, 93], 0.0, 1.0);
    let at = rng.normal_tensor(&[93, 67], 0.0, 1.0);
    let ba = rng.normal_tensor(&[3, 37, 29], 0.0, 1.0);
    let bb = rng.normal_tensor(&[3, 29, 19], 0.0, 1.0);

    let reference = with_parallelism_limit(1, || {
        (
            a.matmul(&b).unwrap(),
            a.matmul_nt(&bt).unwrap(),
            at.matmul_tn(&b).unwrap(),
            ba.bmm(&bb).unwrap(),
        )
    });
    for limit in LIMITS {
        let got = with_parallelism_limit(limit, || {
            (
                a.matmul(&b).unwrap(),
                a.matmul_nt(&bt).unwrap(),
                at.matmul_tn(&b).unwrap(),
                ba.bmm(&bb).unwrap(),
            )
        });
        assert_bits_equal(&reference.0, &got.0, "matmul", limit);
        assert_bits_equal(&reference.1, &got.1, "matmul_nt", limit);
        assert_bits_equal(&reference.2, &got.2, "matmul_tn", limit);
        assert_bits_equal(&reference.3, &got.3, "bmm", limit);
    }
}

#[test]
fn dispatch_kernels_are_bit_identical_across_worker_counts() {
    let mut rng = Rng::seed(42);
    let (tokens, experts, m) = (201, 8, 24);
    let x = rng.normal_tensor(&[tokens, m], 0.0, 1.0);
    let probs = rng
        .normal_tensor(&[tokens, experts], 0.0, 1.0)
        .softmax_last();
    let routing = route(&probs, &RouteConfig::top2()).unwrap();
    let d_out = rng.normal_tensor(&[tokens, m], 0.0, 1.0);

    let reference = with_parallelism_limit(1, || {
        let enc = fast_encode(&x, &routing).unwrap();
        let dec = fast_decode(&enc, &routing, tokens).unwrap();
        let (d_enc, d_gates) = fast_decode_backward(&d_out, &enc, &routing).unwrap();
        let d_x = fast_encode_backward(&d_enc, &routing, tokens).unwrap();
        (enc, dec, d_enc, d_gates, d_x)
    });
    for limit in LIMITS {
        let got = with_parallelism_limit(limit, || {
            let enc = fast_encode(&x, &routing).unwrap();
            let dec = fast_decode(&enc, &routing, tokens).unwrap();
            let (d_enc, d_gates) = fast_decode_backward(&d_out, &enc, &routing).unwrap();
            let d_x = fast_encode_backward(&d_enc, &routing, tokens).unwrap();
            (enc, dec, d_enc, d_gates, d_x)
        });
        assert_bits_equal(&reference.0, &got.0, "fast_encode", limit);
        assert_bits_equal(&reference.1, &got.1, "fast_decode", limit);
        assert_bits_equal(&reference.2, &got.2, "fast_decode_backward", limit);
        assert_eq!(reference.3, got.3, "dgates at limit {limit}");
        assert_bits_equal(&reference.4, &got.4, "fast_encode_backward", limit);
    }
}

#[test]
fn moe_layer_forward_and_backward_are_bit_identical_across_worker_counts() {
    let cfg = MoeConfig::new(16, 32, 4).with_top_k(2);
    let run = |limit: usize| {
        with_parallelism_limit(limit, || {
            let mut rng = Rng::seed(7);
            let mut layer = MoeLayer::new(&cfg, &mut rng).unwrap();
            let x = rng.normal_tensor(&[96, 16], 0.0, 1.0);
            let d = rng.normal_tensor(&[96, 16], 0.0, 1.0);
            let out = layer.forward(&x).unwrap();
            let dx = layer.backward(&d).unwrap();
            (out.output, out.aux_loss, dx)
        })
    };
    let reference = run(1);
    for limit in LIMITS {
        let got = run(limit);
        assert_bits_equal(&reference.0, &got.0, "moe output", limit);
        assert_eq!(
            reference.1.to_bits(),
            got.1.to_bits(),
            "aux loss at limit {limit}"
        );
        assert_bits_equal(&reference.2, &got.2, "moe d_x", limit);
    }
}

#[test]
fn moe_layer_is_bit_identical_across_simd_modes_and_worker_counts() {
    // The full {scalar, simd} × worker-count cross product against one
    // fixed reference (scalar, one worker): the two axes must not
    // interact — SIMD chunks along columns inside a row kernel while
    // the pool chunks along rows, and neither may move a bit.
    let cfg = MoeConfig::new(16, 32, 4).with_top_k(2);
    let run = |limit: usize| {
        with_parallelism_limit(limit, || {
            let mut rng = Rng::seed(7);
            let mut layer = MoeLayer::new(&cfg, &mut rng).unwrap();
            let x = rng.normal_tensor(&[96, 16], 0.0, 1.0);
            let d = rng.normal_tensor(&[96, 16], 0.0, 1.0);
            let out = layer.forward(&x).unwrap();
            let dx = layer.backward(&d).unwrap();
            (out.output, out.aux_loss, dx)
        })
    };
    let reference = dispatch::with_simd_mode(Some(false), || run(1));
    for simd in [false, true] {
        for limit in LIMITS {
            let got = dispatch::with_simd_mode(Some(simd), || run(limit));
            let what = |s: &str| format!("{s} (simd={simd})");
            assert_bits_equal(&reference.0, &got.0, &what("moe output"), limit);
            assert_eq!(
                reference.1.to_bits(),
                got.1.to_bits(),
                "aux loss at limit {limit} (simd={simd})"
            );
            assert_bits_equal(&reference.2, &got.2, &what("moe d_x"), limit);
        }
    }
}

#[test]
fn gemm_family_is_bit_identical_across_simd_modes() {
    let mut rng = Rng::seed(44);
    // Ragged shapes so every micro-tile tail path runs in both modes.
    let a = rng.normal_tensor(&[61, 87], 0.0, 1.0);
    let b = rng.normal_tensor(&[87, 43], 0.0, 1.0);
    let bt = rng.normal_tensor(&[43, 87], 0.0, 1.0);
    let at = rng.normal_tensor(&[87, 61], 0.0, 1.0);
    let run = || {
        (
            a.matmul(&b).unwrap(),
            a.matmul_nt(&bt).unwrap(),
            at.matmul_tn(&b).unwrap(),
        )
    };
    let scalar = dispatch::with_simd_mode(Some(false), run);
    let simd = dispatch::with_simd_mode(Some(true), run);
    assert_bits_equal(&scalar.0, &simd.0, "matmul (simd)", 1);
    assert_bits_equal(&scalar.1, &simd.1, "matmul_nt (simd)", 1);
    assert_bits_equal(&scalar.2, &simd.2, "matmul_tn (simd)", 1);
}

#[test]
fn softmax_is_bit_identical_across_worker_counts() {
    let mut rng = Rng::seed(43);
    // Enough rows to split into several 64-row chunks.
    let x = rng.normal_tensor(&[515, 17], 0.0, 3.0);
    let reference = with_parallelism_limit(1, || x.softmax_last());
    for limit in LIMITS {
        let got = with_parallelism_limit(limit, || x.softmax_last());
        assert_bits_equal(&reference, &got, "softmax_last", limit);
    }
}
