#!/usr/bin/env sh
# Local CI: formatting, lints, build, and the full test suite.
# Run from the repo root. Fails fast on the first broken gate.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root suite)"
cargo test -q

# tutel-bench's lib tests regenerate several full paper experiments and
# take ~7 minutes; run them separately with `cargo test -p tutel-bench`.
echo "==> cargo test --workspace (minus tutel-bench)"
cargo test -q --workspace --exclude tutel-bench

echo "==> determinism suite: TUTEL_SIMD={0,1} x TUTEL_THREADS={1,4}"
# The kernel-table axis crossed with the pool axis: every cell of the
# sweep must be bit-identical to every other (the suite pins the
# in-process override path; these four runs pin the env-var path).
TUTEL_SIMD=0 TUTEL_THREADS=1 cargo test -q --test determinism
TUTEL_SIMD=0 TUTEL_THREADS=4 cargo test -q --test determinism
TUTEL_SIMD=1 TUTEL_THREADS=1 cargo test -q --test determinism
TUTEL_SIMD=1 TUTEL_THREADS=4 cargo test -q --test determinism

echo "==> executed-overlap determinism sweep at TUTEL_THREADS=1 and =4"
TUTEL_THREADS=1 cargo test -q --test overlap
TUTEL_THREADS=4 cargo test -q --test overlap

echo "==> compute_runtime bench smoke (2s warmup-only run)"
cargo bench -q -p tutel-bench --bench compute_runtime -- --warm-up-time 1 --measurement-time 1 --sample-size 10 compute_runtime_arena > /dev/null

echo "==> pipeline_overlap bench smoke (executed degree sweep, incl. d1/d4)"
cargo bench -q -p tutel-bench --bench pipeline_overlap > /dev/null

echo "==> simd_precision bench smoke (scalar-vs-AVX2 + bf16 wire)"
cargo bench -q -p tutel-bench --bench simd_precision -- \
    --warm-up-time 1 --measurement-time 1 bf16_wire > /dev/null

echo "==> trace_overhead bench smoke (disabled-telemetry fast path)"
cargo bench -q -p tutel-bench --bench trace_overhead -- \
    --warm-up-time 1 --measurement-time 1 disabled_ > /dev/null

echo "==> executed adaptive pipelining sweep (BENCH_pipeline.json)"
cargo run --release -q -p tutel-bench --bin repro_pipeline > /dev/null

echo "==> conformance harness (smoke matrix + fault suite + traced run)"
# HARNESS_FULL=1 upgrades to the full 96-point matrix. --trace runs the
# 4-rank traced smoke (invariant-checked, straggler attribution) and
# exports per-rank JSONLs plus the merged Perfetto trace.
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -q -p tutel-harness --bin harness -- \
    ${HARNESS_FULL:+--full} --json BENCH_harness.json \
    --trace "$TRACE_DIR/run"

echo "==> tutel-trace: merge exported rank JSONLs (standalone path)"
cargo run --release -q -p tutel-obs --bin tutel-trace -- \
    "$TRACE_DIR/merged.trace.json" "$TRACE_DIR"/run.rank*.jsonl > /dev/null

echo "==> conformance harness: replayed fault seed"
# A second, fixed fault seed so every collective's retry/recovery path
# is exercised under two distinct injected fault patterns per run.
cargo run --release -q -p tutel-harness --bin harness -- \
    --fault-seed 0xB0B0 > /dev/null

echo "==> serving: smoke grid + seeded load-gen sweep at TUTEL_THREADS={1,4}"
# The serving engine runs on a virtual clock, so the whole goodput
# sweep (continuous vs serial batching over seeded poisson/bursty/
# diurnal traces) must be bit-identical at any worker count: the
# repro_serve digest line is compared across both settings, and the
# acceptance criterion (continuous beats serial at every offered load)
# is enforced by the binary's exit code. The serve unit/property tests
# are also swept at both widths to pin the env-var path.
TUTEL_THREADS=1 cargo test -q -p tutel-serve
TUTEL_THREADS=4 cargo test -q -p tutel-serve
TUTEL_THREADS=1 cargo run --release -q -p tutel-bench --bin repro_serve -- \
    BENCH_serve.json | tee "$TRACE_DIR/serve_t1.txt" | grep "serve digest"
TUTEL_THREADS=4 cargo run --release -q -p tutel-bench --bin repro_serve -- \
    "$TRACE_DIR/BENCH_serve_t4.json" > "$TRACE_DIR/serve_t4.txt"
D1=$(grep "serve digest" "$TRACE_DIR/serve_t1.txt")
D4=$(grep "serve digest" "$TRACE_DIR/serve_t4.txt")
if [ "$D1" != "$D4" ]; then
    echo "serve digest diverged across TUTEL_THREADS: '$D1' vs '$D4'" >&2
    exit 1
fi

echo "==> dropless imbalance sweep + grouped determinism at TUTEL_SIMD={0,1} x TUTEL_THREADS={1,4}"
# The grouped (dropless) path computes exactly the routed rows, so its
# outputs are bitwise-invariant to both the kernel table and the pool
# width: the repro digest line is compared across all four cells. The
# timed sweep runs once and enforces the no-cliff acceptance by exit
# code (grouped flat across the skew ladder while padded cliffs >=
# 1.5x, grouped beating padded from Zipf(1.0) up), rewriting the
# grouped_gemm section of BENCH_compute.json; the other three cells
# run digest-only.
TUTEL_SIMD=0 TUTEL_THREADS=1 cargo run --release -q -p tutel-bench --bin repro_dropless -- \
    BENCH_compute.json | tee "$TRACE_DIR/dropless_s0t1.txt" | grep "dropless digest"
TUTEL_SIMD=0 TUTEL_THREADS=4 cargo run --release -q -p tutel-bench --bin repro_dropless -- \
    --digest-only > "$TRACE_DIR/dropless_s0t4.txt"
TUTEL_SIMD=1 TUTEL_THREADS=1 cargo run --release -q -p tutel-bench --bin repro_dropless -- \
    --digest-only > "$TRACE_DIR/dropless_s1t1.txt"
TUTEL_SIMD=1 TUTEL_THREADS=4 cargo run --release -q -p tutel-bench --bin repro_dropless -- \
    --digest-only > "$TRACE_DIR/dropless_s1t4.txt"
DREF=$(grep "dropless digest" "$TRACE_DIR/dropless_s0t1.txt")
for cell in s0t4 s1t1 s1t4; do
    DGOT=$(grep "dropless digest" "$TRACE_DIR/dropless_$cell.txt")
    if [ "$DREF" != "$DGOT" ]; then
        echo "dropless digest diverged at $cell: '$DREF' vs '$DGOT'" >&2
        exit 1
    fi
done

echo "==> tutel-check: workspace lint (baseline ratchet)"
cargo run --release -q -p tutel-check -- --baseline check-baseline.json

echo "==> tutel-check: deterministic concurrency sweep (fixed seeds)"
cargo run --release -q -p tutel-check -- --sched --seeds 128

echo "==> tutel-check: happens-before race sweep at TUTEL_THREADS=1 and =4"
# 128 seeded schedules over the combined overlap+pool+comm surface,
# plus the three planted-bug selftests (each must be caught and its
# seed must replay). The pool width changes which thread ids appear in
# the real-arena selftests, so both widths are swept.
TUTEL_THREADS=1 cargo run --release -q -p tutel-check -- --race --seeds 128
TUTEL_THREADS=4 cargo run --release -q -p tutel-check -- --race --seeds 128

echo "==> race_overhead bench smoke (check-race compiled out)"
# Pins the feature-off cost of the rt instrumentation hooks at ~zero:
# tutel-bench builds without tutel-check, so these rows measure the
# true production arena/pool paths.
cargo bench -q -p tutel-bench --bench race_overhead -- \
    --warm-up-time 1 --measurement-time 1 disabled_ > /dev/null

echo "ci.sh: all gates green"
